#!/usr/bin/env python
"""Quickstart: mask communication delays in an N-body simulation.

Runs the same 500-particle gravitational simulation twice on a
simulated 8-workstation cluster — once with the classical blocking
exchange (FW = 0) and once with speculative computation (FW = 1) — and
compares iteration times, exactly like the paper's headline experiment.

Run:  python examples/quickstart.py
"""

from repro import NBodyProgram, run_program, uniform_cube, wustl_1994


def main() -> None:
    # A heterogeneous 8-machine cluster on a shared Ethernet, calibrated
    # to the paper's testbed, with realistic cross-traffic.
    n_particles, iterations = 500, 10

    def fresh_program_and_cluster():
        platform = wustl_1994(
            p=8, jitter_sigma=0.8, background_frames_per_s=24,
            bursty_traffic=True, seed=1,
        )
        system = uniform_cube(n_particles, seed=0, softening=0.1)
        program = NBodyProgram(
            system,
            platform.capacities(),
            iterations=iterations,
            dt=0.015,
            threshold=0.01,  # the paper's theta
        )
        return program, platform.cluster()

    program, cluster = fresh_program_and_cluster()
    blocking = run_program(program, cluster, fw=0)

    program, cluster = fresh_program_and_cluster()
    speculative = run_program(program, cluster, fw=1)

    b0 = blocking.steady_breakdown()
    b1 = speculative.steady_breakdown()
    print(f"N-body, {n_particles} particles, 8 simulated workstations")
    print(f"{'':24s}{'blocking':>12s}{'speculative':>14s}")
    print(f"{'compute s/iter':24s}{b0['compute']:>12.3f}{b1['compute']:>14.3f}")
    print(f"{'waiting s/iter':24s}{b0['comm']:>12.3f}{b1['comm']:>14.3f}")
    print(f"{'spec+check s/iter':24s}{b0['spec'] + b0['check']:>12.3f}"
          f"{b1['spec'] + b1['check']:>14.3f}")
    print(f"{'total s/iter':24s}{b0.total:>12.3f}{b1.total:>14.3f}")
    gain = blocking.makespan / speculative.makespan - 1.0
    print(f"\nSpeculative computation is {gain:+.1%} faster "
          f"({100 * program.spec_stats.incorrect_fraction:.1f}% of speculations rejected)")


if __name__ == "__main__":
    main()
