#!/usr/bin/env python
"""Speculation on a PDE solver: 1-D heat equation, strip decomposition.

Unlike the all-to-all N-body, a Jacobi sweep only reads its neighbor
strips, so the driver's dependency topology keeps messages (and
speculation) local.  Boundary temperatures drift smoothly, so linear
extrapolation speculates them almost perfectly and the exchange delay
is fully masked.

Run:  python examples/heat_equation_masking.py
"""

import numpy as np

from repro import HeatEquation1D, run_program, uniform_specs
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster


def main() -> None:
    cells, procs, sweeps = 512, 8, 60
    rng = np.random.default_rng(0)
    initial = rng.uniform(0.0, 1.0, size=cells)

    def run(fw: int):
        program = HeatEquation1D(
            initial,
            [2e5] * procs,
            iterations=sweeps,
            r=0.25,
            boundary=(1.0, 0.0),
            threshold=2e-3,
        )
        cluster = Cluster(
            uniform_specs(procs, capacity=2e5),
            # The Jacobi sweep is cheap, so even a modest per-message
            # delay dominates; exactly the regime speculation targets.
            network_factory=lambda env: DelayNetwork(env, ConstantLatency(0.002)),
        )
        return program, run_program(program, cluster, fw=fw)

    program, blocking = run(0)
    _, speculative = run(1)

    field = program.gather(speculative.final_blocks)
    serial = program.reference()
    max_dev = float(np.max(np.abs(field - serial)))

    print(f"1-D heat equation: {cells} cells on {procs} strips, {sweeps} sweeps")
    print(f"  blocking    : {blocking.makespan:.4f} virtual s")
    print(f"  speculative : {speculative.makespan:.4f} virtual s "
          f"({blocking.makespan / speculative.makespan - 1:+.0%})")
    print(f"  rejected speculations : {100 * speculative.rejection_rate:.2f}%")
    print(f"  max deviation from the serial solution: {max_dev:.2e}")
    print(f"  messages per rank: "
          f"{[s.messages_sent for s in speculative.stats]} (neighbors only)")


if __name__ == "__main__":
    main()
