#!/usr/bin/env python
"""When speculation fails: chaos and conservation.

The paper scopes its technique: "speculation is most useful in
applications where the variables generally follow a relatively slow
changing trend".  This example probes the two ways that condition can
break:

1. **Chaos** — a coupled lattice of logistic maps.  In the chaotic
   regime no extrapolation tracks the state, so nearly everything is
   rejected and the technique degrades to blocking-plus-overhead
   (gracefully: with θ = 0 the answers stay exact).  Dial the map back
   to its stable regime and speculation abruptly works again.
2. **Conservation** — the 1-D wave equation.  Speculation *predicts*
   well here (values drift smoothly), but every error accepted under a
   nonzero θ persists forever in an energy-conserving medium.  The
   deviation from the serial solution grows with the run instead of
   decaying like it does for the (dissipative) heat equation.

Run:  python examples/when_not_to_speculate.py
"""

import numpy as np

from repro import CoupledMapLattice, WaveEquation1D, run_program, uniform_specs
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster


def cluster(p=4, latency=0.3):
    return Cluster(
        uniform_specs(p, capacity=1e6),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(latency)),
    )


def chaos_demo() -> None:
    rng = np.random.default_rng(9)
    initial = rng.uniform(0.2, 0.8, size=64)
    print("1. Chaotic coupled map lattice (theta = 1e-3)")
    print(f"   {'regime':12s}{'r':>6s}{'rejected %':>12s}")
    for label, r in (("stable", 2.5), ("chaotic", 3.9)):
        prog = CoupledMapLattice(initial, [1e6] * 4, 40, r=r, threshold=1e-3)
        result = run_program(prog, cluster(), fw=1)
        print(f"   {label:12s}{r:>6.1f}{100 * result.rejection_rate:>12.1f}")
        # theta=0 sanity: the framework never corrupts the answer.
        exact_prog = CoupledMapLattice(initial, [1e6] * 4, 40, r=r, threshold=0.0)
        exact = run_program(exact_prog, cluster(), fw=1)
        np.testing.assert_allclose(
            exact_prog.gather(exact.final_blocks), exact_prog.reference(), atol=1e-9
        )
    print("   (theta = 0 runs verified bit-exact in both regimes)\n")


def conservation_demo() -> None:
    x = np.linspace(0.0, 1.0, 96)
    pulse = np.exp(-((x - 0.3) ** 2) / (2 * 0.08**2))
    print("2. Wave equation: accepted errors never decay")
    print(f"   {'theta':>8s}{'rejected %':>12s}{'final deviation':>18s}")
    for theta in (0.0, 5e-3, 2e-2):
        prog = WaveEquation1D(pulse, [1e6] * 4, 80, courant=1.0, threshold=theta)
        result = run_program(prog, cluster(latency=0.4), fw=1)
        dev = float(np.max(np.abs(prog.gather(result.final_blocks) - prog.reference())))
        print(f"   {theta:>8.3g}{100 * result.rejection_rate:>12.1f}{dev:>18.2e}")
    print(
        "\n   A heat-equation run at the same thresholds stays within ~theta\n"
        "   of the serial solution because diffusion damps the injected\n"
        "   errors; the wave equation carries them forever.  Conservative\n"
        "   dynamics demand a much tighter theta for the same fidelity."
    )


def main() -> None:
    chaos_demo()
    conservation_demo()


if __name__ == "__main__":
    main()
