#!/usr/bin/env python
"""Forward windows under transient delays (the Fig. 4 scenario).

A two-processor run where the first P1→P2 message is held up in
transit for several compute-times.  FW = 1 can only run one iteration
ahead, so it absorbs part of the transient; FW = 2 absorbs more.  The
ASCII timelines make the pipelining visible.

Run:  python examples/transient_delays.py
"""

from repro.core import run_program
from repro.harness.toys import ConstantProgram
from repro.netsim.latency import Spike
from repro.platforms import two_processor_demo
from repro.trace import render_gantt


def main() -> None:
    compute_s, comm_s, spike_s = 1.0, 0.4, 2.5
    print(
        f"Two processors; compute {compute_s:.1f}s/iteration, normal "
        f"delay {comm_s:.1f}s,\none transient of +{spike_s:.1f}s on P1->P2's "
        f"first message.\n"
    )
    for fw in (0, 1, 2):
        platform = two_processor_demo(
            compute_seconds=compute_s,
            comm_seconds=comm_s,
            spikes=[Spike(extra=spike_s, t_start=0.5, t_end=1.5, src=0, dst=1)],
        )
        program = ConstantProgram(nprocs=2, iterations=6)
        result = run_program(program, platform.cluster(), fw=fw)
        print(f"FW = {fw}: makespan {result.makespan:.2f}s")
        print(render_gantt(result.traces, width=76))


if __name__ == "__main__":
    main()
