#!/usr/bin/env python
"""Speculation on real OS processes (multiprocessing backend).

The simulator's headline effect, re-measured in wall-clock time: a
small N-body on two worker processes exchanging numpy blocks over
pipes, with an injected per-message latency comparable to the real
per-iteration compute time.

Run:  python examples/real_processes.py
"""

import numpy as np

from repro import MPRunner, NBodyProgram, uniform_cube


def main() -> None:
    n, iterations = 400, 10
    system = uniform_cube(n, seed=7, softening=0.1)

    # Measure the native compute time first, then inject a matching delay.
    probe = NBodyProgram(system, [1.0, 1.0], iterations=2, dt=0.01, threshold=0.0)
    base = MPRunner(probe, fw=0, latency=0.0).run()
    compute_per_iter = base.phase_seconds("compute") / probe.iterations
    latency = max(compute_per_iter, 0.001)
    print(f"{n}-particle N-body on 2 OS processes")
    print(f"measured compute/iteration: {1000 * compute_per_iter:.1f} ms; "
          f"injecting {1000 * latency:.1f} ms message latency\n")

    results = {}
    for fw in (0, 1):
        program = NBodyProgram(system, [1.0, 1.0], iterations=iterations,
                               dt=0.01, threshold=0.01)
        results[fw] = MPRunner(program, fw=fw, latency=latency, seed=3).run()
        label = "blocking (FW=0)" if fw == 0 else "speculative (FW=1)"
        res = results[fw]
        print(f"{label:20s}: wall {res.wall_seconds:.3f}s  "
              f"waiting {res.phase_seconds('comm'):.3f}s  "
              f"rejected {100 * res.rejection_rate:.1f}%")

    # Physics check: both runs agree with each other within theta-bounded
    # speculation error.
    p0 = np.vstack([results[0].final_blocks[r][:, :3] for r in range(2)])
    p1 = np.vstack([results[1].final_blocks[r][:, :3] for r in range(2)])
    print(f"\nmax position deviation between the two runs: "
          f"{float(np.max(np.abs(p0 - p1))):.2e}")
    print(f"speculation made the run "
          f"{results[0].wall_seconds / results[1].wall_seconds - 1:+.0%} faster")


if __name__ == "__main__":
    main()
