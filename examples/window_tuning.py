#!/usr/bin/env python
"""Design-space exploration with the extended performance model.

The paper's conclusion proposes using the performance model "in making
design decisions with respect to the various tradeoffs" — in
particular forward/backward window sizes under variable communication
times (its stated future work).  This example runs that study: an
FW × BW grid over increasing network variability, printing the
predicted iteration times and the optimal window.

Run:  python examples/window_tuning.py
"""

from repro.perfmodel import (
    ExtendedPerformanceModel,
    VariabilityParams,
    section4_params,
)


def main() -> None:
    p = 16
    params = section4_params(k=0.02)
    print(
        f"Predicted iteration time (ms) on {p} processors, "
        "Section-4 workload\n"
    )

    for comm_cv in (0.0, 0.5, 1.5):
        model = ExtendedPerformanceModel(
            params,
            VariabilityParams(
                comm_cv=comm_cv,
                k1=0.05,          # gap-1 rejection probability
                bw_discount=0.4,  # higher-order speculation pays off
                correction_fraction=0.5,
            ),
            seed=7,
        )
        study = model.window_study(p, fws=range(0, 5), bws=(1, 2, 3))
        print(f"communication variability cv = {comm_cv}")
        header = "  FW \\ BW " + "".join(f"{bw:>9d}" for bw in (1, 2, 3))
        print(header)
        for fw in range(0, 5):
            cells = "".join(
                f"{1000 * study['grid'][(fw, bw)]:>9.2f}" for bw in (1, 2, 3)
            )
            print(f"  {fw:>7d} {cells}")
        best_fw, best_bw = study["best"]
        print(f"  -> best window: FW={best_fw}, BW={best_bw}\n")

    print(
        "Reading the tables: with a calm network FW=1 already masks all"
        "\ncommunication; as variability grows, deeper forward windows pay"
        "\noff, and a larger backward window (better extrapolation) keeps"
        "\nthe rejection penalty of deep speculation in check."
    )


if __name__ == "__main__":
    main()
