#!/usr/bin/env python
"""Choosing a speculation function: Kuramoto oscillators.

Phases drift almost linearly at each oscillator's natural frequency,
so the quality of speculation depends strongly on the extrapolation
order (the paper's backward-window trade-off).  This example sweeps
three speculators on the same synchronising swarm and reports
rejection rates and the resulting run times.

Run:  python examples/oscillator_sync.py
"""

from repro import (
    KuramotoProgram,
    LinearExtrapolation,
    PolynomialExtrapolation,
    ZeroOrderHold,
    run_program,
    uniform_specs,
)
from repro.netsim import ConstantLatency, DelayNetwork, StochasticLatency
from repro.vm import Cluster


def main() -> None:
    n, procs, steps = 200, 4, 50
    speculators = {
        "zero-order hold (BW=1)": ZeroOrderHold(),
        "linear extrapolation (BW=2)": LinearExtrapolation(),
        "quadratic extrapolation (BW=3)": PolynomialExtrapolation(order=2),
    }

    print(f"{n} Kuramoto oscillators on {procs} processors, {steps} steps\n")
    print(f"{'speculator':32s}{'rejected %':>11s}{'makespan (s)':>14s}{'sync R':>8s}")
    for name, speculator in speculators.items():
        program = KuramotoProgram.random(
            n, [4e3] * procs, steps, seed=4, dt=0.05,
            coupling=1.5, threshold=2e-3, speculator=speculator,
        )
        cluster = Cluster(
            uniform_specs(procs, capacity=4e3),
            network_factory=lambda env: DelayNetwork(
                env, StochasticLatency(ConstantLatency(0.4), sigma=0.5, seed=8)
            ),
        )
        result = run_program(program, cluster, fw=1)
        theta = program.gather(result.final_blocks)
        print(
            f"{name:32s}{100 * result.rejection_rate:>11.1f}"
            f"{result.makespan:>14.2f}{program.synchrony(theta):>8.3f}"
        )

    print(
        "\nA larger backward window tracks the phase drift far better, so"
        "\nfewer speculations are rejected and less time is spent correcting."
    )


if __name__ == "__main__":
    main()
