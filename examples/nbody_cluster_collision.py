#!/usr/bin/env python
"""Domain scenario: two colliding star clusters on the full testbed.

Simulates a 600-particle Plummer-sphere merger — the kind of workload
the paper's introduction motivates — on all 16 simulated workstations,
sweeping the forward window, and verifies the physics (momentum
conservation and bounded drift from the serial reference) along the
way.

Run:  python examples/nbody_cluster_collision.py
"""

import numpy as np

from repro import NBodyProgram, run_program, two_clusters, wustl_1994


def main() -> None:
    n, iterations, dt = 600, 12, 0.01

    print(f"Two colliding Plummer spheres, {n} particles, 16 workstations\n")
    print(f"{'FW':>3s} {'time/iter (s)':>14s} {'waiting (s)':>12s} "
          f"{'rejected %':>11s} {'drift from serial':>18s}")

    reference = None
    for fw in (0, 1, 2):
        platform = wustl_1994(
            p=16, jitter_sigma=0.8, background_frames_per_s=24,
            bursty_traffic=True, seed=2,
        )
        system = two_clusters(n, seed=11, separation=4.0, softening=0.1)
        program = NBodyProgram(
            system, platform.capacities(), iterations=iterations,
            dt=dt, threshold=0.01,
        )
        result = run_program(program, platform.cluster(), fw=fw, cascade="none")
        final = program.gather(result.final_blocks)

        if reference is None:
            reference = program.reference()
        drift = float(np.max(np.linalg.norm(final.pos - reference.pos, axis=1)))

        # Momentum is conserved by pairwise forces regardless of
        # speculation (corrections are exact force substitutions).
        momentum_error = float(
            np.linalg.norm(final.momentum() - system.momentum())
        )
        assert momentum_error < 1e-6, momentum_error

        b = result.steady_breakdown()
        print(
            f"{fw:>3d} {result.time_per_iteration:>14.3f} {b['comm']:>12.3f} "
            f"{100 * program.spec_stats.incorrect_fraction:>11.2f} {drift:>18.2e}"
        )

    print(
        "\nSpeculation masks most of the waiting time; the accepted"
        "\nspeculation errors (bounded by theta) cause only a tiny drift"
        "\nfrom the bit-exact serial trajectory."
    )


if __name__ == "__main__":
    main()
