"""TAB3: acceptance threshold theta vs incorrect speculations / force error.

Paper reference::

    theta   incorrect   max force error
    0.1     <1%         20%
    0.05    <1%         10%
    0.01    2%          2%
    0.005   5%          1%
    0.001   20%         0.2%
"""

from repro.harness import table3_threshold_sweep


def bench_table3(benchmark, artifact_sink):
    result = benchmark.pedantic(table3_threshold_sweep, rounds=1, iterations=1)
    artifact_sink(result)
    rows = result.rows  # (theta, incorrect %, force error %)
    thetas = [r[0] for r in rows]
    incorrect = [r[1] for r in rows]
    force_err = [r[2] for r in rows]
    assert thetas == sorted(thetas, reverse=True)
    # Tighter theta -> monotonically more rejected speculations ...
    assert all(a <= b + 1e-9 for a, b in zip(incorrect, incorrect[1:]))
    # ... and monotonically smaller accepted force error.
    assert all(a >= b - 1e-9 for a, b in zip(force_err, force_err[1:]))
    # Operating point theta=0.01: a few percent rejected (paper: 2%).
    by_theta = {r[0]: r for r in rows}
    assert 0.2 <= by_theta[0.01][1] <= 8.0
    # Loose theta admits order-of-magnitude larger force errors.
    assert force_err[0] > 5 * force_err[-1]
