"""FIG4: forward window under a transient delay (FW = 0/1/2).

Paper claim: a transient delay longer than one iteration's compute is
only partially masked by FW = 1; FW = 2 recovers more (Fig. 4a–c).
"""

from repro.harness import fig4_forward_window


def bench_fig4(benchmark, artifact_sink):
    result = benchmark.pedantic(fig4_forward_window, rounds=1, iterations=1)
    artifact_sink(result)
    makespan = {fw: t for fw, t, _ in result.rows}
    assert makespan[1] < makespan[0]
    assert makespan[2] < makespan[1]
