"""ABL-BW: speculation-function / backward-window ablation.

The paper leaves "using higher order derivatives ... more complex
speculation" as future work.  This ablation compares zero-order hold,
linear extrapolation and quadratic extrapolation on the Kuramoto
oscillator workload (phases drift ~linearly), measuring rejection rate
and makespan at a fixed tight threshold.
"""

import numpy as np

from repro.apps import KuramotoProgram
from repro.core import (
    LinearExtrapolation,
    PolynomialExtrapolation,
    ZeroOrderHold,
    run_program,
)
from repro.harness import format_table
from repro.netsim import ConstantLatency, DelayNetwork, StochasticLatency
from repro.vm import Cluster, uniform_specs

SPECULATORS = {
    "zero-order hold (BW=1)": ZeroOrderHold(),
    "linear (BW=2)": LinearExtrapolation(),
    "quadratic (BW=3)": PolynomialExtrapolation(order=2),
}


def run_ablation():
    rows = []
    for name, speculator in SPECULATORS.items():
        prog = KuramotoProgram.random(
            120, [1e6] * 4, 30, seed=5, dt=0.05, threshold=2e-3,
            speculator=speculator,
        )
        cluster = Cluster(
            uniform_specs(4, capacity=1e6),
            network_factory=lambda env: DelayNetwork(
                env, StochasticLatency(ConstantLatency(0.5), sigma=0.5, seed=9)
            ),
        )
        result = run_program(prog, cluster, fw=1)
        rows.append(
            [name, 100.0 * result.rejection_rate, result.makespan]
        )
    return rows


def bench_ablation_speculators(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["speculator", "rejected (%)", "makespan (s)"],
        rows,
        title="ABL-BW: speculation function vs rejection rate (Kuramoto)",
    ))
    by_name = {r[0]: r for r in rows}
    zoh = by_name["zero-order hold (BW=1)"]
    lin = by_name["linear (BW=2)"]
    # Linear extrapolation tracks drifting phases far better than a hold.
    assert lin[1] < zoh[1]
    assert lin[2] <= zoh[2] + 1e-9
