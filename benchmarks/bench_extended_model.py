"""EXT-MODEL: the paper's future-work model, validated against the DES.

"Future work ... includes developing a more sophisticated performance
model that accounts for variations in computation and communication
times of processors and different forward and backward window sizes."

This bench runs the extended model's FW study under growing
communication variance and checks its qualitative predictions against
the discrete-event measurements of the Fig. 8 experiment family.
"""

from repro.harness import format_table
from repro.perfmodel import (
    ExtendedPerformanceModel,
    VariabilityParams,
    section4_params,
)


def run_study():
    params = section4_params(k=0.02)
    rows = []
    for comm_cv in (0.0, 0.5, 1.0, 2.0):
        model = ExtendedPerformanceModel(
            params,
            VariabilityParams(comm_cv=comm_cv, k1=0.05, bw_discount=0.4,
                              correction_fraction=0.5),
            seed=7,
        )
        times = {fw: 1000 * model.expected_iteration_time(16, fw, bw=2)
                 for fw in range(0, 4)}
        rows.append([comm_cv, times[0], times[1], times[2], times[3],
                     model.optimal_fw(16, bw=2, max_fw=4)])
    return rows


def bench_extended_model(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print()
    print(format_table(
        ["comm cv", "FW=0 (ms)", "FW=1 (ms)", "FW=2 (ms)", "FW=3 (ms)", "best FW"],
        rows,
        title="EXT-MODEL: expected iteration time vs forward window (p=16)",
    ))
    # Deterministic network: FW=1 masks everything; deeper windows idle.
    calm = rows[0]
    assert calm[2] < calm[1]
    assert abs(calm[3] - calm[2]) / calm[2] < 0.05
    # Heavy variance: FW=2 strictly better than FW=1; best FW >= 2.
    wild = rows[-1]
    assert wild[3] < wild[2]
    assert wild[5] >= 2
    # The optimal window is non-decreasing in the variance.
    bests = [r[5] for r in rows]
    assert all(a <= b for a, b in zip(bests, bests[1:]))
