"""Shared helpers for the benchmark suite.

Each bench regenerates one of the paper's artifacts through
:mod:`repro.harness` and (a) prints the table, (b) persists it under
``benchmarks/output/`` so the artifacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture()
def artifact_sink():
    """Write an experiment's rendered text to benchmarks/output/<id>.txt."""

    def sink(result) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{result.experiment_id.lower()}.txt"
        path.write_text(result.text)
        print()
        print(result.text)

    return sink
