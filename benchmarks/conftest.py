"""Shared helpers for the benchmark suite.

Each bench regenerates one of the paper's artifacts through
:mod:`repro.harness` and (a) prints the table, (b) persists it under
``benchmarks/output/`` so the artifacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def pytest_collect_file(file_path: pathlib.Path, parent):
    """Collect ``bench_*.py`` when benchmarks/ is targeted explicitly.

    ``bench_*.py`` is deliberately absent from ``python_files`` in
    pyproject.toml so a plain ``pytest`` run never sweeps up the (slow)
    benchmark suite by accident.  This hook restores collection for
    explicit invocations such as ``pytest benchmarks/`` or
    ``pytest benchmarks/bench_fig4_forward_window.py``.
    """
    if file_path.suffix == ".py" and file_path.name.startswith("bench_"):
        return pytest.Module.from_parent(parent, path=file_path)
    return None


@pytest.fixture()
def artifact_sink():
    """Write an experiment's rendered text to benchmarks/output/<id>.txt."""

    def sink(result) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{result.experiment_id.lower()}.txt"
        path.write_text(result.text)
        print()
        print(result.text)

    return sink
