"""TAB2: per-iteration phase times (16 processors, 1000 particles).

Paper reference rows (seconds/iteration)::

    FW  comp  comm  spec  check  total
    0   5.83  4.73  0     0      10.56
    1   5.85  1.43  0.2   1.02    8.52
    2   5.82  0.22  0.3   1.5     7.79
"""

from repro.harness import table2_phase_times

PAPER = {0: (5.83, 4.73, 10.56), 1: (5.85, 1.43, 8.52), 2: (5.82, 0.22, 7.79)}


def bench_table2(benchmark, artifact_sink):
    result = benchmark.pedantic(table2_phase_times, rounds=1, iterations=1)
    artifact_sink(result)
    rows = {r[0]: r[1:] for r in result.rows}  # fw -> comp, comm, spec, check, corr, total
    # Computation phase matches the calibration target within 5%.
    for fw in (0, 1, 2):
        assert abs(rows[fw][0] - PAPER[fw][0]) / PAPER[fw][0] < 0.05
    # Communication ordering: FW=0 >> FW=1 >= FW=2.
    assert rows[0][1] > 3.0
    assert rows[1][1] < 0.5 * rows[0][1]
    assert rows[2][1] <= rows[1][1] + 0.05
    # Totals improve monotonically with the window.
    assert rows[0][5] > rows[1][5] >= rows[2][5] - 0.05
    # Speculation and checking overheads are small compared to compute.
    assert rows[1][2] + rows[1][3] < 0.2 * rows[1][0]
