"""FIG6: model speedup on 8 processors vs recomputation fraction k.

Paper claim: speculation wins for small k and loses once k grows past
roughly 10 % on the 8-processor configuration.
"""

from repro.harness import fig6_error_sensitivity


def bench_fig6(benchmark, artifact_sink):
    result = benchmark.pedantic(fig6_error_sensitivity, rounds=1, iterations=1)
    artifact_sink(result)
    spec = [row[1] for row in result.rows]
    nospec = result.rows[0][2]
    assert spec[0] > nospec          # k = 0: clear win
    assert spec[-1] < nospec         # k = 30%: clear loss
    assert all(a >= b - 1e-12 for a, b in zip(spec, spec[1:]))  # monotone
    assert 0.02 < result.extra["crossover_k"] < 0.40
