"""ABL-BH: algorithmic efficiency vs speculation gain.

The paper's footnote 1 notes an O(N log N) algorithm exists but uses
O(N^2) "to illustrate the effectiveness of speculative computation".
This ablation runs both force backends on the same platform and finds
the complementary limit of the paper's story: Barnes-Hut shrinks the
computation phase below the all-to-all wire time, so the communication
*fraction* soars — but once the shared medium itself is the
bottleneck, no forward window can mask beyond the interconnect's
throughput.  Speculation hides latency, not insufficient bandwidth.
"""

from repro.apps import NBodyProgram
from repro.core import run_program
from repro.harness import format_table
from repro.nbody import uniform_cube
from repro.platforms import wustl_1994


def run_ablation():
    rows = []
    for method in ("direct", "barnes_hut"):
        times = {}
        comp = comm = 0.0
        for fw in (0, 1, 2):
            platform = wustl_1994(p=16, jitter_sigma=0.8,
                                  background_frames_per_s=24,
                                  bursty_traffic=True, seed=1)
            system = uniform_cube(1000, seed=42, softening=0.1)
            prog = NBodyProgram(
                system, platform.capacities(), iterations=8, dt=0.015,
                threshold=0.01, force_method=method, bh_theta=0.6,
            )
            res = run_program(prog, platform.cluster(), fw=fw, cascade="none")
            times[fw] = res.time_per_iteration
            if fw == 0:
                b = res.steady_breakdown()
                comp, comm = b["compute"], b["comm"]
        best = min(times.values())
        rows.append([
            method, comp, comm, comm / (comm + comp),
            times[0], times[1], times[2], times[0] / best - 1.0,
        ])
    return rows


def bench_ablation_barnes_hut(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["force", "comp s/it", "comm s/it", "comm frac",
         "FW0 s/it", "FW1 s/it", "FW2 s/it", "best gain"],
        rows,
        title="ABL-BH: O(N^2) vs O(N log N) force backend (16 procs, N=1000)",
    ))
    direct, bh = rows[0], rows[1]
    # Barnes-Hut cuts the computation phase substantially ...
    assert bh[1] < 0.7 * direct[1]
    # ... so the communication fraction grows well past one half.
    assert bh[3] > direct[3]
    assert bh[3] > 0.5
    # Direct mode: plenty of compute to overlap -> large gain.
    assert direct[7] > 0.30
    # BH mode: compute < wire time, the bus is the floor -> speculation
    # still helps, but its ceiling is the interconnect throughput.
    assert 0.0 < bh[7] < direct[7]
    # The BH iteration time can never drop below the per-iteration bus
    # occupancy (within overheads): comm s/it bounds the best time.
    assert min(bh[4], bh[5], bh[6]) > 0.9 * bh[2]
