"""FIG9: Section-4 model vs measured N-body speedups.

Paper claim: model within 10 % of measurement for p <= 8 and within
25 % up to 16 processors.
"""

from repro.harness import fig9_model_vs_measured


def bench_fig9(benchmark, artifact_sink):
    result = benchmark.pedantic(fig9_model_vs_measured, rounds=1, iterations=1)
    artifact_sink(result)
    for p, _mns, _ons, dev_ns, _msp, _osp, dev_sp in result.rows:
        if p <= 8:
            assert dev_ns < 10.0 and dev_sp < 10.0
        else:
            assert dev_ns < 25.0 and dev_sp < 25.0
