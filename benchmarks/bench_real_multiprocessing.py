"""ABL-REAL: wall-clock validation on real OS processes.

The simulator's headline effect — speculation masking message latency —
re-measured with actual multiprocessing workers and injected pipe
latency: a small N-body on 2 processes, latency swept around the
per-iteration compute time.
"""

import numpy as np

from repro.harness import format_table
from repro.nbody import uniform_cube
from repro.apps import NBodyProgram
from repro.parallel import MPRunner


def run_sweep():
    rows = []
    system = uniform_cube(160, seed=7, softening=0.1)
    # ~160^2 pair forces per rank -> fraction of a millisecond; scale
    # the injected latency around the measured compute time.
    probe = NBodyProgram(system, [1.0, 1.0], iterations=2, dt=0.01, threshold=0.0)
    base = MPRunner(probe, fw=0, latency=0.0).run(timeout=120)
    compute_s = base.phase_seconds("compute") / probe.iterations

    for factor in (0.5, 1.0, 2.0):
        latency = max(compute_s * factor, 0.002)
        times = {}
        for fw in (0, 1):
            prog = NBodyProgram(system, [1.0, 1.0], iterations=10, dt=0.01, threshold=0.01)
            res = MPRunner(prog, fw=fw, latency=latency, seed=3).run(timeout=120)
            times[fw] = res.wall_seconds
        rows.append([
            1000.0 * latency,
            times[0],
            times[1],
            times[0] / times[1],
        ])
    return rows


def bench_real_multiprocessing(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["latency (ms)", "FW=0 wall (s)", "FW=1 wall (s)", "speedup"],
        rows,
        title="ABL-REAL: speculation on real processes (N-body, p=2)",
    ))
    # Speculation must win at every injected latency >= compute time.
    assert rows[1][3] > 1.0
    assert rows[2][3] > 1.0
    # And the benefit grows with the latency.
    assert rows[2][3] >= rows[0][3] - 0.1
