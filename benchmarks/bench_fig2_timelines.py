"""FIG2: two-processor timelines — blocking vs good/bad speculation.

Paper claim: T_spec_good < T_no_spec < T_spec_nogood (Fig. 2a–c).
"""

from repro.harness import fig2_timelines


def bench_fig2(benchmark, artifact_sink):
    result = benchmark.pedantic(fig2_timelines, rounds=1, iterations=1)
    artifact_sink(result)
    makespans = {label: t for label, t, _ in result.rows}
    good = makespans["(b) speculation, all good"]
    none = makespans["(a) no speculation (FW=0)"]
    bad = makespans["(c) speculation, all bad"]
    assert good < none < bad
