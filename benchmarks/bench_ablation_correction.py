"""ABL-CORR: incremental correction vs full recomputation (N-body).

DESIGN.md design choice 4: the N-body app implements a true
incremental correction (subtract speculated-pair forces, add
actual-pair forces).  This ablation quantifies the saving against the
naive full recomputation at a tight threshold where rejections are
frequent.
"""

from repro.apps import NBodyProgram
from repro.core import run_program
from repro.harness import format_table
from repro.nbody import uniform_cube
from repro.platforms import wustl_1994


def run_ablation():
    rows = []
    for incremental in (True, False):
        platform = wustl_1994(p=8, jitter_sigma=0.8,
                              background_frames_per_s=24, bursty_traffic=True, seed=1)
        system = uniform_cube(400, seed=42, softening=0.1)
        prog = NBodyProgram(
            system, platform.capacities(), iterations=10, dt=0.02,
            threshold=0.002, incremental_correction=incremental,
        )
        result = run_program(prog, platform.cluster(), fw=1, cascade="none")
        b = result.steady_breakdown()
        rows.append([
            "incremental" if incremental else "full recompute",
            b["correct"],
            result.makespan,
            100.0 * prog.spec_stats.incorrect_fraction,
        ])
    return rows


def bench_ablation_correction(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["correction policy", "correct s/iter", "makespan (s)", "rejected (%)"],
        rows,
        title="ABL-CORR: correction policy (N-body, tight theta)",
    ))
    inc, full = rows[0], rows[1]
    # Same rejection rates (same physics), cheaper correction phase.
    assert abs(inc[3] - full[3]) < 2.0
    assert inc[1] < full[1]
    assert inc[2] < full[2]
