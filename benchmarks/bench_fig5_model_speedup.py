"""FIG5: Section-4 model speedup vs p, speculation vs blocking (k = 2%).

Paper claims: negligible difference at 2–5 processors; significant
gain at p = 16 (paper: ~25 %); the no-speculation curve decreases
beyond ~10 processors.
"""

from repro.harness import fig5_model_speedup


def bench_fig5(benchmark, artifact_sink):
    result = benchmark.pedantic(fig5_model_speedup, rounds=1, iterations=1)
    artifact_sink(result)
    rows = {int(p): (ns, sp, mx) for p, ns, sp, mx in result.rows}
    # Little difference at small p.
    assert abs(rows[2][1] / rows[2][0] - 1.0) < 0.10
    # Significant gain at p = 16.
    assert rows[16][1] / rows[16][0] > 1.10
    # No-speculation curve rolls over beyond ~10 processors.
    nospec = [rows[p][0] for p in sorted(rows)]
    tail = nospec[9:]
    assert any(b < a for a, b in zip(tail, tail[1:]))
    # Everything bounded by the maximum attainable speedup.
    assert all(sp <= mx + 1e-9 and ns <= mx + 1e-9 for ns, sp, mx in rows.values())
