"""ABL-ALLOC: load-balancing policy in the Section-4 model.

Reproduction finding (see ModelParams docs): with the paper's own
parameters, balancing only the computation phase (the literal Eq. 4-5)
makes Eq. 8's maximum land on the slowest processor and speculation
*loses* at p = 16; balancing the total speculative workload restores
the published Fig. 5 behaviour.
"""

from repro.harness import format_table
from repro.perfmodel import PerformanceModel, section4_params


def run_ablation():
    rows = []
    for allocation in ("compute", "total"):
        model = PerformanceModel(section4_params(k=0.02, allocation=allocation))
        for p in (4, 8, 16):
            rows.append([
                allocation,
                p,
                model.speedup_nospec(p),
                model.speedup_spec(p),
                model.speedup_spec(p) / model.speedup_nospec(p) - 1.0,
            ])
    return rows


def bench_ablation_allocation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["allocation", "p", "no spec", "spec", "gain"],
        rows,
        title="ABL-ALLOC: Eq. 4-5 compute balancing vs total-workload balancing",
    ))
    gain = {(r[0], r[1]): r[4] for r in rows}
    # Literal compute balancing: speculation loses at p=16.
    assert gain[("compute", 16)] < 0.0
    # Total balancing: speculation wins at p=16 (the published shape).
    assert gain[("total", 16)] > 0.10
