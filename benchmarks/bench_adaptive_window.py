"""ABL-ADAPT: runtime forward-window adaptation on the paper testbed.

The paper tunes FW offline; this ablation lets each rank retune it
online from observed waiting time and rejection rate (AIMD-style), and
compares against the static windows on the bursty-Ethernet N-body.
"""

from repro.core import run_program
from repro.core.adaptive import AdaptivePolicy, AdaptiveSpeculativeDriver
from repro.apps import NBodyProgram
from repro.harness import format_table
from repro.nbody import uniform_cube
from repro.platforms import wustl_1994


def build(p=16, iterations=20):
    platform = wustl_1994(p=p, jitter_sigma=0.8, background_frames_per_s=24,
                          bursty_traffic=True, seed=1)
    system = uniform_cube(1000, seed=42, softening=0.1)
    prog = NBodyProgram(system, platform.capacities(), iterations=iterations,
                        dt=0.015, threshold=0.01)
    return prog, platform.cluster()


def run_comparison():
    rows = []
    for label, fw in (("static FW=0", 0), ("static FW=1", 1), ("static FW=2", 2)):
        prog, cluster = build()
        res = run_program(prog, cluster, fw=fw, cascade="none")
        rows.append([label, res.time_per_iteration, "-"])
    prog, cluster = build()
    # min_fw=1: communication always dominates on this platform, so the
    # controller should explore windows, not fall back to blocking.
    # Rejection thresholds use the driver's *block-level* rates, which
    # sit well above the particle-level 2%.
    driver = AdaptiveSpeculativeDriver(
        prog, cluster, fw=1,
        policy=AdaptivePolicy(epoch=4, min_fw=1, max_fw=3),
    )
    res = driver.run()
    windows = driver.final_windows()
    rows.append([
        "adaptive (start FW=1)",
        res.time_per_iteration,
        f"final FW in [{min(windows)}, {max(windows)}]",
    ])
    return rows


def bench_adaptive_window(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print(format_table(
        ["configuration", "time/iteration (s)", "windows"],
        rows,
        title="ABL-ADAPT: adaptive vs static forward windows (16 procs, N-body)",
    ))
    times = {r[0]: r[1] for r in rows}
    # Adaptive must be competitive with the best static window and far
    # better than blocking.
    best_static = min(times["static FW=1"], times["static FW=2"])
    assert times["adaptive (start FW=1)"] < 0.7 * times["static FW=0"]
    assert times["adaptive (start FW=1)"] < 1.15 * best_static
