"""ABL-NET: shared Ethernet vs switched LAN.

The paper attributes its large-p degradation to "network contention
(not accounted for in the model)".  This ablation reruns the p = 16
blocking N-body on a switched network with the same per-link bandwidth:
the contention-driven communication blow-up largely disappears, and so
does most of speculation's advantage.
"""

from repro.apps import NBodyProgram
from repro.core import run_program
from repro.harness import format_table
from repro.nbody import uniform_cube
from repro.netsim import ConstantLatency, SwitchedNetwork
from repro.platforms import (
    WUSTL_BUS_BANDWIDTH,
    WUSTL_ENDPOINT_LATENCY,
    wustl_1994,
)
from repro.vm import Cluster


def run_ablation():
    rows = []
    for network, fw in (("bus", 0), ("bus", 1), ("switch", 0), ("switch", 1)):
        platform = wustl_1994(p=16)
        system = uniform_cube(1000, seed=42, softening=0.1)
        prog = NBodyProgram(system, platform.capacities(), iterations=8,
                            dt=0.015, threshold=0.01)
        if network == "bus":
            cluster = platform.cluster()
        else:
            cluster = Cluster(
                platform.specs,
                network_factory=lambda env: SwitchedNetwork(
                    env, nprocs=16, bandwidth=WUSTL_BUS_BANDWIDTH,
                    latency=ConstantLatency(WUSTL_ENDPOINT_LATENCY),
                ),
            )
        result = run_program(prog, cluster, fw=fw, cascade="none")
        b = result.steady_breakdown()
        rows.append([network, fw, b["comm"], b.total])
    return rows


def bench_ablation_network(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["network", "FW", "comm s/iter", "total s/iter"],
        rows,
        title="ABL-NET: shared Ethernet vs switched LAN (16 procs, N-body)",
    ))
    data = {(r[0], r[1]): r for r in rows}
    # The switch removes most of the blocking-run contention.
    assert data[("switch", 0)][2] < 0.5 * data[("bus", 0)][2]
    # Speculation's absolute saving is much larger on the bus.
    bus_saving = data[("bus", 0)][3] - data[("bus", 1)][3]
    switch_saving = data[("switch", 0)][3] - data[("switch", 1)][3]
    assert bus_saving > 2.0 * abs(switch_saving)
