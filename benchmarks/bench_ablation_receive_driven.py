"""ABL-RECV: Fig. 7 receive-driven overlap vs blocking vs speculation.

The paper's actual no-speculation N-body (Fig. 7) absorbs each message
as it arrives instead of waiting for all of them — a speculation-free
form of overlap.  Two findings:

1. Under *steady* traffic with compute > communication, mere
   reordering already captures most of the masking: receive-driven
   lands within a few percent of FW=1 speculation (both far ahead of
   the Fig. 1 blocking exchange).
2. Under a *transient* delay (the Fig. 4 scenario), receive-driven
   still stalls on the delayed message — it cannot proceed past a
   missing input — while speculation sails through.  That gap is the
   paper's actual contribution.
"""

from repro.apps import NBodyProgram
from repro.core import ReceiveDrivenDriver, run_program
from repro.harness import format_table
from repro.harness.toys import IncrementalConstantProgram
from repro.nbody import uniform_cube
from repro.netsim import ConstantLatency, DelayNetwork, TransientSpikes
from repro.netsim.latency import Spike
from repro.platforms import wustl_1994
from repro.vm import Cluster, uniform_specs


def steady_rows():
    def build():
        platform = wustl_1994(p=16, jitter_sigma=0.8, background_frames_per_s=24,
                              bursty_traffic=True, seed=1)
        system = uniform_cube(1000, seed=42, softening=0.1)
        prog = NBodyProgram(system, platform.capacities(), iterations=12,
                            dt=0.015, threshold=0.01)
        return prog, platform.cluster()

    rows = []
    prog, cluster = build()
    rows.append(["steady", "blocking (Fig. 1)",
                 run_program(prog, cluster, fw=0).time_per_iteration])
    prog, cluster = build()
    rows.append(["steady", "receive-driven (Fig. 7)",
                 ReceiveDrivenDriver(prog, cluster).run().time_per_iteration])
    prog, cluster = build()
    rows.append(["steady", "speculative FW=1 (Fig. 3)",
                 run_program(prog, cluster, fw=1, cascade="none").time_per_iteration])
    return rows


def transient_rows():
    """Three processors; the first message on one path is delayed for
    several compute-times (Fig. 4's scenario)."""
    spike = Spike(extra=4.0, t_start=0.5, t_end=1.5, src=0, dst=1)

    def build():
        prog = IncrementalConstantProgram(nprocs=3, iterations=6,
                                          ops_per_compute=1000.0)
        cluster = Cluster(
            uniform_specs(3, capacity=1000.0),
            network_factory=lambda env: DelayNetwork(
                env, TransientSpikes(ConstantLatency(0.3), spikes=(spike,))
            ),
        )
        return prog, cluster

    rows = []
    prog, cluster = build()
    rows.append(["transient", "blocking (Fig. 1)",
                 run_program(prog, cluster, fw=0).makespan])
    prog, cluster = build()
    rows.append(["transient", "receive-driven (Fig. 7)",
                 ReceiveDrivenDriver(prog, cluster).run().makespan])
    prog, cluster = build()
    rows.append(["transient", "speculative FW=2 (Fig. 3)",
                 run_program(prog, cluster, fw=2, cascade="none").makespan])
    return rows


def run_comparison():
    return steady_rows() + transient_rows()


def bench_ablation_receive_driven(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print(format_table(
        ["scenario", "algorithm", "time (s)"],
        rows,
        title="ABL-RECV: overlap by reordering vs overlap by speculation",
    ))
    t = {(r[0], r[1]): r[2] for r in rows}
    # Steady: reordering captures most of the masking; speculation ties.
    assert t[("steady", "receive-driven (Fig. 7)")] < 0.75 * t[("steady", "blocking (Fig. 1)")]
    assert t[("steady", "speculative FW=1 (Fig. 3)")] < 1.1 * t[("steady", "receive-driven (Fig. 7)")]
    # Transient: receive-driven only reorders -- it still cannot start
    # the next iteration before the delayed input lands, so its gain is
    # bounded by the absorb overlap; speculation rides through the
    # delayed message and recovers a further ~FW compute-times.
    block, recv, spec = (
        t[("transient", "blocking (Fig. 1)")],
        t[("transient", "receive-driven (Fig. 7)")],
        t[("transient", "speculative FW=2 (Fig. 3)")],
    )
    assert recv < block
    assert spec < 0.92 * recv
    # The extra saving of speculation over reordering is at least one
    # full compute-time (1 s here) -- the run-ahead recv cannot do.
    assert recv - spec >= 1.0
