"""FIG8: measured N-body speedup vs processors for FW = 0/1/2.

Paper claims (1000 particles, theta = 0.01, up to 16 workstations):
little impact for 2–4 processors; sizeable gain at 16 (paper: 34 %);
speedup within 20 % of the maximum attainable; FW = 2 at least as
good as FW = 1 under transient network load.
"""

from repro.harness import fig8_nbody_speedup


def bench_fig8(benchmark, artifact_sink):
    result = benchmark.pedantic(fig8_nbody_speedup, rounds=1, iterations=1)
    artifact_sink(result)
    rows = {int(r[0]): r[1:] for r in result.rows}  # p -> (fw0, fw1, fw2, max)
    # Speculation helps substantially at p = 16.
    fw0, fw1, fw2, mx = rows[16]
    assert fw1 / fw0 > 1.15
    # Within 20% of the maximum attainable speedup (paper's claim).
    assert fw1 > 0.8 * mx
    # Deeper window at least comparable under bursty traffic.
    assert fw2 > 0.95 * fw1
    # Small p: differences modest (within ~15%).
    s0, s1 = rows[2][0], rows[2][1]
    assert abs(s1 / s0 - 1.0) < 0.20
    # The no-speculation curve rolls over at large p.
    nospec = [rows[p][0] for p in sorted(rows)]
    assert nospec[-1] < max(nospec)
