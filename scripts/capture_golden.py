"""Capture golden RunResult fields from the current driver (parity anchor).

Two modes:

* **capture** (default) — print the golden JSON document to stdout.
  Redirect it into ``tests/golden/engine_reseat.json`` to (re)pin the
  anchor after a *deliberate* behaviour change.
* **--check** — recompute every case and diff it against the checked-in
  golden file, exiting ``1`` with a field-level drift report when
  anything moved.  CI runs this so golden drift fails loudly at the
  gate instead of surfacing later as a mysterious parity-test failure.

The summary layout is mirrored by ``tests/test_engine_golden.py``
(keep in sync).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict

import numpy as np

from repro.apps.jacobi import JacobiSolver, diagonally_dominant_system
from repro.core import run_program
from repro.harness import run_nbody
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs

DEFAULT_GOLDEN = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests" / "golden" / "engine_reseat.json"
)


def jacobi_case(fw: int, cascade: str) -> dict:
    a, b = diagonally_dominant_system(48, seed=7)
    prog = JacobiSolver(a, b, capacities=[1000.0] * 4, iterations=8, threshold=1e-9)
    cluster = Cluster(
        uniform_specs(4, capacity=1000.0),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(0.4)),
    )
    res = run_program(prog, cluster, fw=fw, cascade=cascade)
    return summarize(res)


def nbody_case(fw: int) -> dict:
    _, res = run_nbody(4, fw, config={"n_particles": 120, "iterations": 5})
    return summarize(res)


def nbody_adaptive_case() -> dict:
    """p=4 jittered DES adaptive run: the per-rank WindowChanged
    trajectory is pure virtual-time arithmetic, hence bit-stable."""
    from repro.policy import AimdWindow

    _, res = run_nbody(
        4, 1,
        config={"n_particles": 120, "iterations": 12},
        window_policy=AimdWindow(epoch=2, min_fw=0, max_fw=3),
    )
    doc = summarize(res)
    doc["window_history"] = [
        [[int(t), int(fw)] for t, fw in history]
        for history in res.window_history
    ]
    doc["final_windows"] = res.final_windows()
    return doc


def summarize(res) -> dict:
    return {
        "makespan": repr(float(res.makespan)),
        "iterations": res.iterations,
        "fw": res.fw,
        "final_digest": [
            repr(float(np.asarray(res.final_blocks[r]).sum()))
            for r in sorted(res.final_blocks)
        ],
        "stats": [
            {
                "rank": s.rank,
                "spec_made": s.spec_made,
                "spec_accepted": s.spec_accepted,
                "spec_rejected": s.spec_rejected,
                "checks": s.checks,
                "recomputes": s.recomputes,
                "iterations": s.iterations,
                "tainted_sends": s.tainted_sends,
                "messages_sent": s.messages_sent,
                "messages_received": s.messages_received,
            }
            for s in res.stats
        ],
    }


def capture() -> Dict[str, Any]:
    return {
        "jacobi_fw1_recompute": jacobi_case(1, "recompute"),
        "jacobi_fw2_recompute": jacobi_case(2, "recompute"),
        "jacobi_fw0": jacobi_case(0, "recompute"),
        "jacobi_fw2_none": jacobi_case(2, "none"),
        "nbody_fw0": nbody_case(0),
        "nbody_fw1": nbody_case(1),
        "nbody_fw2": nbody_case(2),
        "nbody_adaptive": nbody_adaptive_case(),
    }


def drift_report(golden: Dict[str, Any], current: Dict[str, Any]) -> list:
    """Field-level differences between the pinned and recomputed goldens."""
    drifts = []
    for case in sorted(set(golden) | set(current)):
        if case not in current:
            drifts.append(f"{case}: pinned but no longer captured")
            continue
        if case not in golden:
            drifts.append(f"{case}: captured but not pinned (re-capture?)")
            continue
        pinned, now = golden[case], current[case]
        for field in sorted(set(pinned) | set(now)):
            if pinned.get(field) != now.get(field):
                drifts.append(
                    f"{case}.{field}: pinned {pinned.get(field)!r} "
                    f"!= current {now.get(field)!r}"
                )
    return drifts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="diff recomputed goldens against the pinned file; exit 1 on drift",
    )
    parser.add_argument(
        "--golden", type=pathlib.Path, default=DEFAULT_GOLDEN,
        help=f"pinned golden file to check against (default: {DEFAULT_GOLDEN})",
    )
    args = parser.parse_args(argv)

    current = capture()
    if not args.check:
        print(json.dumps(current, indent=2, sort_keys=True))
        return 0

    try:
        golden = json.loads(args.golden.read_text())
    except (OSError, ValueError) as exc:
        print(f"capture_golden: cannot read {args.golden}: {exc}",
              file=sys.stderr)
        return 2

    drifts = drift_report(golden, current)
    if drifts:
        print(f"capture_golden: GOLDEN DRIFT against {args.golden}:",
              file=sys.stderr)
        for line in drifts:
            print(f"  {line}", file=sys.stderr)
        print(
            "  if this change is deliberate, re-pin with:\n"
            f"    python scripts/capture_golden.py > {args.golden}",
            file=sys.stderr,
        )
        return 1
    print(f"capture_golden: {len(current)} cases match {args.golden}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
