"""Capture golden RunResult fields from the current driver (parity anchor).

Run before AND after the engine refactor; the outputs must be identical
(the engine golden tests pin these values).
"""

from __future__ import annotations

import json

import numpy as np

from repro.apps.jacobi import JacobiSolver, diagonally_dominant_system
from repro.core import run_program
from repro.harness import run_nbody
from repro.netsim import ConstantLatency, DelayNetwork
from repro.vm import Cluster, uniform_specs


def jacobi_case(fw: int, cascade: str) -> dict:
    a, b = diagonally_dominant_system(48, seed=7)
    prog = JacobiSolver(a, b, capacities=[1000.0] * 4, iterations=8, threshold=1e-9)
    cluster = Cluster(
        uniform_specs(4, capacity=1000.0),
        network_factory=lambda env: DelayNetwork(env, ConstantLatency(0.4)),
    )
    res = run_program(prog, cluster, fw=fw, cascade=cascade)
    return summarize(res)


def nbody_case(fw: int) -> dict:
    _, res = run_nbody(4, fw, config={"n_particles": 120, "iterations": 5})
    return summarize(res)


def summarize(res) -> dict:
    return {
        "makespan": repr(float(res.makespan)),
        "iterations": res.iterations,
        "fw": res.fw,
        "final_digest": [
            repr(float(np.asarray(res.final_blocks[r]).sum()))
            for r in sorted(res.final_blocks)
        ],
        "stats": [
            {
                "rank": s.rank,
                "spec_made": s.spec_made,
                "spec_accepted": s.spec_accepted,
                "spec_rejected": s.spec_rejected,
                "checks": s.checks,
                "recomputes": s.recomputes,
                "iterations": s.iterations,
                "tainted_sends": s.tainted_sends,
                "messages_sent": s.messages_sent,
                "messages_received": s.messages_received,
            }
            for s in res.stats
        ],
    }


def main() -> None:
    golden = {
        "jacobi_fw1_recompute": jacobi_case(1, "recompute"),
        "jacobi_fw2_recompute": jacobi_case(2, "recompute"),
        "jacobi_fw0": jacobi_case(0, "recompute"),
        "jacobi_fw2_none": jacobi_case(2, "none"),
        "nbody_fw0": nbody_case(0),
        "nbody_fw1": nbody_case(1),
        "nbody_fw2": nbody_case(2),
    }
    print(json.dumps(golden, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
