"""Benchmark snapshot: fig8 sweep + table2 phases + adaptive-vs-fixed.

Runs the headline measured experiments and writes a machine-readable
snapshot to ``BENCH_PR9.json`` at the repo root, so successive PRs can
diff the performance trajectory instead of eyeballing tables.

Schema (``BENCH_PR9.json``)::

    {
      "schema": "bench-snapshot/v1",
      "label": "PR9",                  # --label
      "quick": false,                  # --quick used?
      "config": {                      # overrides applied to HEADLINE
        "n_particles": 1000, "iterations": 20, "ps": [1, 2, ...]
      },
      "fig8": {
        "experiment_id": "FIG8",
        "headers": ["p", "FW=0", "FW=1", "FW=2", "maximum"],
        "rows": [[1, 1.0, 1.0, 1.0, 1.0], ...],   # speedups vs p=1
        "gains": {"1": 0.12, "2": 0.18},          # FW gain over FW=0
        "wall_seconds": 12.3                      # host wall time
      },
      "table2": {
        "experiment_id": "TAB2",
        "headers": ["fw", "comp", "comm", "spec", "check",
                    "correct", "total"],
        "rows": [[0, 5.8, 4.7, 0.0, 0.0, 0.0, 10.5], ...],  # seconds
        "wall_seconds": 4.5
      },
      "adaptive": {                    # engine-seated AimdWindow vs the
        "policy": {"epoch": 2, "min_fw": 0, "max_fw": 3},  # same run at
        "headers": ["p", "fixed FW=1", "adaptive", "gain",  # fixed FW=1
                    "final windows", "changes"],
        "rows": [[4, 61.2, 59.8, 0.023, [1, 2, 2, 1], 5], ...],
        "wall_seconds": 8.1
      }
    }

Simulated quantities (rows) are deterministic — the DES is seeded —
so two snapshots at the same config differ only in ``wall_seconds``.
``--quick`` shrinks the sweep (fewer particles / iterations /
processor counts) for smoke use in CI; the committed snapshot is the
full run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.harness.experiments import (
    fig8_nbody_speedup,
    run_nbody,
    table2_phase_times,
)
from repro.policy import AimdWindow

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_PR9.json"

#: Processor counts for the fig8 sweep (full vs --quick).
FULL_PS = (1, 2, 4, 6, 8, 10, 12, 14, 16)
QUICK_PS = (1, 2, 4)

#: Processor counts for the adaptive-vs-fixed comparison (a subset of
#: the fig8 sweep: adaptation only matters where communication does).
FULL_ADAPTIVE_PS = (4, 8, 16)
QUICK_ADAPTIVE_PS = (2, 4)

#: The seated policy for the comparison column (mirrors the CLI's
#: --adaptive defaults, with max_fw capped at 3 like the golden case).
ADAPTIVE_POLICY = {"epoch": 2, "min_fw": 0, "max_fw": 3}


def adaptive_vs_fixed(ps, config=None) -> dict:
    """Fixed FW=1 vs the same run with an engine-seated AimdWindow.

    Both runs share initial conditions and platform; the only delta is
    the seated policy, so the makespan gap is the value (or cost) of
    runtime window adaptation on the jittered calibrated testbed.
    """
    rows = []
    for p in ps:
        _, fixed = run_nbody(p, 1, config=config)
        _, adaptive = run_nbody(
            p, 1, config=config, window_policy=AimdWindow(**ADAPTIVE_POLICY)
        )
        gain = 1.0 - float(adaptive.makespan) / float(fixed.makespan)
        changes = sum(len(h) - 1 for h in adaptive.window_history)
        rows.append([
            p,
            round(float(fixed.makespan), 6),
            round(float(adaptive.makespan), 6),
            round(gain, 6),
            adaptive.final_windows(),
            changes,
        ])
    return {
        "policy": dict(ADAPTIVE_POLICY),
        "headers": ["p", "fixed FW=1", "adaptive", "gain",
                    "final windows", "changes"],
        "rows": rows,
    }


def snapshot(quick: bool = False, label: str = "PR9") -> dict:
    """Run the experiments and assemble the schema-v1 document."""
    if quick:
        config = {"n_particles": 120, "iterations": 5}
        ps = QUICK_PS
        adaptive_ps = QUICK_ADAPTIVE_PS
        tab2_p = 4
    else:
        config = {}
        ps = FULL_PS
        adaptive_ps = FULL_ADAPTIVE_PS
        tab2_p = 16

    t0 = time.perf_counter()
    fig8 = fig8_nbody_speedup(ps=ps, config=config or None)
    t_fig8 = time.perf_counter() - t0

    t0 = time.perf_counter()
    tab2 = table2_phase_times(p=tab2_p, config=config or None)
    t_tab2 = time.perf_counter() - t0

    t0 = time.perf_counter()
    adaptive = adaptive_vs_fixed(adaptive_ps, config=config or None)
    t_adaptive = time.perf_counter() - t0

    doc = {
        "schema": "bench-snapshot/v1",
        "label": label,
        "quick": quick,
        "config": {**config, "ps": list(ps), "table2_p": tab2_p},
        "fig8": {
            **fig8.to_dict(),
            "gains": {str(fw): g for fw, g in sorted(fig8.extra["gains"].items())},
            "wall_seconds": round(t_fig8, 3),
        },
        "table2": {
            **tab2.to_dict(),
            "wall_seconds": round(t_tab2, 3),
        },
        "adaptive": {
            **adaptive,
            "wall_seconds": round(t_adaptive, 3),
        },
    }
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT,
        help=f"output file (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrunk sweep (120 particles, 5 iterations, p <= 4) for CI smoke",
    )
    parser.add_argument(
        "--label", default="PR9",
        help="snapshot label recorded in the document (default: PR9)",
    )
    args = parser.parse_args(argv)

    doc = snapshot(quick=args.quick, label=args.label)
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    fig8_wall = doc["fig8"]["wall_seconds"]
    tab2_wall = doc["table2"]["wall_seconds"]
    adaptive_wall = doc["adaptive"]["wall_seconds"]
    print(
        f"bench_snapshot: wrote {args.out} "
        f"(fig8 {fig8_wall:.1f}s, table2 {tab2_wall:.1f}s, "
        f"adaptive {adaptive_wall:.1f}s"
        f"{', quick' if args.quick else ''})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
