"""Benchmark: speculative speedup vs injected message-loss rate.

Runs the chaos layer (`repro.faults`) through the unified run API and
writes a machine-readable snapshot to ``BENCH_PR10.json`` at the repo
root.

Two sections:

* ``des`` — the deterministic virtual-time curve at p=4 and p=16:
  makespan at FW=0 (blocking) vs FW=2 (the masking window) across
  loss rates, plus the recovery receipts (injected drops, serviced /
  sender-timeout retransmits, outstanding).  The DES absorbs
  recovery into poll charges, so the headline here is *stability*:
  the speculative speedup survives loss, every drop heals, and at
  FW=1 the physics stay bit-identical to the fault-free run
  (``verified`` column; the fw=1 + cascade=recompute contract, see
  docs/robustness.md).
* ``mp`` — a small p=4 wall-clock section where retransmit timers
  cost real seconds, so the speedup genuinely degrades with the loss
  rate.  Noisy (host-dependent); the DES rows are the reproducible
  record.

Schema (``BENCH_PR10.json``)::

    {
      "schema": "bench-chaos/v1",
      "label": "PR10",
      "plan": {"seed": 1, "sender_timeout": ..., ...},
      "des": {
        "headers": ["p", "loss_rate", "FW=0", "FW=2", "speedup",
                    "drops", "healed", "outstanding", "verified"],
        "rows": [[4, 0.01, 0.7503, 0.4010, 1.871, 3, 3, 0, true], ...],
        "wall_seconds": 2.1
      },
      "mp": { ... same headers, FW=2 on real processes ... }
    }

Usage::

    PYTHONPATH=src python scripts/bench_chaos.py [--quick] [--skip-mp]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import time

import numpy as np

from repro.api import RunConfig, run
from repro.apps import JacobiSolver
from repro.apps.jacobi import diagonally_dominant_system
from repro.faults import EdgeFault, FaultPlan

from tests.toy_programs import CoupledIncrement  # noqa: E402  (repo-local)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

LOSS_RATES = (0.0, 0.01, 0.05, 0.1)
HEADERS = ["p", "loss_rate", "FW=0", "FW=2", "speedup",
           "drops", "healed", "outstanding", "verified"]


def _plan(rate: float, wall_clock: bool = False) -> FaultPlan | None:
    """Drop faults at ``rate``; wall-clock units shrink the timers so
    an mp row costs seconds, not the 8 s default sender timer."""
    if rate == 0.0:
        return None
    kwargs = {}
    if wall_clock:
        kwargs = dict(retry_backoff=0.1, retransmit_delay=0.05,
                      sender_timeout=0.5)
    return FaultPlan(seed=1, edges=(EdgeFault(kind="drop", rate=rate),),
                     **kwargs)


def _receipt(report):
    if report.fault_summary is None:
        return 0, 0, 0
    s = report.fault_summary
    healed = s["retransmits_serviced"] + s["auto_retransmits"]
    return s["injected"].get("drop", 0), healed, s["outstanding_losses"]


def _verified(config: RunConfig) -> bool:
    """fw=1 physics parity: chaos vs fault-free, bit for bit."""
    chaos = run(dataclasses.replace(config, fw=1))
    clean = run(dataclasses.replace(config, fw=1, fault_plan=None))
    return all(
        np.array_equal(chaos.results[r], clean.results[r])
        for r in chaos.results
    )


def bench_des(ps, iterations, n) -> dict:
    t0 = time.perf_counter()
    rows = []
    for p in ps:
        a, b = diagonally_dominant_system(n, seed=3)
        prog = JacobiSolver(a, b, capacities=[1000.0] * p,
                            iterations=iterations, threshold=0.0)
        for rate in LOSS_RATES:
            base = RunConfig(prog, backend="des", cascade="recompute",
                             latency=0.05, fault_plan=_plan(rate))
            blocking = run(dataclasses.replace(base, fw=0))
            masking = run(dataclasses.replace(base, fw=2))
            drops, healed, outstanding = _receipt(masking)
            rows.append([
                p, rate,
                round(blocking.wall_seconds, 6),
                round(masking.wall_seconds, 6),
                round(blocking.wall_seconds / masking.wall_seconds, 4),
                drops, healed, outstanding,
                _verified(base),
            ])
            print("des :", rows[-1])
    return {"headers": HEADERS, "rows": rows,
            "wall_seconds": round(time.perf_counter() - t0, 3)}


def bench_mp(iterations, wall_compute) -> dict:
    t0 = time.perf_counter()
    rows = []
    p = 4
    prog = CoupledIncrement(p, iterations, coupling=0.05,
                            wall_compute=wall_compute)
    for rate in LOSS_RATES:
        base = RunConfig(prog, backend="mp", cascade="recompute",
                         latency=0.02, timeout=240.0,
                         fault_plan=_plan(rate, wall_clock=True))
        blocking = run(dataclasses.replace(base, fw=0))
        masking = run(dataclasses.replace(base, fw=2))
        drops, healed, outstanding = _receipt(masking)
        rows.append([
            p, rate,
            round(blocking.wall_seconds, 3),
            round(masking.wall_seconds, 3),
            round(blocking.wall_seconds / masking.wall_seconds, 4),
            drops, healed, outstanding,
            _verified(base),
        ])
        print("mp  :", rows[-1])
    return {"headers": HEADERS, "rows": rows,
            "wall_seconds": round(time.perf_counter() - t0, 3)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrink the sweep for smoke use")
    parser.add_argument("--skip-mp", action="store_true",
                        help="DES section only (e.g. on starved hosts)")
    parser.add_argument("--label", default="PR10")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR10.json"))
    args = parser.parse_args()

    iterations = 8 if args.quick else 16
    snapshot = {
        "schema": "bench-chaos/v1",
        "label": args.label,
        "quick": args.quick,
        "plan": {"seed": 1, "kinds": ["drop"], "loss_rates": list(LOSS_RATES)},
        "des": bench_des(ps=(4, 16), iterations=iterations,
                         n=32 if args.quick else 64),
    }
    if not args.skip_mp:
        snapshot["mp"] = bench_mp(iterations=6 if args.quick else 10,
                                  wall_compute=0.01)
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
