"""Per-process worker implementing the speculative protocol on pipes.

Each worker owns one rank's block and a duplex
:class:`multiprocessing.connection.Connection` to every other rank.
Injected latency is enforced at the *receiver*: each message carries a
``deliver_at`` wall-clock stamp, and a message does not count as
arrived (for probe or blocking receive) until that instant passes —
exactly how the simulator's delay networks behave.

Only forward windows 0 and 1 are supported here: FW >= 2 requires the
cascade machinery that lives in the simulator driver, and the paper's
wall-clock claims are made for FW <= 2 with FW = 1 carrying the
headline result.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.trace.events import TraceEvent

#: Tag family used for the protocol's variable exchange (mirrors the
#: simulator driver's ``VARS`` constant).
VARS = "vars"


@dataclass
class WorkerReport:
    """What a worker sends back to the parent when it finishes."""

    rank: int
    final_block: Any
    phase_seconds: dict[str, float]
    spec_made: int = 0
    spec_accepted: int = 0
    spec_rejected: int = 0
    recomputes: int = 0
    wall_seconds: float = 0.0
    error: Optional[str] = None
    #: Protocol trace events (populated when the runner records them);
    #: times are wall seconds relative to the worker's protocol start.
    events: list[TraceEvent] = field(default_factory=list)


class _Mailbox:
    """Receiver-side message buffer with delivery-time gating."""

    def __init__(self, conns: Mapping[int, Any]) -> None:
        self._conns = dict(conns)
        self._pending: list[tuple[float, int, int, Any]] = []  # (deliver_at, src, t, payload)

    def _pump(self) -> None:
        for src, conn in self._conns.items():
            while conn.poll():
                deliver_at, t, payload = conn.recv()
                self._pending.append((deliver_at, src, t, payload))

    def try_take(self, src: int, t: int, now: Optional[float] = None) -> Optional[Any]:
        """Non-blocking: the (src, t) payload if already *delivered*."""
        self._pump()
        if now is None:
            now = time.monotonic()
        for i, (deliver_at, s, mt, payload) in enumerate(self._pending):
            if s == src and mt == t and deliver_at <= now:
                del self._pending[i]
                return payload
        return None

    def take_blocking(self, src: int, t: int, poll_interval: float = 1e-4) -> Any:
        """Block until the (src, t) message is delivered; return payload."""
        while True:
            now = time.monotonic()
            got = self.try_take(src, t, now=now)
            if got is not None:
                return got
            # Sleep until the earliest matching pending delivery, or a
            # short poll if nothing matching is buffered yet.
            matching = [
                d for d, s, mt, _ in self._pending if s == src and mt == t
            ]
            if matching:
                time.sleep(max(0.0, min(matching) - now))
            else:
                time.sleep(poll_interval)


class _PhaseTimer:
    """Accumulates wall time per protocol phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    def add(self, phase: str, start: float) -> float:
        now = time.monotonic()
        self.seconds[phase] = self.seconds.get(phase, 0.0) + (now - start)
        return now


def worker_main(
    rank: int,
    program: Any,
    fw: int,
    conns: Mapping[int, Any],
    result_conn: Any,
    latency: float,
    jitter: float,
    seed: int,
    start_barrier: Any,
    record_events: bool = False,
) -> None:
    """Entry point executed inside each worker process."""
    try:
        report = _run_protocol(
            rank, program, fw, conns, latency, jitter, seed, start_barrier,
            record_events=record_events,
        )
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover - interactive
        # Never convert interpreter-shutdown signals into a report: the
        # parent interprets worker death directly.
        raise
    except Exception as exc:  # pragma: no cover - surfaced to the parent
        # Preserve the full original traceback in the surfaced error so
        # the parent's re-raise points at the real failure site.
        report = WorkerReport(
            rank=rank,
            final_block=None,
            phase_seconds={},
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
        )
    result_conn.send(report)
    result_conn.close()


def _run_protocol(rank, program, fw, conns, latency, jitter, seed, start_barrier,
                  record_events=False):
    rng = np.random.default_rng(seed * 1000 + rank)
    timer = _PhaseTimer()
    mailbox = _Mailbox(conns)
    T = program.iterations
    needed = sorted(program.needed(rank))
    audience = [k for k in conns if rank in program.needed(k)]

    events: list[TraceEvent] = []
    seq = 0
    t_start = time.monotonic()  # re-stamped after the start barrier

    def emit(kind: str, peer: Optional[int] = None, iteration: Optional[int] = None) -> None:
        """Record one protocol trace event (no-op unless recording)."""
        nonlocal seq
        if not record_events:
            return
        events.append(
            TraceEvent(
                rank=rank, seq=seq, kind=kind,
                time=time.monotonic() - t_start,
                peer=peer, family=VARS, iteration=iteration,
            )
        )
        seq += 1

    def send_block(t: int, block: Any) -> None:
        for dst in audience:
            delay = latency
            if jitter > 0:
                delay *= float(np.exp(rng.normal(0.0, jitter)))
            emit("send", peer=dst, iteration=t)
            conns[dst].send((time.monotonic() + delay, t, block))

    chain = program.initial_block(rank)
    history: dict[int, list] = {k: [(0, program.initial_block(k))] for k in needed}
    bw_cap = max(getattr(program.speculator, "backward_window", 1), 2) + 1
    spec_made = spec_accepted = spec_rejected = recomputes = 0

    start_barrier.wait()
    t_start = time.monotonic()  # event times are relative to this instant

    for t in range(T):
        # Send X_rank(t) (t = 0 is known everywhere).
        if t > 0:
            send_block(t, chain)

        # Gather inputs: receive what is here, speculate the rest.
        inputs: dict[int, Any] = {rank: chain}
        speculated: dict[int, Any] = {}
        for k in needed:
            actual = mailbox.try_take(k, t) if t > 0 else history[k][0][1]
            if t > 0 and actual is not None:
                emit("recv", peer=k, iteration=t)
                history[k].append((t, actual))
                del history[k][:-bw_cap]
            if actual is not None:
                inputs[k] = actual
            elif fw >= 1:
                s0 = time.monotonic()
                times = [ht for ht, _ in history[k]]
                values = [hv for _, hv in history[k]]
                spec = program.speculate(rank, k, times, values, t)
                timer.add("spec", s0)
                emit("speculate", peer=k, iteration=t)
                inputs[k] = spec
                speculated[k] = spec
            else:
                s0 = time.monotonic()
                actual = mailbox.take_blocking(k, t)
                timer.add("comm", s0)
                emit("recv", peer=k, iteration=t)
                history[k].append((t, actual))
                del history[k][:-bw_cap]
                inputs[k] = actual

        # Compute X_rank(t+1).
        emit("compute", iteration=t)
        s0 = time.monotonic()
        next_block = program.compute(rank, inputs, t)
        timer.add("compute", s0)

        # Verify stragglers (FW = 1 path).
        spec_made += len(speculated)
        for k, spec in speculated.items():
            s0 = time.monotonic()
            actual = mailbox.take_blocking(k, t)
            s0 = timer.add("comm", s0)
            emit("recv", peer=k, iteration=t)
            history[k].append((t, actual))
            del history[k][:-bw_cap]
            emit("verify", peer=k, iteration=t)
            error = program.check(rank, k, spec, actual, chain)
            s0 = timer.add("check", s0)
            if error > program.threshold:
                next_block, _ops = program.correct(
                    rank, next_block, inputs, k, spec, actual, t
                )
                inputs[k] = actual
                timer.add("correct", s0)
                emit("correct", peer=k, iteration=t)
                spec_rejected += 1
                recomputes += 1
            else:
                spec_accepted += 1

        chain = next_block

    wall = time.monotonic() - t_start
    return WorkerReport(
        rank=rank,
        final_block=chain,
        phase_seconds=timer.seconds,
        spec_made=spec_made,
        spec_accepted=spec_accepted,
        spec_rejected=spec_rejected,
        recomputes=recomputes,
        wall_seconds=wall,
        events=events,
    )
