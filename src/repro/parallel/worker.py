"""Per-process worker: one rank's engine driven over real pipes.

Each worker owns one rank's block and a duplex
:class:`multiprocessing.connection.Connection` to every other rank.
The speculative protocol itself is :class:`repro.engine.SpecEngine` —
the same state machine the DES and loopback backends run — interpreted
against the pipes by
:class:`~repro.engine.pipes.PipeTransport`: injected latency is
enforced at the receiver via per-message delivery stamps, sends carry
per-destination sequence numbers (restoring FIFO-with-delay order
under jitter — the SPF111 fix), and blocking receives park in
``select`` rather than sleep-polling.

Because the engine owns the cascade machinery, every forward window
the simulator supports (including FW >= 2 and ``cascade="none"``) now
runs on real processes too.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.core.results import SpecStats
from repro.engine.core import SpecEngine, topology
from repro.engine.events import VARS  # noqa: F401  (re-export, back-compat)
from repro.engine.pipes import PipeTransport
from repro.engine.transport import drive
from repro.faults import FaultPlan, FaultyTransport
from repro.policy import WindowPolicy
from repro.trace.events import TraceEvent


@dataclass
class WorkerReport:
    """What a worker sends back to the parent when it finishes."""

    rank: int
    final_block: Any
    phase_seconds: dict[str, float]
    spec_made: int = 0
    spec_accepted: int = 0
    spec_rejected: int = 0
    recomputes: int = 0
    checks: int = 0
    tainted_sends: int = 0
    wall_seconds: float = 0.0
    error: Optional[str] = None
    #: Protocol trace events (populated when the runner records them);
    #: times are wall seconds relative to the worker's protocol start.
    events: list[TraceEvent] = field(default_factory=list)
    #: (iteration, new_fw) window-policy decisions on this rank.
    window_history: list[tuple[int, int]] = field(default_factory=list)
    #: The FW this rank's engine ended the run with.
    final_fw: int = 0
    #: Retransmit requests this rank's engine issued.
    retransmits: int = 0
    #: Duplicate deliveries the engine suppressed by Send.seq.
    dups_suppressed: int = 0
    #: Injected-fault accounting (:meth:`FaultSummary.to_dict`) when
    #: the worker ran under a fault plan; None on clean runs.
    fault_summary: Optional[dict] = None


def worker_main(
    rank: int,
    program: Any,
    fw: int,
    conns: Mapping[int, Any],
    result_conn: Any,
    latency: float,
    jitter: float,
    seed: int,
    start_barrier: Any,
    record_events: bool = False,
    cascade: str = "recompute",
    sanitize: Optional[bool] = None,
    window_policy: Optional[WindowPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    hist_cap: Optional[int] = None,
) -> None:
    """Entry point executed inside each worker process."""
    try:
        report = _run_protocol(
            rank, program, fw, conns, latency, jitter, seed, start_barrier,
            record_events=record_events, cascade=cascade, sanitize=sanitize,
            window_policy=window_policy, fault_plan=fault_plan,
            hist_cap=hist_cap,
        )
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover - interactive
        # Never convert interpreter-shutdown signals into a report: the
        # parent interprets worker death directly.
        raise
    except Exception as exc:  # pragma: no cover - surfaced to the parent
        # Preserve the full original traceback in the surfaced error so
        # the parent's re-raise points at the real failure site.
        report = WorkerReport(
            rank=rank,
            final_block=None,
            phase_seconds={},
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
        )
    result_conn.send(report)
    result_conn.close()


def _run_protocol(
    rank, program, fw, conns, latency, jitter, seed, start_barrier,
    record_events=False, cascade="recompute", sanitize=None,
    window_policy=None, fault_plan=None, hist_cap=None,
):
    """Build this rank's engine + transport and run to completion."""
    needed, audience = topology(program)
    stats = SpecStats(rank=rank)
    retry_kwargs = (
        {}
        if fault_plan is None
        else {
            "max_retries": fault_plan.max_retries,
            "retry_backoff": fault_plan.retry_backoff,
        }
    )
    engine = SpecEngine(
        program, rank, needed[rank], audience[rank],
        fw=fw, cascade=cascade, stats=stats, policy=window_policy,
        hist_cap=hist_cap, **retry_kwargs,
    )
    transport = PipeTransport(
        rank, conns,
        latency=latency, jitter=jitter,
        rng=np.random.default_rng(seed * 1000 + rank),
        record_events=record_events,
        sanitize=sanitize,
    )
    if fault_plan is not None:
        # Receive-side injection downstream of the pipe's wire
        # bookkeeping: the wire stays gap-free, the engine sees chaos.
        transport = FaultyTransport(transport, fault_plan)
    # Same sanitizer instance in the engine's buffer-occupancy seat.
    engine.sanitizer = transport.sanitizer

    start_barrier.wait()
    transport.start()  # event times / wall_seconds relative to here
    final = drive(engine, transport)
    transport.finish()  # end-of-run sanitizer seat (eventual verification)
    return WorkerReport(
        rank=rank,
        final_block=final,
        phase_seconds=transport.phase_seconds,
        spec_made=stats.spec_made,
        spec_accepted=stats.spec_accepted,
        spec_rejected=stats.spec_rejected,
        recomputes=stats.recomputes,
        checks=stats.checks,
        tainted_sends=stats.tainted_sends,
        wall_seconds=transport.wall_seconds,
        events=transport.events,
        window_history=[(0, fw)] + transport.window_events,
        final_fw=engine.fw,
        retransmits=stats.retransmits,
        dups_suppressed=stats.dups_suppressed,
        fault_summary=(
            transport.injector.summary().to_dict()
            if fault_plan is not None
            else None
        ),
    )
