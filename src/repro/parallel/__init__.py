"""Real-parallel execution backend (multiprocessing).

Runs a :class:`~repro.core.SyncIterativeProgram` on actual OS
processes exchanging numpy payloads over pipes, with optional injected
per-message latency standing in for the paper's slow Ethernet.  Wall
clock replaces virtual time; the speculation protocol (FW = 0 or 1) is
the same as the simulator's, so the simulated findings can be
validated on real parallel hardware.

PVM is substituted by ``multiprocessing`` per the reproduction notes:
mpi4py is the natural modern target (the API mirrors its
send/recv/probe idioms) but is unavailable offline.
"""

from repro.parallel.runner import MPRunResult, MPRunner

__all__ = ["MPRunResult", "MPRunner"]
