"""Parent-side orchestration for the multiprocessing backend."""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Optional

from repro.core.program import SyncIterativeProgram
from repro.engine.pipes import close_mesh, full_mesh
from repro.faults import FaultPlan, merge_summaries
from repro.faults.plan import FaultSummary
from repro.parallel.worker import WorkerReport, worker_main
from repro.policy import CascadePolicy, WindowPolicy
from repro.trace.events import EventLog


@dataclass
class MPRunResult:
    """Measurements from one real-process run.

    Attributes
    ----------
    wall_seconds:
        Longest per-worker wall time (protocol start to finish).
    final_blocks:
        rank → final block.
    reports:
        Full per-worker reports (phase seconds, speculation counters).
    fw:
        Forward window used.
    """

    wall_seconds: float
    final_blocks: dict[int, Any]
    reports: list[WorkerReport]
    fw: int

    def event_log(self) -> EventLog:
        """Merged protocol trace events from every worker.

        Empty unless the runner was constructed with
        ``record_events=True``.  Per-worker event times are relative to
        each worker's protocol start (the post-barrier instant), so
        cross-rank comparisons should rely on the happens-before
        structure (``seq`` + message matching), not the clock.
        """
        log = EventLog()
        for report in self.reports:
            # One-shot post-run merge of the workers' own (finite) logs,
            # not a long-running protocol buffer.
            log.extend(report.events)  # specbound: disable=SPB406
        return log

    def window_history(self) -> dict[int, list[tuple[int, int]]]:
        """rank → (iteration, fw) trajectory from each worker's seated
        window policy (a single ``(0, fw)`` entry for static runs)."""
        return {r.rank: list(r.window_history) for r in self.reports}

    def final_windows(self) -> list[int]:
        """The FW each rank's engine ended the run with."""
        return [r.final_fw for r in self.reports]

    def fault_summary(self) -> Optional[dict]:
        """Fleet-wide injected-fault/recovery totals, None on clean runs."""
        per_rank = [r.fault_summary for r in self.reports]
        if all(s is None for s in per_rank):
            return None
        summaries = [
            FaultSummary(
                rank=s["rank"],
                injected=dict(s["injected"]),
                retransmits_serviced=s["retransmits_serviced"],
                auto_retransmits=s["auto_retransmits"],
                outstanding_losses=s["outstanding_losses"],
            )
            for s in per_rank
            if s is not None
        ]
        merged = merge_summaries(summaries)
        merged["retransmits_requested"] = sum(
            r.retransmits for r in self.reports
        )
        merged["dups_suppressed"] = sum(
            r.dups_suppressed for r in self.reports
        )
        return merged

    def phase_seconds(self, phase: str, how: str = "max") -> float:
        """Aggregate one phase's wall time over workers."""
        values = [r.phase_seconds.get(phase, 0.0) for r in self.reports]
        if how == "max":
            return max(values)
        if how == "sum":
            return sum(values)
        if how == "mean":
            return sum(values) / len(values)
        raise ValueError(f"unknown aggregation {how!r}")

    @property
    def rejection_rate(self) -> float:
        """Cluster-wide fraction of checked speculations rejected."""
        checks = sum(r.spec_accepted + r.spec_rejected for r in self.reports)
        if checks == 0:
            return 0.0
        return sum(r.spec_rejected for r in self.reports) / checks


class MPRunner:
    """Run a program on real OS processes with injected message latency.

    Parameters
    ----------
    program:
        The application; must be picklable (all bundled apps are).
    fw:
        Forward window: 0 (blocking) or any depth >= 1 (speculative).
        The engine owns the cascade machinery, so FW >= 2 runs on real
        processes exactly as in the simulator.
    cascade:
        Correction cascade policy, ``"recompute"`` (default) or
        ``"none"`` (see :class:`~repro.core.driver.SpeculativeDriver`).
    latency:
        Injected one-way message delay in wall seconds (0 = pipes at
        native speed).
    jitter:
        Log-normal sigma multiplying the injected latency per message.
    seed:
        Seed for the per-worker jitter streams.
    start_method:
        ``multiprocessing`` start method; ``"fork"`` (default on Linux)
        avoids re-importing the world per worker.
    record_events:
        Record per-worker protocol trace events
        (:class:`~repro.trace.events.TraceEvent`), merged afterwards by
        :meth:`MPRunResult.event_log` — the input for ``repro analyze
        --trace`` replay.
    sanitize:
        Arm the per-worker runtime
        :class:`~repro.analysis.sanitizer.ProtocolSanitizer`; ``None``
        (default) defers to ``REPRO_SANITIZE`` (inherited by workers).
        A violation in any worker surfaces as that worker's error.
    window_policy:
        Optional :class:`~repro.policy.WindowPolicy` template (must be
        picklable); each worker's engine spawns a private copy, so
        ranks adapt their forward windows independently on real wall
        clocks.  Decisions come back in ``WorkerReport.window_history``
        (see :meth:`MPRunResult.window_history`).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; each worker wraps
        its pipe transport in a
        :class:`~repro.faults.FaultyTransport`, so the plan's seeded
        drops/duplicates/delays/reorders, straggler slowdowns and
        crashes inject on the receive path while the engine's
        retransmit layer recovers.  Per-rank receipts come back in
        ``WorkerReport.fault_summary`` (see
        :meth:`MPRunResult.fault_summary`).
    """

    def __init__(
        self,
        program: SyncIterativeProgram,
        fw: int = 1,
        latency: float = 0.0,
        jitter: float = 0.0,
        seed: int = 0,
        start_method: Optional[str] = None,
        record_events: bool = False,
        cascade: "CascadePolicy | str" = CascadePolicy.RECOMPUTE,
        sanitize: Optional[bool] = None,
        window_policy: Optional[WindowPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        hist_cap: Optional[int] = None,
    ) -> None:
        if fw < 0:
            raise ValueError("fw must be >= 0")
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be >= 0")
        self.program = program
        self.fw = fw
        self.cascade = CascadePolicy.coerce(cascade)
        self.window_policy = window_policy
        self.fault_plan = fault_plan
        self.hist_cap = hist_cap
        self.latency = latency
        self.jitter = jitter
        self.seed = seed
        self.record_events = record_events
        self.sanitize = sanitize
        self._ctx = mp.get_context(start_method) if start_method else mp.get_context()

    def run(self, timeout: float = 300.0) -> MPRunResult:
        """Execute to completion; raises on worker failure or timeout."""
        p = self.program.nprocs
        ctx = self._ctx

        # Full mesh of duplex pipes: mesh[i][j] is i's endpoint to j.
        mesh = full_mesh(ctx, p)

        result_conns = []
        barrier = ctx.Barrier(p)
        workers = []
        for rank in range(p):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            result_conns.append(parent_conn)
            proc = ctx.Process(
                target=worker_main,
                args=(
                    rank,
                    self.program,
                    self.fw,
                    mesh[rank],
                    child_conn,
                    self.latency,
                    self.jitter,
                    self.seed,
                    barrier,
                    self.record_events,
                    self.cascade,
                    self.sanitize,
                    self.window_policy,
                    self.fault_plan,
                    self.hist_cap,
                ),
                daemon=True,
            )
            workers.append(proc)
        for proc in workers:
            proc.start()
        # The children inherited their mesh endpoints on fork; the
        # parent's copies would otherwise keep every pipe open even
        # after a worker dies.
        close_mesh(
            conn for row in mesh.values() for conn in row.values()
        )

        # Multiplex over all result pipes rather than polling rank 0
        # first: a rank that fails *before* the start barrier reports
        # immediately while its peers are still parked at the barrier,
        # and waiting rank-by-rank would burn the full timeout before
        # noticing.  On the first error report the barrier is aborted
        # so parked peers fail fast instead of hanging.
        reports: list[WorkerReport] = []
        pending: dict[Any, int] = {
            conn: rank for rank, conn in enumerate(result_conns)
        }
        deadline = time.monotonic() + timeout
        #: Once any worker reports an error, its peers may be blocked
        #: on receives that will never be satisfied — give them a short
        #: grace window to fail on their own, then give up on them
        #: rather than burning the full run timeout.
        failure_grace = 10.0
        failed = False
        try:
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    missing = sorted(pending.values())
                    if failed:
                        reports.extend(
                            WorkerReport(
                                rank=rank,
                                final_block=None,
                                phase_seconds={},
                                error="did not report after a peer failed",
                            )
                            for rank in missing
                        )
                        pending.clear()
                        break
                    raise TimeoutError(
                        f"worker(s) {missing} did not report within {timeout}s"
                    )
                ready = mp_connection.wait(list(pending), timeout=remaining)
                for conn in ready:
                    rank = pending.pop(conn)
                    try:
                        report = conn.recv()
                    except EOFError:
                        report = WorkerReport(
                            rank=rank,
                            final_block=None,
                            phase_seconds={},
                            error="worker process died without reporting",
                        )
                    reports.append(report)
                    if report.error is not None:
                        barrier.abort()  # unpark peers still at the barrier
                        if not failed:
                            failed = True
                            deadline = min(
                                deadline, time.monotonic() + failure_grace
                            )
        finally:
            for proc in workers:
                proc.join(timeout=10)
            stragglers = [proc for proc in workers if proc.is_alive()]
            for proc in stragglers:  # pragma: no cover - defensive
                proc.terminate()
            for proc in stragglers:  # pragma: no cover - defensive
                proc.join(timeout=5)

        failed = [r for r in reports if r.error is not None]
        if failed:
            raise RuntimeError(
                "; ".join(f"rank {r.rank}: {r.error}" for r in failed)
            )
        reports.sort(key=lambda r: r.rank)
        return MPRunResult(
            wall_seconds=max(r.wall_seconds for r in reports),
            final_blocks={r.rank: r.final_block for r in reports},
            reports=reports,
            fw=self.fw,
        )
