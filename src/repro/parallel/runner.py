"""Parent-side orchestration for the multiprocessing backend."""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.program import SyncIterativeProgram
from repro.engine.pipes import close_mesh, full_mesh
from repro.parallel.worker import WorkerReport, worker_main
from repro.policy import CascadePolicy, WindowPolicy
from repro.trace.events import EventLog


@dataclass
class MPRunResult:
    """Measurements from one real-process run.

    Attributes
    ----------
    wall_seconds:
        Longest per-worker wall time (protocol start to finish).
    final_blocks:
        rank → final block.
    reports:
        Full per-worker reports (phase seconds, speculation counters).
    fw:
        Forward window used.
    """

    wall_seconds: float
    final_blocks: dict[int, Any]
    reports: list[WorkerReport]
    fw: int

    def event_log(self) -> EventLog:
        """Merged protocol trace events from every worker.

        Empty unless the runner was constructed with
        ``record_events=True``.  Per-worker event times are relative to
        each worker's protocol start (the post-barrier instant), so
        cross-rank comparisons should rely on the happens-before
        structure (``seq`` + message matching), not the clock.
        """
        log = EventLog()
        for report in self.reports:
            log.extend(report.events)
        return log

    def window_history(self) -> dict[int, list[tuple[int, int]]]:
        """rank → (iteration, fw) trajectory from each worker's seated
        window policy (a single ``(0, fw)`` entry for static runs)."""
        return {r.rank: list(r.window_history) for r in self.reports}

    def final_windows(self) -> list[int]:
        """The FW each rank's engine ended the run with."""
        return [r.final_fw for r in self.reports]

    def phase_seconds(self, phase: str, how: str = "max") -> float:
        """Aggregate one phase's wall time over workers."""
        values = [r.phase_seconds.get(phase, 0.0) for r in self.reports]
        if how == "max":
            return max(values)
        if how == "sum":
            return sum(values)
        if how == "mean":
            return sum(values) / len(values)
        raise ValueError(f"unknown aggregation {how!r}")

    @property
    def rejection_rate(self) -> float:
        """Cluster-wide fraction of checked speculations rejected."""
        checks = sum(r.spec_accepted + r.spec_rejected for r in self.reports)
        if checks == 0:
            return 0.0
        return sum(r.spec_rejected for r in self.reports) / checks


class MPRunner:
    """Run a program on real OS processes with injected message latency.

    Parameters
    ----------
    program:
        The application; must be picklable (all bundled apps are).
    fw:
        Forward window: 0 (blocking) or any depth >= 1 (speculative).
        The engine owns the cascade machinery, so FW >= 2 runs on real
        processes exactly as in the simulator.
    cascade:
        Correction cascade policy, ``"recompute"`` (default) or
        ``"none"`` (see :class:`~repro.core.driver.SpeculativeDriver`).
    latency:
        Injected one-way message delay in wall seconds (0 = pipes at
        native speed).
    jitter:
        Log-normal sigma multiplying the injected latency per message.
    seed:
        Seed for the per-worker jitter streams.
    start_method:
        ``multiprocessing`` start method; ``"fork"`` (default on Linux)
        avoids re-importing the world per worker.
    record_events:
        Record per-worker protocol trace events
        (:class:`~repro.trace.events.TraceEvent`), merged afterwards by
        :meth:`MPRunResult.event_log` — the input for ``repro analyze
        --trace`` replay.
    sanitize:
        Arm the per-worker runtime
        :class:`~repro.analysis.sanitizer.ProtocolSanitizer`; ``None``
        (default) defers to ``REPRO_SANITIZE`` (inherited by workers).
        A violation in any worker surfaces as that worker's error.
    window_policy:
        Optional :class:`~repro.policy.WindowPolicy` template (must be
        picklable); each worker's engine spawns a private copy, so
        ranks adapt their forward windows independently on real wall
        clocks.  Decisions come back in ``WorkerReport.window_history``
        (see :meth:`MPRunResult.window_history`).
    """

    def __init__(
        self,
        program: SyncIterativeProgram,
        fw: int = 1,
        latency: float = 0.0,
        jitter: float = 0.0,
        seed: int = 0,
        start_method: Optional[str] = None,
        record_events: bool = False,
        cascade: "CascadePolicy | str" = CascadePolicy.RECOMPUTE,
        sanitize: Optional[bool] = None,
        window_policy: Optional[WindowPolicy] = None,
    ) -> None:
        if fw < 0:
            raise ValueError("fw must be >= 0")
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be >= 0")
        self.program = program
        self.fw = fw
        self.cascade = CascadePolicy.coerce(cascade)
        self.window_policy = window_policy
        self.latency = latency
        self.jitter = jitter
        self.seed = seed
        self.record_events = record_events
        self.sanitize = sanitize
        self._ctx = mp.get_context(start_method) if start_method else mp.get_context()

    def run(self, timeout: float = 300.0) -> MPRunResult:
        """Execute to completion; raises on worker failure or timeout."""
        p = self.program.nprocs
        ctx = self._ctx

        # Full mesh of duplex pipes: mesh[i][j] is i's endpoint to j.
        mesh = full_mesh(ctx, p)

        result_conns = []
        barrier = ctx.Barrier(p)
        workers = []
        for rank in range(p):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            result_conns.append(parent_conn)
            proc = ctx.Process(
                target=worker_main,
                args=(
                    rank,
                    self.program,
                    self.fw,
                    mesh[rank],
                    child_conn,
                    self.latency,
                    self.jitter,
                    self.seed,
                    barrier,
                    self.record_events,
                    self.cascade,
                    self.sanitize,
                    self.window_policy,
                ),
                daemon=True,
            )
            workers.append(proc)
        for proc in workers:
            proc.start()

        reports: list[WorkerReport] = []
        try:
            for rank, conn in enumerate(result_conns):
                if not conn.poll(timeout):
                    raise TimeoutError(f"worker {rank} did not report within {timeout}s")
                reports.append(conn.recv())
        finally:
            for proc in workers:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()

        failed = [r for r in reports if r.error is not None]
        if failed:
            raise RuntimeError(
                "; ".join(f"rank {r.rank}: {r.error}" for r in failed)
            )
        reports.sort(key=lambda r: r.rank)
        return MPRunResult(
            wall_seconds=max(r.wall_seconds for r in reports),
            final_blocks={r.rank: r.final_block for r in reports},
            reports=reports,
            fw=self.fw,
        )
