"""The paper's evaluation artifacts as runnable experiments.

Every public function reproduces one table or figure:

========  =====================================================
FIG2      two-processor timelines: blocking vs good/bad speculation
FIG4      forward window under a transient delay (FW = 0/1/2)
FIG5      model speedup vs p, with and without speculation
FIG6      model speedup vs recomputation fraction k (8 processors)
FIG8      measured N-body speedup vs p for FW = 0/1/2
TAB2      per-phase time per iteration (16 procs, 1000 particles)
TAB3      threshold θ vs incorrect speculations and force error
FIG9      model vs measured speedups, with % deviation
========  =====================================================

All N-body experiments share the :data:`HEADLINE` configuration: the
calibrated WUSTL platform with bursty Ethernet cross-traffic,
N = 1000 particles, Δt tuned so θ = 0.01 rejects ≈ 2 % of
speculations — matching the paper's operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.apps import NBodyProgram
from repro.core import RunResult, run_program
from repro.core.results import speedup_max
from repro.harness.tables import format_table
from repro.harness.toys import ConstantProgram, JumpyProgram
from repro.nbody import uniform_cube
from repro.netsim.latency import Spike
from repro.perfmodel import (
    ModelParams,
    PerformanceModel,
    calibrate_tcomm,
    model_vs_measured,
    section4_params,
)
from repro.platforms import two_processor_demo, wustl_1994
from repro.trace import EventLog, render_gantt

#: Shared configuration for the measured N-body experiments.
HEADLINE: dict[str, Any] = {
    "n_particles": 1000,
    "dt": 0.015,
    "threshold": 0.01,
    "iterations": 20,
    "softening": 0.1,
    "jitter_sigma": 0.8,
    "background_frames_per_s": 24.0,
    "bursty_traffic": True,
    "seed": 1,
    "ic_seed": 42,
    "cascade": "none",  # the paper's local-correction semantics
}


@dataclass
class ExperimentResult:
    """One reproduced artifact: data plus its rendered table."""

    experiment_id: str
    headers: list[str]
    rows: list[list[Any]]
    text: str
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable form: id, headers, rows (no heavy extras)."""
        def clean(v):
            if isinstance(v, (np.floating,)):
                return float(v)
            if isinstance(v, (np.integer,)):
                return int(v)
            return v

        return {
            "experiment_id": self.experiment_id,
            "headers": list(self.headers),
            "rows": [[clean(v) for v in row] for row in self.rows],
        }

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# --------------------------------------------------------------------------
# Shared N-body runner
# --------------------------------------------------------------------------
def run_nbody(
    p: int,
    fw: int,
    iterations: Optional[int] = None,
    n_particles: Optional[int] = None,
    threshold: Optional[float] = None,
    record_force_errors: bool = False,
    config: Optional[dict[str, Any]] = None,
    event_log: Optional[EventLog] = None,
    window_policy: Optional[Any] = None,
    hist_cap: Optional[int] = None,
    sanitize: Optional[bool] = None,
) -> tuple[NBodyProgram, RunResult]:
    """One measured N-body run on the calibrated platform.

    Prefer :func:`repro.api.run` for new code that does not need the
    calibrated WUSTL platform; this remains the harness primitive the
    paper's experiments (and ``repro nbody``) drive.

    Returns the program (whose ``spec_stats`` carry particle-level
    counters) and the :class:`~repro.core.RunResult`.  Pass an
    ``event_log`` to record every protocol step (send/recv/speculate/
    verify/correct) for ``repro analyze --trace`` replay, and a
    ``window_policy`` (e.g. :class:`~repro.policy.AimdWindow`) to let
    each rank retune its forward window at runtime — ``fw`` is then
    the initial window and ``RunResult.window_history`` records the
    per-rank trajectories.
    """
    cfg = dict(HEADLINE)
    if config:
        cfg.update(config)
    n = n_particles if n_particles is not None else cfg["n_particles"]
    iters = iterations if iterations is not None else cfg["iterations"]
    theta = threshold if threshold is not None else cfg["threshold"]

    platform = wustl_1994(
        p=p,
        jitter_sigma=cfg["jitter_sigma"],
        background_frames_per_s=cfg["background_frames_per_s"],
        bursty_traffic=cfg["bursty_traffic"],
        seed=cfg["seed"],
    )
    system = uniform_cube(n, seed=cfg["ic_seed"], softening=cfg["softening"])
    program = NBodyProgram(
        system,
        platform.capacities(),
        iterations=iters,
        dt=cfg["dt"],
        threshold=theta,
        record_force_errors=record_force_errors,
    )
    cluster = platform.cluster()
    if event_log is not None:
        cluster.event_log = event_log
    result = run_program(
        program, cluster, fw=fw, cascade=cfg["cascade"],
        window_policy=window_policy, hist_cap=hist_cap, sanitize=sanitize,
    )
    return program, result


def run_nbody_mp(
    p: int,
    fw: int,
    iterations: Optional[int] = None,
    n_particles: Optional[int] = None,
    threshold: Optional[float] = None,
    latency: float = 0.05,
    jitter: float = 0.0,
    config: Optional[dict[str, Any]] = None,
    record_events: bool = False,
    timeout: float = 300.0,
    window_policy: Optional[Any] = None,
    hist_cap: Optional[int] = None,
    sanitize: Optional[bool] = None,
) -> tuple[NBodyProgram, Any]:
    """One N-body run on **real OS processes** (the mp backend).

    Same initial conditions and protocol as :func:`run_nbody` — the
    identical :class:`~repro.engine.SpecEngine` runs per rank — but
    interpreted over :class:`~repro.engine.pipes.PipeTransport` with
    ``latency`` wall-seconds of injected one-way delay instead of the
    simulated WUSTL platform.  Capacities are uniform (real cores);
    the second element of the return is an
    :class:`~repro.parallel.runner.MPRunResult`.
    """
    from repro.parallel import MPRunner  # deferred: spawns processes

    cfg = dict(HEADLINE)
    if config:
        cfg.update(config)
    n = n_particles if n_particles is not None else cfg["n_particles"]
    iters = iterations if iterations is not None else cfg["iterations"]
    theta = threshold if threshold is not None else cfg["threshold"]

    system = uniform_cube(n, seed=cfg["ic_seed"], softening=cfg["softening"])
    program = NBodyProgram(
        system,
        [1.0] * p,
        iterations=iters,
        dt=cfg["dt"],
        threshold=theta,
    )
    runner = MPRunner(
        program,
        fw=fw,
        latency=latency,
        jitter=jitter,
        seed=cfg["seed"],
        cascade=cfg["cascade"],
        record_events=record_events,
        window_policy=window_policy,
        hist_cap=hist_cap,
        sanitize=sanitize,
    )
    result = runner.run(timeout=timeout)
    return program, result


# --------------------------------------------------------------------------
# FIG2 — two-processor timelines
# --------------------------------------------------------------------------
def fig2_timelines(
    iterations: int = 3,
    compute_seconds: float = 1.0,
    comm_seconds: float = 1.5,
    width: int = 72,
) -> ExperimentResult:
    """Fig. 2: (a) no speculation, (b) all speculations good, (c) all bad.

    Reports the three makespans and renders each scenario's timeline.
    The paper's qualitative result: T_spec_good < T_no_spec <
    T_spec_nogood.
    """
    scenarios = []
    charts = {}

    def run(label: str, program_cls, fw: int):
        platform = two_processor_demo(
            compute_seconds=compute_seconds, comm_seconds=comm_seconds
        )
        program = program_cls(nprocs=2, iterations=iterations)
        result = run_program(program, platform.cluster(), fw=fw)
        charts[label] = render_gantt(result.traces, width=width)
        scenarios.append((label, result.makespan))
        return result

    run("(a) no speculation (FW=0)", ConstantProgram, fw=0)
    run("(b) speculation, all good", ConstantProgram, fw=1)
    run("(c) speculation, all bad", JumpyProgram, fw=1)

    rows = [[label, t, t / scenarios[0][1]] for label, t in scenarios]
    text = format_table(
        ["scenario", "makespan (s)", "vs no-spec"],
        rows,
        title=f"FIG2: 2 processors, {iterations} iterations, "
        f"compute {compute_seconds:.2g}s, comm {comm_seconds:.2g}s",
    )
    text += "\n" + "\n".join(f"{label}\n{charts[label]}" for label, _ in scenarios)
    return ExperimentResult(
        "FIG2",
        ["scenario", "makespan", "vs_no_spec"],
        rows,
        text,
        extra={"charts": charts},
    )


# --------------------------------------------------------------------------
# FIG4 — forward window under a transient delay
# --------------------------------------------------------------------------
def fig4_forward_window(
    iterations: int = 6,
    compute_seconds: float = 1.0,
    comm_seconds: float = 0.4,
    spike_extra: float = 2.5,
    width: int = 72,
) -> ExperimentResult:
    """Fig. 4: one delayed P1→P2 message; FW = 0, 1, 2 compared.

    The transient exceeds one iteration's compute time, so FW = 1 only
    partially masks it and FW = 2 recovers more.
    """
    rows = []
    charts = {}
    for fw in (0, 1, 2):
        platform = two_processor_demo(
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            # The first broadcast leaves at the end of iteration 0's
            # compute phase (t = compute_seconds); the spike window
            # brackets exactly that send and no later one.
            spikes=[
                Spike(
                    extra=spike_extra,
                    t_start=0.5 * compute_seconds,
                    t_end=1.5 * compute_seconds,
                    src=0,
                    dst=1,
                )
            ],
        )
        program = ConstantProgram(nprocs=2, iterations=iterations)
        result = run_program(program, platform.cluster(), fw=fw)
        rows.append([fw, result.makespan])
        charts[fw] = render_gantt(result.traces, width=width)
    base = rows[0][1]
    rows = [[fw, t, t / base] for fw, t in rows]
    text = format_table(
        ["FW", "makespan (s)", "vs FW=0"],
        rows,
        title=f"FIG4: transient delay of {spike_extra:.2g}s on P1->P2's first message",
    )
    text += "\n" + "\n".join(f"FW={fw}\n{charts[fw]}" for fw, _, _ in rows)
    return ExperimentResult("FIG4", ["fw", "makespan", "vs_fw0"], rows, text, extra={"charts": charts})


# --------------------------------------------------------------------------
# FIG5 — model speedup vs p
# --------------------------------------------------------------------------
def fig5_model_speedup(k: float = 0.02, allocation: str = "total") -> ExperimentResult:
    """Fig. 5: Section-4 model speedups vs processor count (k = 2 %)."""
    model = PerformanceModel(section4_params(k=k, allocation=allocation))
    curves = model.speedup_curves()
    rows = [
        [int(p), ns, sp, mx]
        for p, ns, sp, mx in zip(
            curves["p"], curves["no_speculation"], curves["speculation"], curves["maximum"]
        )
    ]
    text = format_table(
        ["p", "no speculation", "speculation", "maximum"],
        rows,
        title=f"FIG5: model speedup vs p (k={k:.0%}, allocation={allocation})",
    )
    return ExperimentResult("FIG5", ["p", "no_spec", "spec", "max"], rows, text, extra=curves)


# --------------------------------------------------------------------------
# FIG6 — model sensitivity to speculation error
# --------------------------------------------------------------------------
def fig6_error_sensitivity(
    p: int = 8,
    k_values: Sequence[float] = tuple(np.linspace(0.0, 0.30, 16)),
) -> ExperimentResult:
    """Fig. 6: 8-processor model speedup as the recomputation % grows."""
    model = PerformanceModel(section4_params())
    data = model.error_sensitivity(p, k_values)
    crossover = model.crossover_k(p)
    rows = [
        [100.0 * k, sp, ns]
        for k, sp, ns in zip(data["k"], data["speculation"], data["no_speculation"])
    ]
    text = format_table(
        ["k (%)", "speculation", "no speculation"],
        rows,
        title=f"FIG6: model speedup on {p} processors vs recomputation %"
        f" (break-even at k = {100 * crossover:.1f}%)",
    )
    return ExperimentResult(
        "FIG6",
        ["k_pct", "spec", "no_spec"],
        rows,
        text,
        extra={"crossover_k": crossover, **data},
    )


# --------------------------------------------------------------------------
# FIG8 — measured N-body speedup vs p
# --------------------------------------------------------------------------
def fig8_nbody_speedup(
    ps: Sequence[int] = (1, 2, 4, 6, 8, 10, 12, 14, 16),
    fws: Sequence[int] = (0, 1, 2),
    iterations: Optional[int] = None,
    n_particles: Optional[int] = None,
    config: Optional[dict[str, Any]] = None,
) -> ExperimentResult:
    """Fig. 8: measured N-body speedups vs p for FW = 0, 1, 2.

    Speedups are relative to the measured single-processor run on P1;
    the "maximum" column is ΣM_i / M_1 (paper's attainable bound).
    """
    results: dict[tuple[int, int], RunResult] = {}
    _, base = run_nbody(1, 0, iterations=iterations, n_particles=n_particles, config=config)
    t1 = base.time_per_iteration
    results[(1, 0)] = base

    rows = []
    capacities16 = wustl_1994(p=16).capacities()
    for p in ps:
        row: list[Any] = [int(p)]
        for fw in fws:
            if p == 1:
                row.append(1.0)
                continue
            _, res = run_nbody(
                p, fw, iterations=iterations, n_particles=n_particles, config=config
            )
            results[(p, fw)] = res
            row.append(t1 / res.time_per_iteration)
        row.append(speedup_max(capacities16[:p]))
        rows.append(row)

    headers = ["p"] + [f"FW={fw}" for fw in fws] + ["maximum"]
    text = format_table(
        headers,
        rows,
        title="FIG8: measured N-body speedup vs processors (theta=0.01)",
    )
    gains = {}
    if 0 in fws:
        for fw in fws:
            if fw == 0:
                continue
            last = rows[-1]
            gains[fw] = last[1 + list(fws).index(fw)] / last[1 + list(fws).index(0)] - 1.0
        text += "\nGain over no-speculation at p=%d: %s\n" % (
            rows[-1][0],
            ", ".join(f"FW={fw}: {g:+.1%}" for fw, g in gains.items()),
        )
    return ExperimentResult(
        "FIG8", headers, rows, text, extra={"results": results, "gains": gains, "t1": t1}
    )


# --------------------------------------------------------------------------
# TAB2 — per-phase times
# --------------------------------------------------------------------------
def table2_phase_times(
    p: int = 16,
    fws: Sequence[int] = (0, 1, 2),
    iterations: Optional[int] = None,
    n_particles: Optional[int] = None,
    config: Optional[dict[str, Any]] = None,
) -> ExperimentResult:
    """Table 2: steady-state per-iteration phase times for FW = 0/1/2.

    Paper (16 processors, 1000 particles)::

        FW  comp  comm  spec  check  total
        0   5.83  4.73  0     0      10.56
        1   5.85  1.43  0.2   1.02    8.52
        2   5.82  0.22  0.3   1.5     7.79
    """
    rows = []
    extra = {}
    for fw in fws:
        prog, res = run_nbody(
            p, fw, iterations=iterations, n_particles=n_particles, config=config
        )
        b = res.steady_breakdown()
        rows.append(
            [
                fw,
                b["compute"],
                b["comm"],
                b["spec"],
                b["check"],
                b["correct"],
                b.total,
            ]
        )
        extra[fw] = {"result": res, "rejection": prog.spec_stats.incorrect_fraction}
    text = format_table(
        ["FW", "computation", "communication", "speculation", "check", "correction", "total"],
        rows,
        title=f"TAB2: per-iteration phase times (s), {p} processors, "
        f"{(config or HEADLINE).get('n_particles', HEADLINE['n_particles']) if n_particles is None else n_particles} particles",
    )
    return ExperimentResult(
        "TAB2",
        ["fw", "comp", "comm", "spec", "check", "correct", "total"],
        rows,
        text,
        extra=extra,
    )


# --------------------------------------------------------------------------
# TAB3 — threshold sweep
# --------------------------------------------------------------------------
def table3_threshold_sweep(
    thetas: Sequence[float] = (0.1, 0.05, 0.01, 0.005, 0.001),
    p: int = 16,
    iterations: Optional[int] = None,
    n_particles: Optional[int] = None,
    config: Optional[dict[str, Any]] = None,
) -> ExperimentResult:
    """Table 3: θ vs incorrect-speculation % and max accepted force error.

    Paper::

        theta   incorrect   max force error
        0.1     <1%         20%
        0.05    <1%         10%
        0.01    2%          2%
        0.005   5%          1%
        0.001   20%         0.2%
    """
    rows = []
    for theta in thetas:
        prog, _ = run_nbody(
            p,
            1,
            iterations=iterations,
            n_particles=n_particles,
            threshold=theta,
            record_force_errors=True,
            config=config,
        )
        rows.append(
            [
                theta,
                100.0 * prog.spec_stats.incorrect_fraction,
                100.0 * prog.spec_stats.max_accepted_force_error,
            ]
        )
    text = format_table(
        ["theta", "incorrect speculations (%)", "max force error (%)"],
        rows,
        title="TAB3: effect of the error bound theta (FW=1)",
        floatfmt=".3g",
    )
    return ExperimentResult("TAB3", ["theta", "incorrect_pct", "force_err_pct"], rows, text)


# --------------------------------------------------------------------------
# FIG9 — model vs measured
# --------------------------------------------------------------------------
def fig9_model_vs_measured(
    ps: Sequence[int] = (1, 2, 4, 8, 12, 16),
    iterations: Optional[int] = None,
    n_particles: Optional[int] = None,
    config: Optional[dict[str, Any]] = None,
) -> ExperimentResult:
    """Fig. 9: parameterise the Section-4 model from the N-body runs and
    compare predicted vs measured speedups.

    The model's t_comm(p) is least-squares fitted from the measured
    blocking (FW = 0) runs; operation counts come from the application
    cost model; k is the measured correction overhead.
    """
    cfg = dict(HEADLINE)
    if config:
        cfg.update(config)
    n = n_particles if n_particles is not None else cfg["n_particles"]

    measured_nospec: dict[int, RunResult] = {}
    measured_spec: dict[int, RunResult] = {}
    for p in ps:
        _, r0 = run_nbody(p, 0, iterations=iterations, n_particles=n, config=config)
        measured_nospec[p] = r0
        if p == 1:
            measured_spec[p] = r0
        else:
            _, r1 = run_nbody(p, 1, iterations=iterations, n_particles=n, config=config)
            measured_spec[p] = r1

    t_comm = calibrate_tcomm(measured_nospec)
    k_measured = float(
        np.mean([measured_spec[p].measured_k() for p in ps if p > 1])
    )
    capacities = tuple(wustl_1994(p=16).capacities())
    params = ModelParams(
        n=n,
        capacities=capacities[: max(ps)],
        f_comp=70.0 * n + 12.0,
        f_spec=12.0,
        f_check=24.0,
        t_comm=t_comm,
        k=min(k_measured, 1.0),
    )
    data = model_vs_measured(params, measured_nospec, measured_spec)
    rows = [
        [
            int(data["p"][i]),
            data["measured_no_speculation"][i],
            data["model_no_speculation"][i],
            data["deviation_no_speculation_pct"][i],
            data["measured_speculation"][i],
            data["model_speculation"][i],
            data["deviation_speculation_pct"][i],
        ]
        for i in range(len(data["p"]))
    ]
    text = format_table(
        [
            "p",
            "measured (no spec)",
            "model (no spec)",
            "dev %",
            "measured (spec)",
            "model (spec)",
            "dev %",
        ],
        rows,
        title=f"FIG9: model vs measured speedups (fitted t_comm: {t_comm}, k={k_measured:.3f})",
    )
    return ExperimentResult(
        "FIG9",
        ["p", "meas_ns", "model_ns", "dev_ns", "meas_sp", "model_sp", "dev_sp"],
        rows,
        text,
        extra={"params": params, "t_comm": t_comm, "k": k_measured, "data": data},
    )
