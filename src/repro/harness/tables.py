"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Any, Optional, Sequence


def _fmt(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    floatfmt: str = ".3f",
) -> str:
    """Render rows as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; floats are formatted with ``floatfmt``.
    title:
        Optional heading printed above the table.
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must match the header width")
    cells = [[_fmt(v, floatfmt) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"
