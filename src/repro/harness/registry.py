"""Experiment registry: lookup by artifact id for the CLI."""

from __future__ import annotations

from typing import Callable

from repro.harness.experiments import (
    ExperimentResult,
    fig2_timelines,
    fig4_forward_window,
    fig5_model_speedup,
    fig6_error_sensitivity,
    fig8_nbody_speedup,
    fig9_model_vs_measured,
    table2_phase_times,
    table3_threshold_sweep,
)

#: Artifact id → zero-argument experiment runner (paper defaults).
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig2": fig2_timelines,
    "fig4": fig4_forward_window,
    "fig5": fig5_model_speedup,
    "fig6": fig6_error_sensitivity,
    "fig8": fig8_nbody_speedup,
    "table2": table2_phase_times,
    "table3": table3_threshold_sweep,
    "fig9": fig9_model_vs_measured,
}


def get_experiment(name: str) -> Callable[[], ExperimentResult]:
    """Runner for artifact ``name`` (e.g. ``"fig8"``, ``"table2"``)."""
    key = name.lower().replace("_", "").replace("-", "")
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]
