"""Experiment harness: the paper's tables and figures as runnable code.

Each experiment function is self-contained — it builds the calibrated
platform, runs the workload, and returns an :class:`ExperimentResult`
with structured data plus a formatted text table matching the paper's
artifact.  The benchmarks in ``benchmarks/`` and the CLI both call
into this module, so a table is regenerated identically everywhere.
"""

from repro.harness.experiments import (
    HEADLINE,
    ExperimentResult,
    fig2_timelines,
    fig4_forward_window,
    fig5_model_speedup,
    fig6_error_sensitivity,
    fig8_nbody_speedup,
    fig9_model_vs_measured,
    run_nbody,
    run_nbody_mp,
    table2_phase_times,
    table3_threshold_sweep,
)
from repro.harness.registry import EXPERIMENTS, get_experiment
from repro.harness.tables import format_table

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "HEADLINE",
    "fig2_timelines",
    "fig4_forward_window",
    "fig5_model_speedup",
    "fig6_error_sensitivity",
    "fig8_nbody_speedup",
    "fig9_model_vs_measured",
    "format_table",
    "get_experiment",
    "run_nbody",
    "run_nbody_mp",
    "table2_phase_times",
    "table3_threshold_sweep",
]
