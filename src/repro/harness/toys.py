"""Minimal programs for the timeline illustrations (Fig. 2 and Fig. 4).

The paper's Fig. 2 contrasts three two-processor executions of an
abstract synchronous iterative algorithm: blocking, speculation always
acceptable, and speculation always rejected.  These programs realise
the two extremes with trivial numerics so the timelines are clean.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.program import SyncIterativeProgram
from repro.core.receive_driven import IncrementalProgram


class ConstantProgram(SyncIterativeProgram):
    """State never changes, so any hold-based speculation is exact.

    Used for Fig. 2(b): every speculated value is good and acceptable.
    """

    def __init__(
        self,
        nprocs: int,
        iterations: int,
        ops_per_compute: float = 1e6,
        block_size: int = 8,
        spec_cost_fraction: float = 0.05,
        check_cost_fraction: float = 0.05,
        **kwargs,
    ) -> None:
        kwargs.setdefault("threshold", 0.0)
        super().__init__(nprocs, iterations, **kwargs)
        self.ops_per_compute = ops_per_compute
        self.block_size = block_size
        self.spec_cost_fraction = spec_cost_fraction
        self.check_cost_fraction = check_cost_fraction

    def initial_block(self, rank: int) -> np.ndarray:
        return np.full(self.block_size, float(rank))

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        # Touch every input so the data dependency is real, then return
        # the unchanged own block.
        _ = sum(float(np.sum(inputs[k])) for k in inputs)
        return inputs[rank].copy()

    def compute_ops(self, rank: int) -> float:
        return self.ops_per_compute

    def speculate_ops(self, rank: int, k: int) -> float:
        return self.ops_per_compute * self.spec_cost_fraction

    def check_ops(self, rank: int, k: int) -> float:
        return self.ops_per_compute * self.check_cost_fraction

    def block_nbytes(self, rank: int) -> int:
        return 8 * self.block_size


class IncrementalConstantProgram(ConstantProgram, IncrementalProgram):
    """Constant-state program with the Fig. 7 incremental decomposition.

    ``begin`` does the own-block share of the work, each ``absorb`` one
    remote block's share; the compute cost is split evenly so the
    incremental run charges exactly ``ops_per_compute`` per iteration.
    """

    def begin(self, rank, own, t):
        return float(np.sum(own))

    def absorb(self, rank, acc, k, block, t):
        return acc + float(np.sum(block))

    def finish(self, rank, acc, own, t):
        _ = acc
        return own.copy()

    def begin_ops(self, rank: int) -> float:
        return self.ops_per_compute / self.nprocs

    def absorb_ops(self, rank: int, k: int) -> float:
        return self.ops_per_compute / self.nprocs

    def finish_ops(self, rank: int) -> float:
        return 0.0


class JumpyProgram(ConstantProgram):
    """State jumps unpredictably, so every speculation is rejected.

    Used for Fig. 2(c): each speculated value is found unacceptable and
    the computation is redone (full recomputation penalty).
    """

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        _ = sum(float(np.sum(inputs[k])) for k in inputs)
        # A deterministic but extrapolation-proof jump.
        jump = np.sin(12345.678 * (t + 1) * (rank + 1)) * 100.0
        return inputs[rank] + jump
