"""Trace-replay verdicts for spectaint findings.

A static escape finding says "on some path an unconfirmed speculative
value reaches an irreversible effect".  A recorded
:class:`~repro.trace.events.EventLog` can judge whether a real run
walked such a path: every rank's events are totally ordered by ``seq``,
a ``speculate`` opens a speculation window on its rank, and a matching
``verify``/``correct`` closes it — so a ``send`` emitted *while the
window is open* is a runtime witness that speculative state reached an
irreversible effect before its confirmation.  Each finding becomes:

* **CONFIRMED** — the trace contains such a witness: a speculative
  value demonstrably reached a sink before its confirming event;
* **REFUTED** — the run exercised both speculation and the sinks, and
  every sink fired with all speculation windows closed: this execution
  stayed inside the rollback discipline;
* **UNOBSERVED** — the trace never exercised the combination (no
  speculation, or no sink events), so it is silent about the claim.

``SPT308`` (dead rollback handler) is judged differently: a trace that
*corrects* refutes it (the recovery path demonstrably ran); a trace
that speculates and verifies but never corrects is consistent with the
handler being dead and confirms the concern.

Determinism: the DES is seeded, so a recorded trace — and therefore
every verdict — is byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.trace.events import EventLog

CONFIRMED = "confirmed"
REFUTED = "refuted"
UNOBSERVED = "unobserved"

#: Static codes judged by the send-during-open-speculation witness.
_ESCAPE_CODES = frozenset(
    {"SPT301", "SPT302", "SPT303", "SPT304", "SPT305", "SPT306", "SPT307"}
)


@dataclass(frozen=True)
class EscapeWitness:
    """One send observed while its rank had an open speculation."""

    rank: int
    seq: int
    time: float
    family: Optional[str]
    iteration: Optional[int]
    open_specs: int

    def format_text(self) -> str:
        """``rank 0 seq 12: send(vars@3) with 2 speculation(s) open``."""
        tag = self.family or "?"
        if self.iteration is not None:
            tag = f"{tag}@{self.iteration}"
        return (
            f"rank {self.rank} seq {self.seq}: send({tag}) with "
            f"{self.open_specs} speculation(s) open"
        )


def find_escapes(log: EventLog) -> list[EscapeWitness]:
    """Every send emitted during an open speculation window.

    Per rank, in program order: ``speculate`` opens a window keyed by
    its ``(family, iteration)``; ``verify``/``correct`` closes the
    matching window (or, when tags don't line up, the oldest open one —
    closing *something* is the conservative direction: fewer witnesses,
    never spurious ones).
    """
    witnesses: list[EscapeWitness] = []
    for rank in log.ranks():
        open_specs: list[tuple[Optional[str], Optional[int]]] = []
        for ev in log.for_rank(rank):
            key = (ev.family, ev.iteration)
            if ev.kind == "speculate":
                open_specs.append(key)
            elif ev.kind in ("verify", "correct"):
                if key in open_specs:
                    open_specs.remove(key)
                elif open_specs:
                    open_specs.pop(0)
            elif ev.kind == "send" and open_specs:
                witnesses.append(
                    EscapeWitness(
                        rank=rank,
                        seq=ev.seq,
                        time=ev.time,
                        family=ev.family,
                        iteration=ev.iteration,
                        open_specs=len(open_specs),
                    )
                )
    return witnesses


@dataclass(frozen=True)
class TaintVerdict:
    """One static finding judged against a recorded trace."""

    code: str
    path: str
    line: int
    status: str
    detail: str

    def format_text(self) -> str:
        """``taint-verdict SPT301 @ a.py:12: CONFIRMED — ...`` (one line)."""
        return (
            f"taint-verdict {self.code} @ {self.path}:{self.line}: "
            f"{self.status.upper()} — {self.detail}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (see the JSON reporter)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "status": self.status,
            "detail": self.detail,
        }


def check_taint(
    diagnostics: Sequence[Diagnostic], log: EventLog
) -> list[TaintVerdict]:
    """Judge every SPT finding against one recorded trace."""
    witnesses = find_escapes(log)
    speculated = bool(log.of_kind("speculate"))
    sent = bool(log.of_kind("send"))
    verified = bool(log.of_kind("verify"))
    corrected = bool(log.of_kind("correct"))

    verdicts: list[TaintVerdict] = []
    for diag in sorted(diagnostics):
        if not diag.code.startswith("SPT"):
            continue
        if diag.code in _ESCAPE_CODES:
            if witnesses:
                status = CONFIRMED
                detail = (
                    f"{len(witnesses)} escape witness(es); first: "
                    + witnesses[0].format_text()
                )
            elif speculated and sent:
                status = REFUTED
                detail = (
                    "trace speculates and sends, but every send ran "
                    "with all speculation windows closed"
                )
            else:
                status = UNOBSERVED
                missing = "speculation" if not speculated else "sink events"
                detail = f"trace contains no {missing}; silent on this claim"
        elif diag.code == "SPT308":
            if corrected:
                status = REFUTED
                detail = (
                    f"{len(log.of_kind('correct'))} correct event(s): the "
                    "rollback path demonstrably ran"
                )
            elif speculated and verified:
                status = CONFIRMED
                detail = (
                    "trace speculates and verifies but never corrects — "
                    "consistent with an unreachable recovery path"
                )
            else:
                status = UNOBSERVED
                detail = "trace never exercised the speculation machinery"
        else:  # pragma: no cover - future codes default to silence
            status = UNOBSERVED
            detail = "no trace judgement defined for this code"
        verdicts.append(
            TaintVerdict(
                code=diag.code,
                path=diag.path,
                line=diag.line,
                status=status,
                detail=detail,
            )
        )
    return verdicts
