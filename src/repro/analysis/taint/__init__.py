"""spectaint: speculation-escape & rollback-safety abstract interpretation.

Forward taint analysis over the specflow CFG + call graph proving
that values derived from unconfirmed speculative receives never reach
an irreversible effect (SPT301–SPT308), plus the commit-point
annotation API (:func:`commits`) and the trace-replay verdict layer
(:func:`check_taint`).
"""

from repro.analysis.taint.annotations import COMMITS_ATTR, commits, is_commit_point
from repro.analysis.taint.lattice import (
    COMMITTED,
    SPEC,
    TaintAnalysis,
    TaintContext,
    TaintSummary,
    commit_lines_of,
    compute_taint_summaries,
    declared_commit_points,
    unconfirmed,
)
from repro.analysis.taint.spectaint import (
    analyze_modules,
    analyze_paths,
    analyze_source,
    rule_catalogue,
)
from repro.analysis.taint.verdicts import (
    CONFIRMED,
    REFUTED,
    UNOBSERVED,
    EscapeWitness,
    TaintVerdict,
    check_taint,
    find_escapes,
)

__all__ = [
    "COMMITS_ATTR",
    "COMMITTED",
    "CONFIRMED",
    "EscapeWitness",
    "REFUTED",
    "SPEC",
    "TaintAnalysis",
    "TaintContext",
    "TaintSummary",
    "TaintVerdict",
    "UNOBSERVED",
    "analyze_modules",
    "analyze_paths",
    "analyze_source",
    "check_taint",
    "commit_lines_of",
    "commits",
    "compute_taint_summaries",
    "declared_commit_points",
    "find_escapes",
    "is_commit_point",
    "rule_catalogue",
    "unconfirmed",
]
