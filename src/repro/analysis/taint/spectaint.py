"""spectaint driver: speculation-escape analysis over many files.

Shaped exactly like :mod:`repro.analysis.specflow` and
:mod:`repro.analysis.perf.specperf`: build every module's CFGs, one
shared call graph, the interprocedural taint summaries, then run the
SPT301..SPT308 checkers.  Findings are ordinary
:class:`~repro.analysis.diagnostics.Diagnostic` records, so the shared
reporters, the SARIF writer, the fingerprint baselines and the
``# spectaint: disable=...`` suppression directives all behave exactly
as they do for the other families.

Entry point: :func:`analyze_paths` (what ``repro taint`` calls).  The
umbrella ``repro check`` passes its pre-built
:class:`~repro.analysis.program.ProgramIndex` call graph through the
``callgraph`` parameter so every family shares one parse.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.cfg import CallGraph, ModuleGraphs
from repro.analysis.diagnostics import SPT_RULES, Diagnostic
from repro.analysis.linter import drop_suppressed, iter_python_files
from repro.analysis.program import syntax_diagnostic
from repro.analysis.taint.lattice import (
    TaintContext,
    commit_lines_of,
    compute_taint_summaries,
    declared_commit_points,
)

# Importing the rules module also registers the SPT rule catalogue.
from repro.analysis.taint.rules import check_dead_rollback, check_module


def analyze_modules(
    modules: list[ModuleGraphs],
    select: Optional[Iterable[str]] = None,
    callgraph: Optional[CallGraph] = None,
) -> list[Diagnostic]:
    """Run every SPT rule over pre-built module graphs."""
    wanted = {c.upper() for c in select} if select is not None else None
    if callgraph is None:
        callgraph = CallGraph(modules)
    commit_points = declared_commit_points(modules)
    commit_lines = {m.path: commit_lines_of(m.source) for m in modules}
    summaries = compute_taint_summaries(callgraph, commit_points, commit_lines)
    ctx = TaintContext(
        callgraph=callgraph,
        summaries=summaries,
        commit_names=frozenset(
            qual.rsplit(".", 1)[-1] for _, qual in commit_points
        ),
        commit_lines=commit_lines,
    )
    found: list[Diagnostic] = []
    for module in modules:
        found.extend(check_module(module, ctx))
    found.extend(check_dead_rollback(callgraph, commit_points))
    if wanted is not None:
        found = [d for d in found if d.code in wanted]
    sources = {m.path: m.source for m in modules}
    return sorted(set(drop_suppressed(found, sources)))


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Analyse one source text (testing convenience)."""
    try:
        module = ModuleGraphs.from_source(source, path=path)
    except SyntaxError as exc:
        return [syntax_diagnostic(path, exc, "SPT000")]
    return analyze_modules([module], select=select)


def analyze_paths(
    paths: Sequence[str | Path],
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Analyse every ``.py`` file under ``paths`` as one program.

    One shared call graph makes the taint summaries interprocedural: a
    helper that sinks its parameter in one file taints every caller in
    another.  Unparseable files each yield an ``SPT000`` diagnostic
    instead of aborting the run.
    """
    modules: list[ModuleGraphs] = []
    syntax_errors: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            modules.append(ModuleGraphs.from_source(source, path=str(file_path)))
        except SyntaxError as exc:
            syntax_errors.append(syntax_diagnostic(str(file_path), exc, "SPT000"))
    return sorted(syntax_errors + analyze_modules(modules, select=select))


def rule_catalogue() -> dict[str, str]:
    """``code -> summary`` for every registered SPT rule (docs/CLI)."""
    return {code: SPT_RULES[code].summary for code in sorted(SPT_RULES)}
