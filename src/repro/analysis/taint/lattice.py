"""The spectaint lattice: forward taint facts over specflow CFGs.

Each variable carries a set of abstract facts:

* ``spec`` — may hold a value derived from an *unconfirmed*
  speculative source (a speculator prediction, or a read of the
  engine's uncommitted speculation ledger);
* ``committed`` — that value has passed a confirmation point on this
  path (a ``check``/``verify``/``correct`` call, a ``@commits``
  function, or a ``# spectaint: commit`` line);
* ``param:<i>`` — the value flows from the enclosing function's i-th
  parameter (pseudo-fact used to build interprocedural summaries: a
  parameter that reaches a sink makes every *caller's* tainted
  argument an escape).

The effective lattice per variable is CLEAN (no facts) ⊑ SPEC ⊑
COMMITTED-SPEC, joined pointwise by set union; a value is *unconfirmed*
when it carries ``spec`` without ``committed``.  Opaque calls launder
taint (``compute(spec)`` returns a fresh value the rollback machinery
recomputes anyway) — the analysis tracks the *datum*, not everything it
ever influenced, which is exactly the reversibility obligation: the
speculative value itself must not escape, its recomputable derivatives
are the rollback's job.

:func:`compute_taint_summaries` iterates one solve per function to a
fixed point over the call graph, producing per-function
:class:`TaintSummary` records (returns-spec, which parameters reach
which sink, is-commit-point) that both the rule pass and nested call
sites consume.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.cfg import CFG, CallGraph, CFGNode, ModuleGraphs
from repro.analysis.dataflow import ForwardAnalysis, map_join, solve_forward
from repro.analysis.typestate import (
    CHECK_NAMES,
    CORRECT_NAMES,
    SPECULATE_NAMES,
    _call_name,
    _iter_calls,
    _payload_of,
)

#: Abstract facts a variable may carry.
SPEC = "spec"            # derived from an unconfirmed speculative source
COMMITTED = "committed"  # confirmed on this path
_PARAM = "param:"        # prefix of parameter-origin pseudo-facts

_EMPTY: frozenset[str] = frozenset()
_SPEC_ONLY: frozenset[str] = frozenset({SPEC})

#: Engine attributes that hold *uncommitted* speculations; reading one
#: (or popping from it) yields an unconfirmed speculative value.
SPEC_LEDGER_ATTRS = frozenset({"spec_used"})

#: Calls that commit irreversible I/O: builtins plus the write/dump
#: surface of files, OS process helpers and array serialisers.
IO_SINK_NAMES = frozenset(
    {
        "print",
        "open",
        "write",
        "writelines",
        "write_text",
        "write_bytes",
        "system",
        "popen",
        "check_call",
        "check_output",
        "dump",
        "save",
        "savetxt",
        "tofile",
    }
)

#: Sends of derived state to other ranks (payload extraction shared
#: with specflow's SPF101 via :func:`_payload_of`).
SEND_SINK_NAMES = frozenset({"send", "broadcast"})

#: Accessors that *read out of* a container without laundering: taking
#: an element of a tainted mapping/sequence keeps the taint.
_CONTAINER_READS = frozenset({"pop", "get", "popleft", "popitem"})

_COMMIT_LINE = re.compile(r"#\s*spectaint:\s*commit\b")


def unconfirmed(facts: frozenset[str]) -> bool:
    """Does this value carry speculative taint with no confirmation?"""
    return SPEC in facts and COMMITTED not in facts


def param_indices(facts: frozenset[str]) -> set[int]:
    """Unconfirmed parameter origins recorded in ``facts``."""
    if COMMITTED in facts:
        return set()
    return {
        int(fact[len(_PARAM):])
        for fact in facts
        if fact.startswith(_PARAM)
    }


def commit_lines_of(source: str) -> frozenset[int]:
    """Line numbers carrying a ``# spectaint: commit`` annotation."""
    return frozenset(
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if _COMMIT_LINE.search(line)
    )


def _is_commits_decorator(dec: ast.expr) -> bool:
    node: ast.expr = dec
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id == "commits"
    if isinstance(node, ast.Attribute):
        return node.attr == "commits"
    return False


def declared_commit_points(
    modules: list[ModuleGraphs],
) -> set[tuple[str, str]]:
    """``(path, qualname)`` of every ``@commits``-decorated function."""
    points: set[tuple[str, str]] = set()
    for mod in modules:
        for qual, cfg in mod.cfgs.items():
            if any(_is_commits_decorator(d) for d in cfg.func.decorator_list):
                points.add((mod.path, qual))
    return points


@dataclass
class TaintSummary:
    """Interprocedural facts about one function."""

    #: Terminal parameter names, in positional order (incl. self).
    param_names: tuple[str, ...] = ()
    #: Declared commit point: arguments are confirmed, body is trusted.
    commits: bool = False
    #: May return an unconfirmed speculative value.
    returns_spec: bool = False
    #: Parameter index -> SPT code of the sink it can reach unconfirmed.
    sink_params: dict[int, str] = field(default_factory=dict)


@dataclass
class TaintContext:
    """Everything one :class:`TaintAnalysis` solve needs around it."""

    callgraph: Optional[CallGraph] = None
    summaries: dict[tuple[str, str], TaintSummary] = field(default_factory=dict)
    #: Terminal names of declared commit points (name-based fallback
    #: for call sites the call graph cannot resolve).
    commit_names: frozenset[str] = frozenset()
    #: ``path -> lines`` carrying ``# spectaint: commit``.
    commit_lines: dict[str, frozenset[int]] = field(default_factory=dict)


def _param_names(cfg: CFG) -> tuple[str, ...]:
    args = cfg.func.args
    ordered = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    return tuple(a.arg for a in ordered)


def args_for_params(
    call: ast.Call, summary: TaintSummary
) -> dict[int, ast.expr]:
    """Map callee parameter indices to the argument expressions at a
    call site.

    Method calls bind the receiver to ``self``/``cls`` implicitly, so
    positional arguments shift by one when the callee's first
    parameter is a receiver and the call goes through an attribute.
    """
    offset = 0
    if (
        isinstance(call.func, ast.Attribute)
        and summary.param_names
        and summary.param_names[0] in ("self", "cls")
    ):
        offset = 1
    mapping: dict[int, ast.expr] = {}
    for pos, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        mapping[pos + offset] = arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in summary.param_names:
            mapping[summary.param_names.index(kw.arg)] = kw.value
    return mapping


class TaintAnalysis(ForwardAnalysis["State"]):
    """Forward taint transfer for one function's CFG."""

    def __init__(
        self,
        cfg: CFG,
        ctx: TaintContext,
    ) -> None:
        self.cfg = cfg
        self.ctx = ctx
        self.commit_lines = ctx.commit_lines.get(cfg.path, frozenset())
        #: id(call) -> summaries of every resolved callee.
        self._callees: dict[int, list[TaintSummary]] = {}
        if ctx.callgraph is not None:
            for call, callee in ctx.callgraph.calls_in(cfg.path, cfg.qualname):
                summary = ctx.summaries.get(callee)
                if summary is not None:
                    self._callees.setdefault(id(call), []).append(summary)

    # ------------------------------------------------------------ lattice
    def initial(self) -> "State":
        return {
            name: frozenset({f"{_PARAM}{idx}"})
            for idx, name in enumerate(_param_names(self.cfg))
        }

    def bottom(self) -> "State":
        return {}

    def join(self, a: "State", b: "State") -> "State":
        return map_join(a, b)

    # ------------------------------------------------------------ queries
    def callee_summaries(self, call: ast.Call) -> list[TaintSummary]:
        """Summaries of every function this call may resolve to."""
        return self._callees.get(id(call), [])

    def is_commit_call(self, call: ast.Call) -> bool:
        """Does this call enter a declared commit point?"""
        if any(s.commits for s in self.callee_summaries(call)):
            return True
        return _call_name(call) in self.ctx.commit_names

    # ----------------------------------------------------------- transfer
    def facts_of(self, expr: ast.expr, state: "State") -> frozenset[str]:
        """Abstract facts carried by the value of ``expr``."""
        if isinstance(expr, ast.Name):
            return state.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Attribute):
            if expr.attr in SPEC_LEDGER_ATTRS:
                return _SPEC_ONLY
            return _EMPTY
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name in SPECULATE_NAMES:
                return _SPEC_ONLY
            if any(s.returns_spec for s in self.callee_summaries(expr)):
                return _SPEC_ONLY
            if name in _CONTAINER_READS and isinstance(expr.func, ast.Attribute):
                # d.pop(k) / d.get(k): an element read keeps the
                # container's taint; everything else launders.
                return self.facts_of(expr.func.value, state)
            return _EMPTY  # opaque calls launder (compute etc.)
        if isinstance(expr, (ast.YieldFrom, ast.Await, ast.Starred, ast.NamedExpr)):
            return self.facts_of(expr.value, state)
        if isinstance(expr, ast.Subscript):
            return self.facts_of(expr.value, state)
        if isinstance(expr, ast.IfExp):
            return self.facts_of(expr.body, state) | self.facts_of(
                expr.orelse, state
            )
        if isinstance(expr, ast.BinOp):
            return self.facts_of(expr.left, state) | self.facts_of(
                expr.right, state
            )
        if isinstance(expr, ast.UnaryOp):
            return self.facts_of(expr.operand, state)
        if isinstance(expr, ast.BoolOp):
            facts = _EMPTY
            for value in expr.values:
                facts |= self.facts_of(value, state)
            return facts
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            facts = _EMPTY
            for elt in expr.elts:
                facts |= self.facts_of(elt, state)
            return facts
        if isinstance(expr, ast.Dict):
            facts = _EMPTY
            for key in expr.keys:
                if key is not None:
                    facts |= self.facts_of(key, state)
            for value in expr.values:
                facts |= self.facts_of(value, state)
            return facts
        if isinstance(expr, ast.JoinedStr):
            facts = _EMPTY
            for part in expr.values:
                facts |= self.facts_of(part, state)
            return facts
        if isinstance(expr, ast.FormattedValue):
            return self.facts_of(expr.value, state)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            facts = self.facts_of(expr.elt, state)
            for gen in expr.generators:
                facts |= self.facts_of(gen.iter, state)
            return facts
        return _EMPTY

    def _assign(
        self, new: "State", target: ast.expr, facts: frozenset[str]
    ) -> None:
        if isinstance(target, ast.Name):
            if facts:
                new[target.id] = facts
            else:
                new.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(new, elt, facts)
        elif isinstance(target, ast.Starred):
            self._assign(new, target.value, facts)
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            if facts:
                base = target.value.id
                new[base] = new.get(base, _EMPTY) | facts

    def _confirm(self, new: "State", arg: ast.expr) -> None:
        if isinstance(arg, ast.Name):
            facts = new.get(arg.id, _EMPTY)
            if facts:
                new[arg.id] = facts | {COMMITTED}

    def transfer(self, node: CFGNode, state: "State") -> "State":
        stmt = node.stmt
        if stmt is None:
            return state
        new = dict(state)
        on_commit_line = getattr(stmt, "lineno", 0) in self.commit_lines
        # 1. Confirmation points mark their named arguments committed:
        #    check/verify/correct calls and declared commit points.
        for call in _iter_calls(stmt):
            name = _call_name(call)
            if (
                name in CHECK_NAMES
                or name in CORRECT_NAMES
                or self.is_commit_call(call)
            ):
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    self._confirm(new, arg)
        # 2. Assignments propagate / launder / commit facts.
        if isinstance(stmt, ast.Assign):
            facts = self.facts_of(stmt.value, new)
            if facts and on_commit_line:
                facts = facts | {COMMITTED}
            for target in stmt.targets:
                self._assign(new, target, facts)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            facts = self.facts_of(stmt.value, new)
            if facts and on_commit_line:
                facts = facts | {COMMITTED}
            self._assign(new, stmt.target, facts)
        elif isinstance(stmt, ast.AugAssign):
            facts = self.facts_of(stmt.value, new)
            if isinstance(stmt.target, ast.Name):
                merged = new.get(stmt.target.id, _EMPTY) | facts
                if merged and on_commit_line:
                    merged = merged | {COMMITTED}
                if merged:
                    new[stmt.target.id] = merged
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Iterating a tainted container taints the loop variable.
            self._assign(new, stmt.target, self.facts_of(stmt.iter, new))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._assign(
                        new,
                        item.optional_vars,
                        self.facts_of(item.context_expr, new),
                    )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    new.pop(target.id, None)
        return new


State = dict[str, frozenset[str]]


def iter_sink_args(
    stmt: ast.stmt,
    state: State,
    analysis: TaintAnalysis,
) -> Iterator[tuple[str, ast.Call, ast.expr, frozenset[str]]]:
    """Direct sink reaches in one statement.

    Yields ``(SPT code, sink call, offending argument, facts)`` for
    every argument of an I/O builtin (SPT301) or send/broadcast
    payload (SPT302) whose facts include speculative or
    parameter-origin taint.  Commit calls are not sinks — a declared
    commit point is exactly where speculative data is *allowed* to
    become irreversible — and sink calls on a ``# spectaint: commit``
    line are likewise exempt.
    """
    for call in _iter_calls(stmt):
        if analysis.is_commit_call(call):
            continue
        if getattr(call, "lineno", 0) in analysis.commit_lines:
            continue
        name = _call_name(call)
        if name in IO_SINK_NAMES:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                facts = analysis.facts_of(arg, state)
                if unconfirmed(facts) or param_indices(facts):
                    yield "SPT301", call, arg, facts
        elif name in SEND_SINK_NAMES:
            payload = _payload_of(call)
            if payload is not None:
                facts = analysis.facts_of(payload, state)
                if unconfirmed(facts) or param_indices(facts):
                    yield "SPT302", call, payload, facts


def compute_taint_summaries(
    callgraph: CallGraph,
    commit_points: set[tuple[str, str]],
    commit_lines: dict[str, frozenset[int]],
) -> dict[tuple[str, str], TaintSummary]:
    """Fixpoint of per-function taint summaries over the call graph.

    Each round re-solves every function with the current summaries;
    a function's summary grows monotonically (returns-spec can only
    flip to True, sink-params only gain entries), so the iteration
    terminates in at most ``len(functions) + 1`` rounds.
    """
    summaries: dict[tuple[str, str], TaintSummary] = {}
    for key in callgraph.functions():
        cfg = callgraph.cfg_of(key)
        summaries[key] = TaintSummary(
            param_names=_param_names(cfg) if cfg is not None else (),
            commits=key in commit_points,
        )
    ctx = TaintContext(
        callgraph=callgraph,
        summaries=summaries,
        commit_names=frozenset(qual.rsplit(".", 1)[-1] for _, qual in commit_points),
        commit_lines=commit_lines,
    )
    for _ in range(len(summaries) + 1):
        changed = False
        for key in callgraph.functions():
            summary = summaries[key]
            if summary.commits:
                continue  # trusted: commits nothing speculative outward
            cfg = callgraph.cfg_of(key)
            if cfg is None:  # pragma: no cover - defensive
                continue
            analysis = TaintAnalysis(cfg, ctx)
            states = solve_forward(cfg, analysis)
            for node in cfg.stmt_nodes():
                stmt = node.stmt
                assert stmt is not None
                state = states[node.uid]
                if (
                    isinstance(stmt, ast.Return)
                    and stmt.value is not None
                    and not summary.returns_spec
                ):
                    out = analysis.transfer(node, state)
                    if unconfirmed(analysis.facts_of(stmt.value, out)):
                        summary.returns_spec = True
                        changed = True
                # Parameters reaching a sink directly...
                for code, _call, arg, facts in iter_sink_args(
                    stmt, state, analysis
                ):
                    for idx in param_indices(facts):
                        if summary.sink_params.get(idx) is None:
                            summary.sink_params[idx] = code
                            changed = True
                # ... or through a callee that sinks its parameter.
                for call in _iter_calls(stmt):
                    for callee in analysis.callee_summaries(call):
                        if callee.commits or not callee.sink_params:
                            continue
                        mapping = args_for_params(call, callee)
                        for cidx, code in callee.sink_params.items():
                            arg_expr = mapping.get(cidx)
                            if arg_expr is None:
                                continue
                            facts = analysis.facts_of(arg_expr, state)
                            for idx in param_indices(facts):
                                if summary.sink_params.get(idx) is None:
                                    summary.sink_params[idx] = code
                                    changed = True
        if not changed:
            break
    return summaries
