"""The SPT301–SPT308 rule pass over the taint lattice.

Each rule names one way a speculative value can defeat the rollback
guarantee of the speculative protocol (PAPER.md §"wrong guesses must
be correctable"): once an unconfirmed value reaches an effect the
backward window cannot undo, a mispredicted receive is no longer
recoverable.  The checkers consume the per-function fixpoint states of
:class:`~repro.analysis.taint.lattice.TaintAnalysis` plus the
interprocedural :class:`~repro.analysis.taint.lattice.TaintSummary`
records, so escapes through call chains are found without inlining.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.cfg import CFG, CallGraph, ModuleGraphs
from repro.analysis.dataflow import solve_forward
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    SPT_RULES,
    register_spt_rule,
)
from repro.analysis.taint.lattice import (
    State,
    TaintAnalysis,
    TaintContext,
    _call_name,
    _iter_calls,
    _param_names,
    iter_sink_args,
    args_for_params,
    unconfirmed,
)
from repro.analysis.typestate import CHECK_NAMES

# ------------------------------------------------------------------ registry

register_spt_rule(
    "SPT301",
    "spec-escape-to-io",
    Severity.ERROR,
    "an unconfirmed speculative value reaches an irreversible I/O sink "
    "(print/open/write/dump/...) — once emitted it cannot be rolled "
    "back when the actual value arrives and disagrees",
)
register_spt_rule(
    "SPT302",
    "spec-escape-via-send",
    Severity.ERROR,
    "an unconfirmed speculative value is sent to another rank as a "
    "payload without a rollback seat; the receiver cannot distinguish "
    "it from confirmed state",
)
register_spt_rule(
    "SPT303",
    "spec-stored-past-window",
    Severity.ERROR,
    "an unconfirmed speculative value is stored into state that "
    "outlives the backward window (object attribute or module global) "
    "with no reclaim (pop/del/clear) anywhere in the module",
)
register_spt_rule(
    "SPT304",
    "unsanitized-commit",
    Severity.ERROR,
    "an unconfirmed speculative value is passed to a commit-style call "
    "(commit/finalize/publish) that is not a declared commit point, "
    "and no check/verify of that value exists on any later path",
)
register_spt_rule(
    "SPT305",
    "commit-before-confirm",
    Severity.ERROR,
    "a speculative value is committed before its confirmation: a "
    "check/verify of the same value is reachable *after* the "
    "commit-style call — the operations are in the wrong order",
)
register_spt_rule(
    "SPT306",
    "spec-in-exception-path",
    Severity.ERROR,
    "an unconfirmed speculative value is embedded in a raised "
    "exception; exceptions propagate past the rollback machinery and "
    "leak the speculation to handlers that cannot undo it",
)
register_spt_rule(
    "SPT307",
    "aliased-spec-mutation",
    Severity.ERROR,
    "an unconfirmed speculative value is written through an alias of a "
    "caller-owned object (a parameter or a copy of one); the mutation "
    "escapes the callee's frame and outlives its rollback scope",
)
register_spt_rule(
    "SPT308",
    "dead-rollback-handler",
    Severity.WARNING,
    "a rollback/undo/revert handler is defined but never called from "
    "any analysed code path — the recovery half of the protocol is "
    "unreachable, so every speculation is effectively a commit",
)

#: Commit-style call names SPT304/305 audit when *undeclared*.
COMMIT_STYLE_NAMES = frozenset({"commit", "finalize", "publish"})

#: Container mutators whose receiver keeps the written value.
_MUTATORS = frozenset(
    {"append", "add", "insert", "extend", "update", "setdefault"}
)

#: Reclaim operations that end an attribute-resident speculation.
_RECLAIMS = frozenset({"pop", "popitem", "popleft", "clear"})

#: Function names that look like the protocol's recovery half.
ROLLBACK_NAMES = frozenset(
    {"rollback", "on_rollback", "undo", "unwind", "revert"}
)


def _diag(path: str, node: ast.AST, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        severity=SPT_RULES[code].severity,
        message=message,
    )


def _describe(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return f"`{expr.id}`"
    if isinstance(expr, ast.Attribute):
        return f"`.{expr.attr}`"
    return "a derived expression"


def _attr_base(expr: ast.expr) -> Optional[ast.Attribute]:
    """The attribute at the root of a (possibly subscripted) lvalue."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    return node if isinstance(node, ast.Attribute) else None


def _name_base(expr: ast.expr) -> Optional[str]:
    """The name at the root of a (possibly subscripted) lvalue."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def reclaimed_attrs(module: ModuleGraphs) -> frozenset[str]:
    """Attributes some code in this module pops/deletes/clears.

    A store into ``self.attr`` only outlives the backward window if
    nothing ever reclaims that attribute: the engine's speculation
    ledger (``spec_used``) is stored *and* popped on arrival, which is
    the protocol working as designed, not an escape.
    """
    reclaimed: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _RECLAIMS:
                base = _attr_base(node.func.value)
                if base is not None:
                    reclaimed.add(base.attr)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = _attr_base(target)
                if base is not None:
                    reclaimed.add(base.attr)
        elif isinstance(node, ast.Assign):
            # self.h = self.h[-n:] — slice-reassign trim.
            if (
                isinstance(node.value, ast.Subscript)
                and isinstance(node.value.slice, ast.Slice)
            ):
                trimmed = _attr_base(node.value)
                for target in node.targets:
                    kept = _attr_base(target)
                    if (
                        trimmed is not None
                        and kept is not None
                        and kept.attr == trimmed.attr
                    ):
                        reclaimed.add(kept.attr)
    return frozenset(reclaimed)


def _param_aliases(cfg: CFG) -> frozenset[str]:
    """Names that (may) alias a caller-owned parameter object.

    Flow-insensitive: seeded with the parameters (minus the receiver —
    ``self`` stores are SPT303's domain) and closed over direct
    name-to-name copies.
    """
    aliases = {name for name in _param_names(cfg) if name not in ("self", "cls")}
    copies: list[tuple[str, str]] = []
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    copies.append((target.id, stmt.value.id))
    for _ in range(len(copies) + 1):
        changed = False
        for target, source in copies:
            if source in aliases and target not in aliases:
                aliases.add(target)
                changed = True
        if not changed:
            break
    return frozenset(aliases)


def _global_names(cfg: CFG) -> frozenset[str]:
    names: set[str] = set()
    for node in ast.walk(cfg.func):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return frozenset(names)


def _confirm_reachable(
    cfg: CFG, uid: int, var: str
) -> bool:
    """Is a check/verify of ``var`` reachable strictly after ``uid``?"""
    for later_uid in cfg.reachable_from(uid):
        stmt = cfg.nodes[later_uid].stmt
        if stmt is None:
            continue
        for call in _iter_calls(stmt):
            if _call_name(call) not in CHECK_NAMES:
                continue
            args = list(call.args) + [kw.value for kw in call.keywords]
            if any(isinstance(a, ast.Name) and a.id == var for a in args):
                return True
    return False


def _tainted_names_in(
    expr: ast.expr, state: State, analysis: TaintAnalysis
) -> list[str]:
    """Unconfirmed speculative names anywhere inside ``expr``.

    Deliberately deeper than :meth:`TaintAnalysis.facts_of`: a
    ``raise ValueError(spec)`` wraps the value in a laundering call,
    but the exception object still *carries* it out of the frame.
    """
    names: list[str] = []
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if unconfirmed(state.get(sub.id, frozenset())) and sub.id not in names:
                names.append(sub.id)
    return names


def check_module(
    module: ModuleGraphs, ctx: TaintContext
) -> Iterator[Diagnostic]:
    """Run SPT301–SPT307 over every function of one module."""
    reclaimed = reclaimed_attrs(module)
    commit_lines = ctx.commit_lines.get(module.path, frozenset())
    emitted: set[tuple[int, int, str]] = set()

    def emit(node: ast.AST, code: str, message: str) -> Iterator[Diagnostic]:
        key = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0), code)
        if key in emitted or getattr(node, "lineno", 0) in commit_lines:
            return
        emitted.add(key)
        yield _diag(module.path, node, code, message)

    for qualname, cfg in sorted(module.cfgs.items()):
        summary = ctx.summaries.get((module.path, qualname))
        if summary is not None and summary.commits:
            continue  # declared commit point: body is trusted
        analysis = TaintAnalysis(cfg, ctx)
        states = solve_forward(cfg, analysis)
        aliases = _param_aliases(cfg)
        globals_ = _global_names(cfg)
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            assert stmt is not None
            state = states[node.uid]

            # --- SPT301/302: direct sink reaches -----------------------
            for code, call, arg, facts in iter_sink_args(stmt, state, analysis):
                if not unconfirmed(facts):
                    continue  # parameter-origin only: the caller's report
                sink = _call_name(call)
                yield from emit(
                    call,
                    code,
                    f"unconfirmed speculative value {_describe(arg)} "
                    f"reaches irreversible sink `{sink}(...)` in "
                    f"{qualname}; confirm it (check/verify) or route it "
                    "through a declared commit point first",
                )

            # --- SPT301/302 interprocedural: tainted arg into a
            # function whose parameter reaches a sink ------------------
            for call in _iter_calls(stmt):
                if analysis.is_commit_call(call):
                    continue
                for callee in analysis.callee_summaries(call):
                    if callee.commits or not callee.sink_params:
                        continue
                    mapping = args_for_params(call, callee)
                    for cidx, code in callee.sink_params.items():
                        arg_expr = mapping.get(cidx)
                        if arg_expr is None:
                            continue
                        if unconfirmed(analysis.facts_of(arg_expr, state)):
                            pname = (
                                callee.param_names[cidx]
                                if cidx < len(callee.param_names)
                                else f"#{cidx}"
                            )
                            yield from emit(
                                call,
                                code,
                                f"unconfirmed speculative value "
                                f"{_describe(arg_expr)} escapes through "
                                f"`{_call_name(call)}(...)` in {qualname}: "
                                f"the callee's parameter `{pname}` reaches "
                                f"an irreversible sink ({code}) down the "
                                "call chain",
                            )

            # --- SPT304/305: commit-style calls -----------------------
            for call in _iter_calls(stmt):
                name = _call_name(call)
                if name not in COMMIT_STYLE_NAMES:
                    continue
                if analysis.is_commit_call(call):
                    continue  # declared commit point: sanctioned
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    if not unconfirmed(analysis.facts_of(arg, state)):
                        continue
                    if isinstance(arg, ast.Name) and _confirm_reachable(
                        cfg, node.uid, arg.id
                    ):
                        yield from emit(
                            call,
                            "SPT305",
                            f"`{name}({arg.id})` in {qualname} runs "
                            "before the check/verify of "
                            f"`{arg.id}` that follows it; confirm the "
                            "speculation first, then commit",
                        )
                    else:
                        yield from emit(
                            call,
                            "SPT304",
                            f"undeclared commit `{name}(...)` in "
                            f"{qualname} consumes unconfirmed "
                            f"speculative value {_describe(arg)} and no "
                            "check/verify exists on any later path; mark "
                            "the function `@commits` if this is a real "
                            "commit point, otherwise verify first",
                        )

            # --- SPT303: stores outliving the backward window ---------
            spec_store_targets: list[tuple[ast.AST, str]] = []
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = stmt.value
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                if value is not None and unconfirmed(
                    analysis.facts_of(value, state)
                ):
                    for target in targets:
                        base = _attr_base(target)
                        if base is not None and base.attr not in reclaimed:
                            spec_store_targets.append((target, f".{base.attr}"))
                        gname = _name_base(target)
                        if gname is not None and gname in globals_:
                            spec_store_targets.append((target, gname))
            for call in _iter_calls(stmt):
                if _call_name(call) not in _MUTATORS:
                    continue
                if not isinstance(call.func, ast.Attribute):
                    continue
                args = list(call.args) + [kw.value for kw in call.keywords]
                if not any(
                    unconfirmed(analysis.facts_of(a, state)) for a in args
                ):
                    continue
                base = _attr_base(call.func.value)
                if base is not None and base.attr not in reclaimed:
                    spec_store_targets.append((call, f".{base.attr}"))
            for target, where in spec_store_targets:
                yield from emit(
                    target,
                    "SPT303",
                    f"unconfirmed speculative value stored into "
                    f"`{where}` in {qualname}, which outlives the "
                    "backward window (nothing in this module ever "
                    "pops/deletes/clears it); reclaim it on arrival or "
                    "annotate the store `# spectaint: commit` with a "
                    "justification",
                )

            # --- SPT306: speculative data in raised exceptions --------
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                carried: list[str] = _tainted_names_in(stmt.exc, state, analysis)
                if stmt.cause is not None:
                    carried += [
                        n
                        for n in _tainted_names_in(stmt.cause, state, analysis)
                        if n not in carried
                    ]
                if carried:
                    listed = ", ".join(f"`{n}`" for n in carried)
                    yield from emit(
                        stmt,
                        "SPT306",
                        f"raise in {qualname} carries unconfirmed "
                        f"speculative value(s) {listed} out of the "
                        "rollback scope; handlers cannot undo the "
                        "speculation — confirm before raising or raise "
                        "without the speculative payload",
                    )

            # --- SPT307: mutation through caller-owned aliases --------
            spt307_sites: list[tuple[ast.AST, str, str]] = []
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                value = stmt.value
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                if unconfirmed(analysis.facts_of(value, state)):
                    for target in targets:
                        if not isinstance(target, ast.Subscript):
                            continue
                        root = _name_base(target)
                        if root is not None and root in aliases:
                            spt307_sites.append((target, root, "subscript store"))
            for call in _iter_calls(stmt):
                if _call_name(call) not in _MUTATORS:
                    continue
                if not isinstance(call.func, ast.Attribute):
                    continue
                root = _name_base(call.func.value)
                if root is None or root not in aliases:
                    continue
                args = list(call.args) + [kw.value for kw in call.keywords]
                if any(unconfirmed(analysis.facts_of(a, state)) for a in args):
                    spt307_sites.append(
                        (call, root, f"`.{_call_name(call)}(...)`")
                    )
            for site, root, how in spt307_sites:
                yield from emit(
                    site,
                    "SPT307",
                    f"unconfirmed speculative value written into "
                    f"`{root}` ({how}) in {qualname}; `{root}` aliases a "
                    "caller-owned object, so the speculation escapes "
                    "this frame's rollback scope through the alias",
                )


def check_dead_rollback(
    callgraph: CallGraph,
    commit_points: set[tuple[str, str]],
) -> Iterator[Diagnostic]:
    """SPT308: rollback-looking handlers with no caller anywhere."""
    for key in callgraph.functions():
        path, qualname = key
        name = qualname.rsplit(".", 1)[-1]
        if name not in ROLLBACK_NAMES:
            continue
        if key in commit_points:
            continue  # declared commit points are trusted wiring
        if callgraph.callers.get(key):
            continue
        cfg = callgraph.cfg_of(key)
        anchor: ast.AST = cfg.func if cfg is not None else ast.Pass()
        yield _diag(
            path,
            anchor,
            "SPT308",
            f"rollback handler `{qualname}` is never called from any "
            "analysed code path; the recovery half of the speculation "
            "protocol is dead — wire it into the correction path or "
            "remove it",
        )
