"""The commit-point annotation API spectaint type-checks against.

The speculative protocol's correctness obligation is that data derived
from an *unconfirmed* speculative receive stays reversible until the
actual value arrives.  Some sites legitimately end that obligation —
the engine's arrival handler, an application's barrier-synchronised
adoption step — and the analysis must not flag them.  Two spellings
mark such sites:

``@commits``
    Decorate a function to declare it a commit point: spectaint
    treats every argument passed into it as *confirmed* from the call
    onward, and never reports the function's own body as an escape.
    The decorator is a pure marker at runtime (it tags the function
    and returns it unchanged), so production code can carry it with
    zero overhead.

``# spectaint: commit``
    Annotate a single line: values produced by assignments on that
    line are treated as confirmed.  Use it where a value is known to
    be safe for reasons the dataflow cannot see (e.g. a barrier
    guarantees the actual arrived), and say why in the same comment.

Both are honoured *by name* during static analysis (the analyser never
imports the code it checks), so fixtures and third-party code may use
any decorator called ``commits``.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])

#: Attribute set on decorated functions (runtime introspection hook).
COMMITS_ATTR = "__spectaint_commits__"


def commits(func: F) -> F:
    """Mark ``func`` as a legitimate commit point (pure marker)."""
    setattr(func, COMMITS_ATTR, True)
    return func


def is_commit_point(func: object) -> bool:
    """Was ``func`` decorated with :func:`commits`?"""
    return bool(getattr(func, COMMITS_ATTR, False))
