"""The declarative protocol-invariant registry.

One source of truth for every invariant the speculative protocol is
expected to uphold.  Three consumers seat the same registry:

* :class:`repro.analysis.sanitizer.ProtocolSanitizer` — the runtime
  seat; checks the invariants it can observe from the effect stream of
  a *single* execution (DES, loopback or pipes).
* :mod:`repro.analysis.modelcheck` (**specmc**) — the exhaustive seat;
  checks every invariant over *all* bounded interleavings, including
  the global ones (deadlock-freedom) a single run cannot witness.
* ``docs/protocol.md`` — the human seat; its invariant catalogue table
  is asserted against this registry by the test suite.

Adding an invariant here is the whole job: give it an id, a summary
and its seats, then implement the check in the seats you declared.
``tests/test_invariants.py`` fails until every declared seat actually
enumerates the id, and the docs test fails until the catalogue row
exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "Invariant",
    "INVARIANTS",
    "EVENT_STATE_MACHINE",
    "MONOTONIC_VIRTUAL_TIME",
    "FORWARD_WINDOW_BOUND",
    "CASCADE_ORDER",
    "VERIFY_WITHOUT_SPECULATE",
    "EVENTUAL_VERIFICATION",
    "SEQUENCE_GAP_FREEDOM",
    "DEADLOCK_FREEDOM",
    "HISTORY_RING_BOUND",
    "WINDOW_POLICY_BOUND",
    "BUFFER_OCCUPANCY_BOUNDED",
    "RETRANSMIT_BOUNDED",
    "invariant_ids",
    "sanitizer_invariant_ids",
    "specmc_invariant_ids",
    "require",
]

SEAT_SANITIZER = "sanitizer"
SEAT_SPECMC = "specmc"
_VALID_SEATS = frozenset({SEAT_SANITIZER, SEAT_SPECMC})
_VALID_KINDS = frozenset({"safety", "liveness"})


@dataclass(frozen=True)
class Invariant:
    """A protocol invariant: what must hold, and who checks it."""

    id: str
    title: str
    summary: str
    kind: str  # "safety" | "liveness"
    seats: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"invariant {self.id}: bad kind {self.kind!r}")
        if not self.seats:
            raise ValueError(f"invariant {self.id}: no seats declared")
        bad = self.seats - _VALID_SEATS
        if bad:
            raise ValueError(f"invariant {self.id}: unknown seats {sorted(bad)}")


INVARIANTS: Dict[str, Invariant] = {}


def _register(
    id: str,
    title: str,
    summary: str,
    kind: str,
    seats: Tuple[str, ...],
) -> str:
    if id in INVARIANTS:
        raise ValueError(f"duplicate invariant id {id!r}")
    INVARIANTS[id] = Invariant(
        id=id, title=title, summary=summary, kind=kind, seats=frozenset(seats)
    )
    return id


EVENT_STATE_MACHINE = _register(
    "event-state-machine",
    "Per-rank effect stream follows the protocol grammar",
    "Every rank's effect stream is a word of the Fig. 3 state machine: "
    "drain, pre-send window, sends, post-send window, speculate/compute, "
    "final drain.  Verify/correct events only follow a matching "
    "speculation; compute for iteration t happens at most once outside "
    "a cascade.",
    "safety",
    (SEAT_SANITIZER,),
)

MONOTONIC_VIRTUAL_TIME = _register(
    "monotonic-virtual-time",
    "Per-rank virtual time never decreases",
    "In the DES seat, each rank's charged virtual time is "
    "non-decreasing across effects.  Only the DES transport has a "
    "clock, so only the runtime seat checks this; the sans-I/O engine "
    "itself never reads time (enforced separately by SPL007).",
    "safety",
    (SEAT_SANITIZER,),
)

FORWARD_WINDOW_BOUND = _register(
    "forward-window-bound",
    "Computation never outruns verification by more than FW",
    "When iteration t is computed, verified_upto >= t - max(fw, 1) - 1: "
    "the pre-send window gate actually gated.  A rank that computes "
    "further ahead has silently disabled the trailing verification "
    "loop of Fig. 3.",
    "safety",
    (SEAT_SANITIZER, SEAT_SPECMC),
)

CASCADE_ORDER = _register(
    "cascade-order",
    "Cascade recomputation is in-order and terminates",
    "A correction cascade recomputes iterations in strictly ascending "
    "order, stays within (t, frontier), and ends.  Ascending order "
    "within a finite frontier is the termination argument for the "
    "cascade dynamics of Manita & Simonot.",
    "safety",
    (SEAT_SANITIZER, SEAT_SPECMC),
)

VERIFY_WITHOUT_SPECULATE = _register(
    "verify-without-speculate",
    "Checks consume a matching outstanding speculation",
    "A verify (accept) or correct event for (peer, t) requires an "
    "outstanding speculation for (peer, t): nothing is checked twice, "
    "and nothing unspeculated is ever 'verified'.",
    "safety",
    (SEAT_SANITIZER, SEAT_SPECMC),
)

EVENTUAL_VERIFICATION = _register(
    "eventual-verification",
    "Every speculated value is eventually verified or corrected",
    "At run end no speculation is still outstanding: each speculated "
    "input was resolved by the real message and either accepted "
    "(error <= theta) or corrected.  This is the paper's guarantee "
    "that speculation changes *when* work happens, never *whether* "
    "inputs are checked.",
    "liveness",
    (SEAT_SANITIZER, SEAT_SPECMC),
)

SEQUENCE_GAP_FREEDOM = _register(
    "sequence-gap-freedom",
    "Per-destination send sequence numbers are delivered gap-free",
    "For every (src, dst) channel, delivered Send.seq values are "
    "exactly 0, 1, 2, ... with no gap and no reordering.  This is the "
    "wire-level fact that fixed SPF111: the engine stamps, the "
    "transport preserves, the receiver's history stays FIFO.",
    "safety",
    (SEAT_SANITIZER, SEAT_SPECMC),
)

DEADLOCK_FREEDOM = _register(
    "deadlock-freedom",
    "No reachable state parks every rank forever",
    "In every reachable state, some rank can step: either a rank is "
    "runnable, or an undelivered message can open a blocking Recv.  A "
    "state with unfinished ranks, empty channels and all ranks parked "
    "on blocking receives is a deadlock.  Only the exhaustive seat "
    "can check this - a single run that deadlocks just hangs.",
    "liveness",
    (SEAT_SPECMC,),
)

HISTORY_RING_BOUND = _register(
    "history-ring-bound",
    "Backward-window history stays within its declared capacity",
    "Every HistoryRing holds at most its capacity of (time, block) "
    "pairs and its times are strictly increasing in every reachable "
    "state - the backward window is genuinely bounded memory.",
    "safety",
    (SEAT_SPECMC,),
)


WINDOW_POLICY_BOUND = _register(
    "window-policy-bound",
    "Adaptive windows stay within policy bounds and gate the present",
    "Every WindowChanged announced by a seated window policy lands "
    "within the policy's [min_fw, max_fw], and the forward-window "
    "gates (ComputeBegin.fw) always reflect the *current* window, "
    "never the constructor's: adaptation may move the window, but it "
    "can neither escape its bounds nor leave a stale gate behind.",
    "safety",
    (SEAT_SANITIZER, SEAT_SPECMC),
)


BUFFER_OCCUPANCY_BOUNDED = _register(
    "buffer-occupancy-bounded",
    "Protocol buffers stay within their parameter-derived bounds",
    "While a rank runs, its speculation buffers respect the bounds the "
    "specbound analysis derives from the protocol parameters: each "
    "history ring holds at most its capacity of entries, and the "
    "run-ahead backlog (iterations arrived but not yet verified) never "
    "exceeds the FW-derived inbox bound.  A rank exceeding either has "
    "decoupled memory growth from (p, FW, BW) - the paper's windows no "
    "longer bound its state.",
    "safety",
    (SEAT_SANITIZER,),
)


RETRANSMIT_BOUNDED = _register(
    "retransmit-bounded",
    "Lost messages are recovered within the retry budget",
    "Every sequence gap a rank detects is healed by a (re)delivery "
    "before the engine's retransmit timer escalates past its "
    "max_retries budget, and no retransmit request is still "
    "outstanding at run end.  A transport that drops a message and "
    "never answers the retransmit has broken the recovery contract "
    "speculation's progress depends on - the run must be flagged, "
    "not silently wedged.",
    "safety",
    (SEAT_SANITIZER, SEAT_SPECMC),
)


def invariant_ids() -> Tuple[str, ...]:
    """All registered invariant ids, in registration order."""
    return tuple(INVARIANTS)


def _seat_ids(seat: str) -> Tuple[str, ...]:
    return tuple(i for i, inv in INVARIANTS.items() if seat in inv.seats)


def sanitizer_invariant_ids() -> Tuple[str, ...]:
    """Ids the runtime :class:`ProtocolSanitizer` seat must enforce."""
    return _seat_ids(SEAT_SANITIZER)


def specmc_invariant_ids() -> Tuple[str, ...]:
    """Ids the exhaustive specmc seat must enforce."""
    return _seat_ids(SEAT_SPECMC)


def require(invariant_id: str) -> Invariant:
    """Look up an id, raising if a seat invents an unregistered one."""
    try:
        return INVARIANTS[invariant_id]
    except KeyError:
        raise KeyError(
            f"unregistered invariant id {invariant_id!r}; declare it in "
            "repro.analysis.invariants first"
        ) from None
