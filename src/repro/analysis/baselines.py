"""Schema-versioned, consolidated fingerprint baselines.

Historically each analysis family kept its own accepted-findings file
(``.speclint/specflow-baseline.json``, ``.speclint/specperf-baseline.json``,
...), all with the same v1 shape.  With four families that is four
files to migrate in lockstep, so the accepted sets now live in **one**
schema-versioned document keyed by tool::

    {
      "version": 2,
      "tools": {
        "specflow":  {"fingerprints": ["..."]},
        "specperf":  {"fingerprints": ["..."]},
        "spectaint": {"fingerprints": ["..."]}
      }
    }

:func:`baseline_for` is the single read path: it prefers the
consolidated file and falls back to the tool's legacy v1 file with a
deprecation warning, so existing CI gates keep working until
``repro check --migrate-baselines`` performs the one-shot move.
Fingerprints themselves are unchanged
(:func:`repro.analysis.sarif.fingerprint`), so migration is purely a
re-keying — no finding is re-accepted or dropped.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.analysis.reporting import stable_json

#: Canonical location of the consolidated baseline document.
DEFAULT_BASELINES = Path(".speclint/baselines.json")

#: Current schema version of the consolidated document.
SCHEMA_VERSION = 2

#: Every analysis family that may hold an accepted set.
TOOLS = ("speclint", "specflow", "specperf", "spectaint", "specbound")


def legacy_baseline_path(tool: str, directory: Path | None = None) -> Path:
    """Where the pre-consolidation v1 file of ``tool`` lived."""
    base = directory if directory is not None else DEFAULT_BASELINES.parent
    return base / f"{tool}-baseline.json"


def load_baselines(path: str | Path) -> dict[str, frozenset[str]]:
    """``tool -> accepted fingerprints`` from a consolidated v2 file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline file {path} has version {payload.get('version')!r}, "
            f"expected {SCHEMA_VERSION} (run `repro check --migrate-baselines`)"
        )
    tools = payload.get("tools", {})
    if not isinstance(tools, dict):  # pragma: no cover - defensive
        raise ValueError(f"malformed baseline file {path}")
    return {
        tool: frozenset(str(fp) for fp in entry.get("fingerprints", []))
        for tool, entry in tools.items()
    }


def save_baselines(
    accepted: dict[str, frozenset[str]], path: str | Path
) -> None:
    """Write the consolidated v2 document (deterministic bytes)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": SCHEMA_VERSION,
        "tools": {
            tool: {"fingerprints": sorted(prints)}
            for tool, prints in sorted(accepted.items())
        },
    }
    target.write_text(stable_json(payload), encoding="utf-8")


def baseline_for(
    tool: str, path: str | Path | None = None
) -> frozenset[str]:
    """The accepted fingerprint set of one tool.

    Reads the consolidated file when present; otherwise falls back to
    the tool's legacy v1 file (with a deprecation warning on stderr);
    otherwise the empty set.
    """
    consolidated = Path(path) if path is not None else DEFAULT_BASELINES
    if consolidated.exists():
        return load_baselines(consolidated).get(tool, frozenset())
    legacy = legacy_baseline_path(tool, consolidated.parent)
    if legacy.exists():
        print(
            f"warning: reading deprecated per-tool baseline {legacy}; "
            "run `repro check --migrate-baselines` to consolidate",
            file=sys.stderr,
        )
        payload = json.loads(legacy.read_text(encoding="utf-8"))
        return frozenset(str(fp) for fp in payload.get("fingerprints", []))
    return frozenset()


def set_baseline(
    tool: str, fingerprints: frozenset[str], path: str | Path | None = None
) -> None:
    """Replace one tool's accepted set in the consolidated file."""
    target = Path(path) if path is not None else DEFAULT_BASELINES
    accepted = load_baselines(target) if target.exists() else {}
    accepted[tool] = fingerprints
    save_baselines(accepted, target)


def migrate_baselines(
    path: str | Path | None = None,
) -> list[str]:
    """One-shot move of every legacy v1 file into the v2 document.

    Merges each ``<tool>-baseline.json`` into the consolidated file
    (union with any set already there), deletes the legacy file, and
    returns one human-readable line per action taken.
    """
    target = Path(path) if path is not None else DEFAULT_BASELINES
    accepted = load_baselines(target) if target.exists() else {}
    actions: list[str] = []
    for tool in TOOLS:
        legacy = legacy_baseline_path(tool, target.parent)
        if not legacy.exists():
            continue
        payload = json.loads(legacy.read_text(encoding="utf-8"))
        prints = frozenset(str(fp) for fp in payload.get("fingerprints", []))
        accepted[tool] = accepted.get(tool, frozenset()) | prints
        legacy.unlink()
        actions.append(
            f"migrated {legacy} ({len(prints)} fingerprint(s)) -> {target}"
        )
    if actions or not target.exists():
        save_baselines(accepted, target)
        if not actions:
            actions.append(f"created empty consolidated baseline {target}")
    return actions
