"""speclint driver: file discovery, rule execution, suppressions.

Suppression syntax (checked per physical line of the diagnostic):

``# speclint: disable=SPL001``
    Suppress the listed rule(s) on this line (comma-separated,
    ``all`` suppresses every rule).
``# speclint: disable-file=SPL003``
    Anywhere in the file: suppress the listed rule(s) for the whole
    file (used e.g. by wall-clock backends that legitimately read the
    real clock).

The same directives spelled ``# specflow: ...``, ``# specperf: ...``,
``# spectaint: ...`` or ``# specbound: ...`` are honoured too, so
SPF1xx/SPP2xx/SPT3xx/SPB4xx suppressions read naturally next to the
tool that emits them; all spellings suppress all rule families (codes
disambiguate), and one directive may name ids from several tools at
once (``# speclint: disable=SPL001,SPT301``).

:func:`parse_suppressions` is the single implementation every family
(speclint, specflow, specperf, spectaint, specbound) consults — the
per-tool drivers all route through :func:`drop_suppressed`.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.diagnostics import RULES, Diagnostic, Severity

# Import for the side effect of registering the rules.
from repro.analysis import rules as _rules  # noqa: F401

_LINE_DIRECTIVE = re.compile(
    r"#\s*spec(?:lint|flow|perf|taint|bound):\s*disable=([A-Za-z0-9_,\s]+)"
)
_FILE_DIRECTIVE = re.compile(
    r"#\s*spec(?:lint|flow|perf|taint|bound):\s*disable-file=([A-Za-z0-9_,\s]+)"
)

#: Directories never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


def _parse_codes(raw: str) -> set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def parse_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """(per-line, file-wide) suppressed rule codes from directives.

    Every directive on a line contributes (a line may carry both a
    ``# speclint:`` and a ``# spectaint:`` directive), and every
    spelling accepts every family's codes.
    """
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _FILE_DIRECTIVE.finditer(line):
            file_wide |= _parse_codes(match.group(1))
        # Strip file-wide directives first: the line regex would also
        # match inside ``disable-file=...`` ("disable" is a prefix).
        remainder = _FILE_DIRECTIVE.sub("", line)
        for match in _LINE_DIRECTIVE.finditer(remainder):
            per_line.setdefault(lineno, set()).update(_parse_codes(match.group(1)))
    return per_line, file_wide


#: Historical name, kept for callers that predate the unification.
collect_suppressions = parse_suppressions


def _suppressed(
    diag: Diagnostic, per_line: dict[int, set[str]], file_wide: set[str]
) -> bool:
    codes = per_line.get(diag.line, set()) | file_wide
    return bool(codes) and (diag.code.upper() in codes or "ALL" in codes)


def drop_suppressed(
    diagnostics: Iterable[Diagnostic], sources: dict[str, str]
) -> list[Diagnostic]:
    """Filter findings through the suppression directives of their files.

    ``sources`` maps diagnostic paths to their source text; findings in
    unknown files pass through unfiltered.  Shared by the specflow,
    specperf and spectaint drivers (speclint filters inline in
    :func:`lint_source`, where it already holds the parsed directives).
    """
    parsed: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    kept: list[Diagnostic] = []
    for diag in diagnostics:
        source = sources.get(diag.path)
        if source is None:
            kept.append(diag)
            continue
        if diag.path not in parsed:
            parsed[diag.path] = parse_suppressions(source)
        per_line, file_wide = parsed[diag.path]
        if not _suppressed(diag, per_line, file_wide):
            kept.append(diag)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Run the (optionally ``select``-ed) rules over one source text.

    Unparseable files yield a single ``SPL000`` syntax-error
    diagnostic rather than crashing the run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="SPL000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        ]
    return lint_module(tree, path, source, select=select)


def lint_module(
    tree: ast.Module,
    path: str,
    source: str,
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Run the rules over an already-parsed module.

    The umbrella ``repro check`` parses every file exactly once and
    feeds the same tree to every analysis family; this is speclint's
    seat at that shared cache.
    """
    per_line, file_wide = parse_suppressions(source)
    wanted = set(code.upper() for code in select) if select is not None else None
    found: list[Diagnostic] = []
    for code, rule in sorted(RULES.items()):
        if wanted is not None and code not in wanted:
            continue
        for diag in rule.check(tree, path, source):
            if not _suppressed(diag, per_line, file_wide):
                found.append(diag)
    return sorted(found)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen.add(sub)
        elif path.suffix == ".py":
            seen.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"speclint: no such path: {path}")
    return sorted(seen)


def lint_paths(
    paths: Sequence[str | Path],
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Lint every ``.py`` file under ``paths``; returns all findings."""
    found: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        found.extend(lint_source(source, path=str(file_path), select=select))
    return sorted(found)
