"""speclint driver: file discovery, rule execution, suppressions.

Suppression syntax (checked per physical line of the diagnostic):

``# speclint: disable=SPL001``
    Suppress the listed rule(s) on this line (comma-separated,
    ``all`` suppresses every rule).
``# speclint: disable-file=SPL003``
    Anywhere in the file: suppress the listed rule(s) for the whole
    file (used e.g. by wall-clock backends that legitimately read the
    real clock).

The same directives spelled ``# specflow: ...`` or ``# specperf: ...``
are honoured too, so SPF1xx/SPP2xx suppressions read naturally next to
the tool that emits them; all spellings suppress all rule families
(codes disambiguate).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.diagnostics import RULES, Diagnostic, Severity

# Import for the side effect of registering the rules.
from repro.analysis import rules as _rules  # noqa: F401

_LINE_DIRECTIVE = re.compile(
    r"#\s*spec(?:lint|flow|perf):\s*disable=([A-Za-z0-9_,\s]+)"
)
_FILE_DIRECTIVE = re.compile(
    r"#\s*spec(?:lint|flow|perf):\s*disable-file=([A-Za-z0-9_,\s]+)"
)

#: Directories never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


def _parse_codes(raw: str) -> set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def collect_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """(per-line, file-wide) suppressed rule codes from directives."""
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _FILE_DIRECTIVE.search(line)
        if match:
            file_wide |= _parse_codes(match.group(1))
            continue
        match = _LINE_DIRECTIVE.search(line)
        if match:
            per_line.setdefault(lineno, set()).update(_parse_codes(match.group(1)))
    return per_line, file_wide


def _suppressed(
    diag: Diagnostic, per_line: dict[int, set[str]], file_wide: set[str]
) -> bool:
    codes = per_line.get(diag.line, set()) | file_wide
    return bool(codes) and (diag.code.upper() in codes or "ALL" in codes)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Run the (optionally ``select``-ed) rules over one source text.

    Unparseable files yield a single ``SPL000`` syntax-error
    diagnostic rather than crashing the run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="SPL000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        ]
    per_line, file_wide = collect_suppressions(source)
    wanted = set(code.upper() for code in select) if select is not None else None
    found: list[Diagnostic] = []
    for code, rule in sorted(RULES.items()):
        if wanted is not None and code not in wanted:
            continue
        for diag in rule.check(tree, path, source):
            if not _suppressed(diag, per_line, file_wide):
                found.append(diag)
    return sorted(found)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen.add(sub)
        elif path.suffix == ".py":
            seen.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"speclint: no such path: {path}")
    return sorted(seen)


def lint_paths(
    paths: Sequence[str | Path],
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Lint every ``.py`` file under ``paths``; returns all findings."""
    found: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        found.extend(lint_source(source, path=str(file_path), select=select))
    return sorted(found)
