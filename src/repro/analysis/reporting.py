"""Shared report plumbing for the analysis tools.

speclint, specflow, specmc and specperf all ship the same three
output shapes — a ``path:line:col`` text listing with a summary line,
a stable JSON document, and a SARIF 2.1.0 run — and before this
module each tool carried its own copy of the scaffolding.  The shared
pieces live here exactly once:

* :func:`stable_json` — the canonical serialisation every JSON
  artifact uses (``indent=2, sort_keys=True``), so reports are
  byte-reproducible across runs and machines;
* :func:`render_diag_text` / :func:`render_diag_json` — the
  diagnostic-list reporters (speclint, specflow and specperf all emit
  :class:`~repro.analysis.diagnostics.Diagnostic` records);
* :func:`sarif_document` / :func:`render_sarif_document` — the SARIF
  envelope (schema pin, tool driver, rule catalogue) that
  ``analysis/sarif.py`` and ``modelcheck/report.py`` fill with their
  own results.

Tool-specific logic — fingerprints, baselines, result records — stays
with each tool; only the presentation scaffolding is shared.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity

#: SARIF schema pinned by every writer in this package.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: ``informationUri`` advertised by every tool driver.
TOOL_URI = "https://github.com/repro/speculative-computation"

#: Severity → SARIF level, shared by every SARIF writer.
SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def stable_json(payload: Any, trailing_newline: bool = True) -> str:
    """The canonical JSON serialisation (deterministic byte-for-byte)."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    return text + "\n" if trailing_newline else text


def render_diag_text(
    diagnostics: Sequence[Diagnostic], tool: str = "speclint"
) -> str:
    """One ``path:line:col: CODE [severity] message`` line per finding,
    followed by a summary line."""
    lines = [diag.format_text() for diag in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = len(diagnostics) - errors
    if diagnostics:
        lines.append(f"{tool}: {errors} error(s), {warnings} warning(s)")
    else:
        lines.append(f"{tool}: clean")
    return "\n".join(lines)


def render_diag_json(
    diagnostics: Sequence[Diagnostic],
    tool: str,
    catalogue: Mapping[str, str],
    trailing_newline: bool = False,
) -> str:
    """Stable JSON document: rule catalogue, summary counts, findings."""
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    payload = {
        "tool": tool,
        "rules": dict(catalogue),
        "summary": {
            "total": len(diagnostics),
            "errors": errors,
            "warnings": len(diagnostics) - errors,
        },
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    return stable_json(payload, trailing_newline=trailing_newline)


def sarif_document(
    tool_name: str,
    rules: Sequence[Dict[str, Any]],
    results: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """The SARIF 2.1.0 envelope: one run, a tool driver, the results."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": TOOL_URI,
                        "rules": list(rules),
                    }
                },
                "results": list(results),
            }
        ],
    }


def render_sarif_document(
    tool_name: str,
    rules: Sequence[Dict[str, Any]],
    results: Sequence[Dict[str, Any]],
) -> str:
    """:func:`sarif_document` serialised canonically (with newline)."""
    return stable_json(sarif_document(tool_name, rules, results))


def rule_catalogue_entries(
    infos: Mapping[str, Any]
) -> List[Dict[str, Any]]:
    """SARIF ``tool.driver.rules`` entries for a metadata registry.

    Accepts any mapping code → object with ``name``/``summary``/
    ``severity`` attributes (both :class:`Rule` and :class:`RuleInfo`
    qualify).
    """
    entries: List[Dict[str, Any]] = []
    for code in sorted(infos):
        info = infos[code]
        entries.append(
            {
                "id": code,
                "name": info.name,
                "shortDescription": {"text": info.summary},
                "defaultConfiguration": {"level": SARIF_LEVELS[info.severity]},
            }
        )
    return entries
