"""specbound: static speculation-resource bound analysis.

Interprocedural buffer-bound analysis over the specflow CFG + call
graph proving that every container the protocol grows is bounded by a
protocol parameter (SPB401–SPB408), plus the symbolic bound language
(:mod:`repro.analysis.bounds.symbolic`) and the trace-validated
occupancy contracts (:func:`check_occupancy`).
"""

from repro.analysis.bounds.contracts import (
    CONFIRMED,
    OCCUPANCY_BOUNDS,
    REFUTED,
    UNOBSERVED,
    OccupancyVerdict,
    check_occupancy,
    inferred_iterations,
    observed_cascade_depth,
    observed_inbox_depths,
    observed_inflight_sends,
    observed_ring_spans,
)
from repro.analysis.bounds.specbound import (
    analyze_modules,
    analyze_paths,
    analyze_source,
    rule_catalogue,
)
from repro.analysis.bounds.summaries import (
    BufferSummary,
    compute_buffer_summaries,
)
from repro.analysis.bounds.symbolic import (
    PARAMS,
    Add,
    Const,
    Expr,
    Max,
    Mul,
    Param,
    cascade_bound,
    event_count_bound,
    history_ring_bound,
    inbox_bound,
    inflight_bound,
)

__all__ = [
    "Add",
    "BufferSummary",
    "CONFIRMED",
    "Const",
    "Expr",
    "Max",
    "Mul",
    "OCCUPANCY_BOUNDS",
    "OccupancyVerdict",
    "PARAMS",
    "Param",
    "REFUTED",
    "UNOBSERVED",
    "analyze_modules",
    "analyze_paths",
    "analyze_source",
    "cascade_bound",
    "check_occupancy",
    "compute_buffer_summaries",
    "event_count_bound",
    "history_ring_bound",
    "inbox_bound",
    "inferred_iterations",
    "inflight_bound",
    "observed_cascade_depth",
    "observed_inbox_depths",
    "observed_inflight_sends",
    "observed_ring_spans",
    "rule_catalogue",
]
