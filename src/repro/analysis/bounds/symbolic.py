"""Symbolic resource bounds over the protocol parameters.

Every buffer the speculative protocol grows is supposed to be bounded
by a *parameter* of the run, not by its length: the backward window BW
caps history, the forward window FW caps run-ahead (and therefore
in-flight messages, inbox depth and cascade work), and the processor
count p multiplies the per-peer bounds.  specbound states those bounds
as tiny symbolic expressions over ``(p, fw, bw, iters)`` so that

* the rules (:mod:`repro.analysis.bounds.rules`) can talk about bounds
  without picking a concrete configuration, and
* the occupancy contracts (:mod:`repro.analysis.bounds.contracts`) can
  *evaluate* the same expression at a recorded run's ``(p, FW, BW)``
  and compare it against the observed maxima.

The expression language is deliberately small — constants, parameters,
``+``, ``*`` and ``max`` — because every bound the protocol needs is
(piecewise-)linear in the parameters.  Expressions are frozen
dataclasses: hashable, comparable, and ``substitute``/``evaluate``
round-trip exactly (property-tested in ``tests/test_specbound.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

__all__ = [
    "PARAMS",
    "Add",
    "Const",
    "Expr",
    "Max",
    "Mul",
    "Param",
    "cascade_bound",
    "event_count_bound",
    "history_ring_bound",
    "inbox_bound",
    "inflight_bound",
]

#: The protocol parameters an expression may mention.
PARAMS = ("p", "fw", "bw", "iters")

ExprLike = Union["Expr", int]


def _coerce(value: ExprLike) -> "Expr":
    return Const(value) if isinstance(value, int) else value


class Expr:
    """Base class: a closed expression over :data:`PARAMS`."""

    def evaluate(self, env: Mapping[str, int]) -> int:
        """The expression's value with every parameter bound by ``env``."""
        raise NotImplementedError  # pragma: no cover - abstract

    def substitute(self, env: Mapping[str, ExprLike]) -> "Expr":
        """A copy with the named parameters replaced (others kept)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def params(self) -> frozenset[str]:
        """The parameter names the expression mentions."""
        raise NotImplementedError  # pragma: no cover - abstract

    def render(self) -> str:
        """Human-readable form, e.g. ``max(bw, 2) + 2``."""
        raise NotImplementedError  # pragma: no cover - abstract

    def __add__(self, other: ExprLike) -> "Expr":
        return Add((self, _coerce(other)))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add((_coerce(other), self))

    def __sub__(self, other: int) -> "Expr":
        return Add((self, Const(-other)))

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul((self, _coerce(other)))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul((_coerce(other), self))


@dataclass(frozen=True)
class Const(Expr):
    """An integer literal."""

    value: int

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def substitute(self, env: Mapping[str, ExprLike]) -> Expr:
        return self

    def params(self) -> frozenset[str]:
        return frozenset()

    def render(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """One of the protocol parameters (:data:`PARAMS`)."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in PARAMS:
            raise ValueError(f"unknown protocol parameter {self.name!r}")

    def evaluate(self, env: Mapping[str, int]) -> int:
        if self.name not in env:
            raise KeyError(f"parameter {self.name!r} is unbound")
        return int(env[self.name])

    def substitute(self, env: Mapping[str, ExprLike]) -> Expr:
        if self.name in env:
            return _coerce(env[self.name])
        return self

    def params(self) -> frozenset[str]:
        return frozenset({self.name})

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class Add(Expr):
    """Sum of terms."""

    terms: tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, int]) -> int:
        return sum(t.evaluate(env) for t in self.terms)

    def substitute(self, env: Mapping[str, ExprLike]) -> Expr:
        return Add(tuple(t.substitute(env) for t in self.terms))

    def params(self) -> frozenset[str]:
        return frozenset().union(*(t.params() for t in self.terms))

    def render(self) -> str:
        parts: list[str] = []
        for term in self.terms:
            text = term.render()
            if parts and isinstance(term, Const) and term.value < 0:
                parts.append(f"- {-term.value}")
            elif parts:
                parts.append(f"+ {text}")
            else:
                parts.append(text)
        return " ".join(parts)


@dataclass(frozen=True)
class Mul(Expr):
    """Product of factors (sums are parenthesised when rendered)."""

    factors: tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, int]) -> int:
        out = 1
        for f in self.factors:
            out *= f.evaluate(env)
        return out

    def substitute(self, env: Mapping[str, ExprLike]) -> Expr:
        return Mul(tuple(f.substitute(env) for f in self.factors))

    def params(self) -> frozenset[str]:
        return frozenset().union(*(f.params() for f in self.factors))

    def render(self) -> str:
        parts = [
            f"({f.render()})" if isinstance(f, Add) else f.render()
            for f in self.factors
        ]
        return " * ".join(parts)


@dataclass(frozen=True)
class Max(Expr):
    """Pointwise maximum of the arguments."""

    args: tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, int]) -> int:
        return max(a.evaluate(env) for a in self.args)

    def substitute(self, env: Mapping[str, ExprLike]) -> Expr:
        return Max(tuple(a.substitute(env) for a in self.args))

    def params(self) -> frozenset[str]:
        return frozenset().union(*(a.params() for a in self.args))

    def render(self) -> str:
        return "max(" + ", ".join(a.render() for a in self.args) + ")"


# --------------------------------------------------------------------------
# The canonical protocol bounds
# --------------------------------------------------------------------------

_P = Param("p")
_FW = Param("fw")
_BW = Param("bw")
_ITERS = Param("iters")


def history_ring_bound() -> Expr:
    """Per-source history-ring capacity: ``max(bw, 2) + 2``.

    Mirrors the engine's ``default_hist_cap``: the speculator reads the
    newest BW entries (at least 2 so linear extrapolation always has a
    slope), and corrections may re-read one entry below the verified
    horizon, so two slots of slack cover the entry being replaced plus
    the horizon's predecessor.
    """
    return Max((_BW, Const(2))) + 2


def inbox_bound() -> Expr:
    """Per-source inbox depth: ``fw + 1``.

    The pre-send gate keeps a sender within FW iterations of the data
    it has verified, and delivery is FIFO per channel, so at most the
    FW speculated-past iterations plus the one being confirmed can sit
    undelivered in the receiving inbox.
    """
    return _FW + 1


def inflight_bound() -> Expr:
    """Per-rank in-flight sends: ``(p - 1) * (fw + 1)``.

    The per-channel inbox bound (:func:`inbox_bound`) applied to each
    of the ``p - 1`` peers a rank broadcasts to.
    """
    return (_P - 1) * (_FW + 1)


def cascade_bound() -> Expr:
    """Corrections per cascade: ``max(fw, 1)``.

    A rejected check at iteration t repairs t and re-corrects every
    speculated iteration up to the frontier; the window gate pins the
    frontier at most FW beyond t, so one cascade performs at most FW
    corrections (one, for the degenerate FW = 0 repair).
    """
    return Max((_FW, Const(1)))


def event_count_bound() -> Expr:
    """Total trace events: ``p * iters * (6 + (p - 1) * (2 * fw + 6))``.

    A generous linear envelope — per rank-iteration the protocol emits
    a bounded alphabet (speculate/compute/verify/window) plus per-peer
    send/recv/correct traffic that cascades can multiply by at most the
    window.  Not tight; exists so "the trace grows linearly in the run,
    not quadratically" is a checkable contract.
    """
    return _P * _ITERS * (Const(6) + (_P - 1) * (Const(2) * _FW + 6))
