"""specbound driver: buffer summaries + the SPB rule pack over many files.

Shaped exactly like :mod:`repro.analysis.perf.specperf`: build every
module's CFGs, one shared call graph, the phase attribution and the
buffer summaries, then run the SPB401..SPB408 checkers per module.
Findings are ordinary :class:`~repro.analysis.diagnostics.Diagnostic`
records, so the shared reporters, the SARIF writer, the fingerprint
baselines and the ``# specbound: disable=...`` suppression directives
all behave exactly as they do for the other four families.

Entry point: :func:`analyze_paths` (what ``repro bounds`` calls).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.bounds.rules import RULE_CHECKERS, BoundContext
from repro.analysis.bounds.summaries import compute_buffer_summaries
from repro.analysis.cfg import CallGraph, ModuleGraphs
from repro.analysis.diagnostics import SPB_RULES, Diagnostic
from repro.analysis.linter import drop_suppressed, iter_python_files
from repro.analysis.perf.attribution import build_attribution
from repro.analysis.program import syntax_diagnostic


def analyze_modules(
    modules: list[ModuleGraphs],
    select: Optional[Iterable[str]] = None,
    callgraph: Optional[CallGraph] = None,
) -> list[Diagnostic]:
    """Run every SPB rule over pre-built module graphs.

    ``callgraph`` lets the umbrella ``repro check`` pass its shared
    :class:`~repro.analysis.program.ProgramIndex` graph instead of
    rebuilding one for the attribution and the buffer summaries.
    """
    wanted = {c.upper() for c in select} if select is not None else None

    def on(code: str) -> bool:
        return wanted is None or code in wanted

    graph = callgraph if callgraph is not None else CallGraph(modules)
    ctx = BoundContext(
        attribution=build_attribution(graph),
        callgraph=graph,
        summaries=compute_buffer_summaries(graph),
    )
    found: list[Diagnostic] = []
    for module in modules:
        for code, checker in sorted(RULE_CHECKERS.items()):
            if on(code):
                found.extend(checker(module, ctx))
    sources = {m.path: m.source for m in modules}
    # A node nested in several loops is visited once per enclosing
    # loop; identical findings collapse to one.
    return sorted(set(drop_suppressed(found, sources)))


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Analyse one source text (testing convenience)."""
    try:
        module = ModuleGraphs.from_source(source, path=path)
    except SyntaxError as exc:
        return [syntax_diagnostic(path, exc, "SPB000")]
    return analyze_modules([module], select=select)


def analyze_paths(
    paths: Sequence[str | Path],
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Analyse every ``.py`` file under ``paths`` as one program.

    One shared call graph means both the attribution and the buffer
    summaries are interprocedural: a helper that appends to its
    parameter makes its caller's call site an append site.  Unparseable
    files each yield an ``SPB000`` diagnostic instead of aborting.
    """
    modules: list[ModuleGraphs] = []
    syntax_errors: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            modules.append(ModuleGraphs.from_source(source, path=str(file_path)))
        except SyntaxError as exc:
            syntax_errors.append(syntax_diagnostic(str(file_path), exc, "SPB000"))
    return sorted(syntax_errors + analyze_modules(modules, select=select))


def rule_catalogue() -> dict[str, str]:
    """``code -> summary`` for every registered SPB rule (docs/CLI)."""
    return {code: SPB_RULES[code].summary for code in sorted(SPB_RULES)}
