"""Per-function buffer summaries for the bound analysis.

The unit of specbound reasoning is a *buffer*: a growable container
(``list``, ``deque``, ``dict``, ``set``, ``HistoryRing``, a pipe
``_inbox``, an ``EventLog.events``) that protocol code appends to.  A
buffer is *bounded* when every append is paired with a trim — a
``pop``/``clear``/``del``/slice cut, a ``maxlen=`` at the allocation
site, or an explicit cap — somewhere in the owning module.

Summaries make the pairing interprocedural, in exactly the mold of
spectaint's ``param:i`` taint summaries: for every function we record
which of its *parameters* it appends to and which it trims, then
propagate caller→callee to a fixed point over the shared call graph.
``helper(buf)`` in a protocol loop is then an append site on whatever
the caller passed as ``buf`` — the append-without-trim chain does not
hide behind one level of indirection (fixture
``bad_interproc_chain.py`` pins this).

Like the call graph itself the propagation is name-based and honestly
over-approximate: positional arguments only, ``self`` skipped, and a
parameter that is both appended and trimmed counts as trimmed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analysis.cfg import CallGraph, FunctionNode, ModuleGraphs
from repro.analysis.perf.attribution import call_name, walk_function

Key = tuple[str, str]  # (path, qualname), as in CallGraph

#: Method names that grow a container.
APPEND_METHODS = frozenset({"append", "extend", "appendleft", "add"})

#: Method names that shrink or drain a container.
TRIM_METHODS = frozenset({"pop", "popleft", "popitem", "remove", "clear"})

#: Growable container constructors specbound tracks allocations of.
GROWABLE_CALLS = frozenset(
    {"list", "deque", "dict", "set", "defaultdict", "OrderedDict",
     "HistoryRing", "EventLog"}
)


@dataclass(frozen=True)
class BufferSummary:
    """What one function does to its parameters' buffers.

    Indices are positional parameter positions with a leading ``self``
    / ``cls`` skipped, so they line up with call-site argument lists.
    """

    appends: frozenset[int]
    trims: frozenset[int]


_EMPTY = BufferSummary(appends=frozenset(), trims=frozenset())


def _param_names(func: FunctionNode) -> list[str]:
    """Positional parameter names, minus a leading self/cls receiver."""
    args = [a.arg for a in func.args.posonlyargs + func.args.args]
    if args and args[0] in ("self", "cls"):
        args = args[1:]
    return args


def _receiver_name(expr: ast.AST) -> Optional[str]:
    """The root identifier a method call's receiver reads, if plain.

    ``buf.append`` → ``buf``; ``buf[k].append`` → ``buf`` (a keyed
    sub-buffer grows the keyed container for bounding purposes).
    """
    cur = expr
    while isinstance(cur, ast.Subscript):
        cur = cur.value
    if isinstance(cur, ast.Name):
        return cur.id
    return None


def direct_summary(func: FunctionNode) -> BufferSummary:
    """Appends/trims the function performs on its own parameters."""
    params = _param_names(func)
    index = {name: i for i, name in enumerate(params)}
    appends: set[int] = set()
    trims: set[int] = set()
    for node in walk_function(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            name = _receiver_name(node.func.value)
            if name in index:
                if node.func.attr in APPEND_METHODS:
                    appends.add(index[name])
                elif node.func.attr in TRIM_METHODS:
                    trims.add(index[name])
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = _receiver_name(target)
                if name in index:
                    trims.add(index[name])
    return BufferSummary(appends=frozenset(appends), trims=frozenset(trims))


def compute_buffer_summaries(callgraph: CallGraph) -> dict[Key, BufferSummary]:
    """Direct summaries propagated callee→caller to a fixed point.

    If ``helper`` appends to its parameter 0 and ``f`` contains
    ``helper(queue)`` with ``queue`` a parameter of ``f``, then ``f``
    appends to that parameter too (transitively).
    """
    summaries: dict[Key, BufferSummary] = {}
    for key in callgraph.functions():
        cfg = callgraph.cfg_of(key)
        assert cfg is not None  # functions() keys come from the modules
        summaries[key] = direct_summary(cfg.func)

    changed = True
    while changed:
        changed = False
        for key in callgraph.functions():
            cfg = callgraph.cfg_of(key)
            assert cfg is not None
            params = _param_names(cfg.func)
            index = {name: i for i, name in enumerate(params)}
            mine = summaries[key]
            appends = set(mine.appends)
            trims = set(mine.trims)
            for call, callee in callgraph.calls_in(*key):
                theirs = summaries.get(callee, _EMPTY)
                if not (theirs.appends or theirs.trims):
                    continue
                for pos, arg in enumerate(call.args):
                    name = _receiver_name(arg)
                    if name not in index:
                        continue
                    if pos in theirs.appends:
                        appends.add(index[name])
                    if pos in theirs.trims:
                        trims.add(index[name])
            new = BufferSummary(appends=frozenset(appends), trims=frozenset(trims))
            if new != mine:
                summaries[key] = new
                changed = True
    return summaries


# --------------------------------------------------------------------------
# Append / allocation / trim sites inside one function
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AppendSite:
    """One place a function grows a buffer (directly or via a callee)."""

    node: ast.AST
    buffer: str  # display form, e.g. "self._backlog"
    token: str  # terminal identifier, e.g. "_backlog"
    via: Optional[str]  # callee qualname for interprocedural sites


def _buffer_display(expr: ast.AST) -> Optional[tuple[str, str]]:
    """(display, token) for a plain name / self-attribute buffer."""
    cur = expr
    while isinstance(cur, ast.Subscript):
        cur = cur.value
    if isinstance(cur, ast.Name):
        return cur.id, cur.id
    if (
        isinstance(cur, ast.Attribute)
        and isinstance(cur.value, ast.Name)
        and cur.value.id == "self"
    ):
        return f"self.{cur.attr}", cur.attr
    return None


def iter_append_sites(
    stmts: list[ast.stmt],
    key: Key,
    callgraph: Optional[CallGraph],
    summaries: Optional[dict[Key, BufferSummary]],
) -> Iterator[AppendSite]:
    """Every append site under ``stmts`` (nested defs pruned).

    Direct ``buf.append(...)`` calls always surface; calls whose callee
    summary appends a positional parameter surface as interprocedural
    sites when ``callgraph``/``summaries`` are given.
    """
    callee_of: dict[int, Key] = {}
    if callgraph is not None:
        for call, callee in callgraph.calls_in(*key):
            callee_of[id(call)] = callee

    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in APPEND_METHODS
        ):
            named = _buffer_display(node.func.value)
            if named is not None:
                yield AppendSite(
                    node=node, buffer=named[0], token=named[1], via=None
                )
            continue
        callee = callee_of.get(id(node))
        if callee is None or summaries is None:
            continue
        theirs = summaries.get(callee, _EMPTY)
        for pos in sorted(theirs.appends):
            if pos >= len(node.args):
                continue
            named = _buffer_display(node.args[pos])
            if named is not None:
                yield AppendSite(
                    node=node, buffer=named[0], token=named[1], via=callee[1]
                )


@dataclass(frozen=True)
class AllocationSite:
    """One growable-container allocation (``self.x = deque()`` etc.)."""

    node: ast.Call
    target: str  # display form of the assigned name
    token: str  # terminal identifier
    kind: str  # constructor name: list / deque / dict / ...
    has_maxlen: bool


def iter_allocations(func: FunctionNode) -> Iterator[AllocationSite]:
    """Growable-container allocations assigned to a name/attribute."""
    for node in walk_function(func):
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Call):
            continue
        kind = call_name(value)
        if kind not in GROWABLE_CALLS:
            continue
        has_maxlen = any(
            kw.arg in ("maxlen", "capacity", "max_events")
            for kw in value.keywords
        )
        for target in targets:
            named = _buffer_display(target)
            if named is not None:
                yield AllocationSite(
                    node=value,
                    target=named[0],
                    token=named[1],
                    kind=kind,
                    has_maxlen=has_maxlen,
                )


def module_trims(module: ModuleGraphs, token: str) -> bool:
    """Does the module anywhere shrink or cap buffer ``token``?

    Textual, like specperf's trim probe, but subscript-aware (the pipe
    inbox trims via ``self._inbox[src].pop(0)``) and counting a
    ``maxlen=`` / ``max_events=`` cap.  ``clear`` is deliberately NOT
    counted: resetting a buffer between runs does not bound it within
    one (that asymmetry is what separates SPB406 from specperf's
    hot-loop-scoped SPP206).
    """
    sub = r"(?:\[[^]\n]*\])?"
    name = re.escape(token)
    pattern = (
        rf"\b{name}{sub}\.pop(?:left|item)?\b"
        rf"|\b{name}{sub}\.remove\b"
        rf"|del\s+(?:self\.)?{name}\b"
        rf"|\b{name}\s*=\s*[^=\n]*\b{name}\s*\[-"
        rf"|maxlen|max_events"
    )
    return re.search(pattern, module.source) is not None


def trimmed_tokens(
    module: ModuleGraphs,
    callgraph: Optional[CallGraph],
    summaries: Optional[dict[Key, BufferSummary]],
) -> frozenset[str]:
    """Buffer tokens some call in the module passes to a trimming callee."""
    if callgraph is None or summaries is None:
        return frozenset()
    out: set[str] = set()
    for qual in module.cfgs:
        key = (module.path, qual)
        for call, callee in callgraph.calls_in(*key):
            theirs = summaries.get(callee, _EMPTY)
            for pos in theirs.trims:
                if pos >= len(call.args):
                    continue
                named = _buffer_display(call.args[pos])
                if named is not None:
                    out.add(named[1])
    return frozenset(out)
