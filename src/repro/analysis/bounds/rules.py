"""The SPB401..SPB408 speculation-resource bound rules.

Each rule flags one way a protocol buffer can outgrow the parameter
that is supposed to bound it (BW for history, FW for run-ahead state,
p for per-peer fan-out).  The phase attribution scopes most checks —
an unbounded list in a test helper is silent, the same list on the
receive path is a finding — and the buffer summaries
(:mod:`repro.analysis.bounds.summaries`) make the append/trim pairing
interprocedural.

=======  ==========================================================
SPB401   unbounded append-in-loop on a protocol-reachable buffer
SPB402   history trim uses a literal instead of the BW/FW parameter
SPB403   bare ``deque()`` without ``maxlen`` where a ring is expected
SPB404   recv-side inbox grows without a drain pairing the append
SPB405   window widening without a ``max_fw`` clamp
SPB406   unbounded trace/event buffer in long-running protocol code
SPB407   cascade correction loop without an FW-derived depth guard
SPB408   dict keyed by iteration number without eviction
=======  ==========================================================

Heuristic rules are warnings, unambiguous growth is an error, and the
messages say which parameter should appear in the bound.  Findings are
plain ``Diagnostic`` records; ``# specbound: disable=SPB406``
suppressions work exactly as for the other four families.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Iterator, Optional

from repro.analysis.bounds.summaries import (
    BufferSummary,
    Key,
    iter_allocations,
    iter_append_sites,
    module_trims,
    trimmed_tokens,
)
from repro.analysis.cfg import CallGraph, FunctionNode, ModuleGraphs
from repro.analysis.diagnostics import Diagnostic, Severity, register_spb_rule
from repro.analysis.perf.attribution import (
    Attribution,
    call_name,
    terminal_name,
    walk_function,
)

#: Buffer tokens treated as trace/event logs (SPB406's domain; SPB401
#: leaves them alone so one append site yields one finding).
EVENT_BUFFER_TOKENS = frozenset(
    {"events", "records", "log", "trace", "samples", "intervals"}
)

#: Buffer tokens treated as per-source message inboxes (SPB404).
INBOX_TOKENS = frozenset(
    {"inbox", "_inbox", "pending", "backlog", "mailbox", "_mailboxes",
     "queue", "_queue"}
)

#: Buffer tokens treated as speculation history (SPB402/SPB403).
HISTORY_TOKENS = frozenset(
    {"history", "hist", "ring", "chain", "window", "recent", "samples"}
)

#: Names that make a loop bound window-derived (SPB407's guard).
GUARD_TOKENS = frozenset(
    {"frontier", "fw", "forward", "window", "horizon", "bound", "depth"}
)

#: Loop/index names that look like an iteration number (SPB408).
ITERATION_NAMES = frozenset({"t", "t2", "iteration", "iter_no", "step"})

LOOPS = (ast.For, ast.AsyncFor, ast.While)

register_spb_rule(
    "SPB401", "unbounded-append-in-loop", Severity.ERROR,
    "protocol-reachable buffer appended to in a loop with no trim "
    "anywhere in its module (directly or via a callee)",
)
register_spb_rule(
    "SPB402", "literal-history-trim", Severity.WARNING,
    "history trim uses an integer literal instead of the BW/FW "
    "parameter that should bound it",
)
register_spb_rule(
    "SPB403", "bare-deque-ring", Severity.WARNING,
    "ring-like deque allocated without maxlen (history must be "
    "capped by the backward window)",
)
register_spb_rule(
    "SPB404", "ungated-inbox-growth", Severity.ERROR,
    "recv-side inbox appended to with no drain in its module "
    "(run-ahead is only bounded when delivery consumes the inbox)",
)
register_spb_rule(
    "SPB405", "unclamped-window-widening", Severity.WARNING,
    "window policy widens fw without a max_fw clamp, so pending "
    "speculation state is unbounded",
)
register_spb_rule(
    "SPB406", "unbounded-event-buffer", Severity.WARNING,
    "trace/event buffer on a protocol path grows with run length "
    "(no max_events cap or consumption trim)",
)
register_spb_rule(
    "SPB407", "unguarded-cascade-loop", Severity.WARNING,
    "cascade correction loop bound is not derived from the forward "
    "window / frontier, so rollback depth is unbounded",
)
register_spb_rule(
    "SPB408", "iteration-keyed-dict", Severity.WARNING,
    "dict keyed by iteration number never evicted (grows linearly "
    "with run length)",
)


def _diag(
    path: str, node: ast.AST, code: str, severity: Severity, message: str
) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        severity=severity,
        message=message,
    )


def _walk_stmts(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    """Every AST node under ``stmts``, pruning nested function bodies."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _loops_of(func: FunctionNode) -> list[ast.stmt]:
    """All ``for``/``while`` loops of the function's own body."""
    return [n for n in walk_function(func) if isinstance(n, LOOPS)]


def _names_in(node: ast.AST) -> set[str]:
    """Every identifier (names + attribute components) under ``node``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _function_items(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[tuple[str, FunctionNode, frozenset[str], bool]]:
    """(qualname, function node, phases, hot) per function."""
    for qual in sorted(module.cfgs):
        cfg = module.cfgs[qual]
        key = (module.path, qual)
        yield qual, cfg.func, attribution.phases_of(key), attribution.is_hot(key)


class BoundContext:
    """Shared per-run inputs every SPB checker receives.

    Bundles the attribution (what is protocol-reachable), the call
    graph (where the call sites resolve) and the buffer summaries
    (which callees append/trim their parameters) so the rule pack
    stays interprocedural without each rule recomputing the fixpoint.
    """

    def __init__(
        self,
        attribution: Attribution,
        callgraph: Optional[CallGraph],
        summaries: Optional[dict[Key, BufferSummary]],
    ) -> None:
        self.attribution = attribution
        self.callgraph = callgraph
        self.summaries = summaries


# --------------------------------------------------------------------------
# SPB401: unbounded append-in-loop on a protocol-reachable buffer
# --------------------------------------------------------------------------


def check_spb401(module: ModuleGraphs, ctx: BoundContext) -> Iterator[Diagnostic]:
    trimmed_via_call = trimmed_tokens(module, ctx.callgraph, ctx.summaries)
    for qual, func, phases, hot in _function_items(module, ctx.attribution):
        if not phases and not hot:
            continue
        key = (module.path, qual)
        for loop in _loops_of(func):
            body: list[ast.stmt] = loop.body  # type: ignore[attr-defined]
            for site in iter_append_sites(
                body, key, ctx.callgraph, ctx.summaries
            ):
                if not site.buffer.startswith("self."):
                    # A local accumulator lives for one call; only
                    # state that persists across iterations can outgrow
                    # the protocol parameters.
                    continue
                if site.token in EVENT_BUFFER_TOKENS:
                    continue  # SPB406's domain
                if module_trims(module, site.token):
                    continue
                if site.token in trimmed_via_call:
                    continue
                how = f" (via '{site.via}')" if site.via else ""
                yield _diag(
                    module.path, site.node, "SPB401", Severity.ERROR,
                    f"'{qual}' grows buffer '{site.buffer}' in a loop"
                    f"{how} and nothing in the module trims it; bound "
                    "it with the protocol parameter that should cap it "
                    "(BW for history, FW for run-ahead state)",
                )


# --------------------------------------------------------------------------
# SPB402: history trim uses a literal instead of the BW/FW parameter
# --------------------------------------------------------------------------


def _history_token(expr: ast.AST) -> Optional[tuple[str, str]]:
    """(display, token) when the expression reads a history-ish buffer."""
    cur = expr
    while isinstance(cur, ast.Subscript):
        cur = cur.value
    if isinstance(cur, ast.Name) and cur.id in HISTORY_TOKENS:
        return cur.id, cur.id
    if isinstance(cur, ast.Attribute) and cur.attr in HISTORY_TOKENS:
        display = (
            f"self.{cur.attr}"
            if isinstance(cur.value, ast.Name) and cur.value.id == "self"
            else cur.attr
        )
        return display, cur.attr
    return None


def _literal_tail_slice(node: ast.Subscript) -> Optional[int]:
    """The N of a ``buf[-N:]`` / ``buf[:-N]`` trim with a literal N."""
    sl = node.slice
    if not isinstance(sl, ast.Slice):
        return None
    for edge in (sl.lower, sl.upper):
        if (
            isinstance(edge, ast.UnaryOp)
            and isinstance(edge.op, ast.USub)
            and isinstance(edge.operand, ast.Constant)
            and isinstance(edge.operand.value, int)
        ):
            return int(edge.operand.value)
    return None


def check_spb402(module: ModuleGraphs, ctx: BoundContext) -> Iterator[Diagnostic]:
    for qual, func, _phases, _hot in _function_items(module, ctx.attribution):
        for node in walk_function(func):
            named: Optional[tuple[str, str]] = None
            n: Optional[int] = None
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        named = _history_token(target.value)
                        n = _literal_tail_slice(target)
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Subscript
            ):
                named = _history_token(node.value.value)
                n = _literal_tail_slice(node.value)
            if named is not None and n is not None:
                yield _diag(
                    module.path, node, "SPB402", Severity.WARNING,
                    f"'{qual}' trims history buffer '{named[0]}' to a "
                    f"literal {n}; derive the trim from the backward "
                    "window (bw) so the retained history tracks the "
                    "speculator's needs",
                )


# --------------------------------------------------------------------------
# SPB403: bare deque() without maxlen where a ring is expected
# --------------------------------------------------------------------------


def check_spb403(module: ModuleGraphs, ctx: BoundContext) -> Iterator[Diagnostic]:
    for qual, func, _phases, _hot in _function_items(module, ctx.attribution):
        for alloc in iter_allocations(func):
            if alloc.kind != "deque" or alloc.has_maxlen:
                continue
            ring_like = any(tok in alloc.token.lower() for tok in HISTORY_TOKENS)
            if not ring_like:
                continue
            yield _diag(
                module.path, alloc.node, "SPB403", Severity.WARNING,
                f"'{qual}' allocates ring-like deque '{alloc.target}' "
                "without maxlen; pass maxlen derived from the backward "
                "window (e.g. deque(maxlen=bw)) so old history is "
                "evicted automatically",
            )


# --------------------------------------------------------------------------
# SPB404: recv-side inbox growth with no drain
# --------------------------------------------------------------------------


def _module_drains(module: ModuleGraphs, token: str) -> bool:
    """Does the module ever consume (pop/del) buffer ``token``?"""
    sub = r"(?:\[[^]\n]*\])?"
    name = re.escape(token)
    pattern = (
        rf"\b{name}{sub}\.pop(?:left|item)?\b"
        rf"|del\s+(?:self\.)?{name}\b"
    )
    return re.search(pattern, module.source) is not None


def check_spb404(module: ModuleGraphs, ctx: BoundContext) -> Iterator[Diagnostic]:
    for qual, func, phases, _hot in _function_items(module, ctx.attribution):
        if "recv" not in phases:
            continue
        key = (module.path, qual)
        for site in iter_append_sites(
            list(func.body), key, ctx.callgraph, ctx.summaries
        ):
            if site.token not in INBOX_TOKENS:
                continue
            if _module_drains(module, site.token):
                continue
            yield _diag(
                module.path, site.node, "SPB404", Severity.ERROR,
                f"'{qual}' appends to inbox '{site.buffer}' on the "
                "receive path but nothing drains it; the forward "
                "window only bounds run-ahead when delivery consumes "
                "the inbox (pop on delivery)",
            )


# --------------------------------------------------------------------------
# SPB405: window widening without a max_fw clamp
# --------------------------------------------------------------------------


def _is_fw_name(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id == "fw"
    if isinstance(expr, ast.Attribute):
        return expr.attr == "fw"
    return False


def check_spb405(module: ModuleGraphs, ctx: BoundContext) -> Iterator[Diagnostic]:
    for qual, func, _phases, _hot in _function_items(module, ctx.attribution):
        seen: set[str] = set()
        for node in walk_function(func):
            seen |= _names_in(node)
        if "max_fw" in seen or "min" in seen:
            continue  # a clamp is in scope
        for node in walk_function(func):
            widens = (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Add)
                and (
                    (_is_fw_name(node.left)
                     and isinstance(node.right, ast.Constant)
                     and isinstance(node.right.value, int)
                     and node.right.value > 0)
                    or (_is_fw_name(node.right)
                        and isinstance(node.left, ast.Constant)
                        and isinstance(node.left.value, int)
                        and node.left.value > 0)
                )
            )
            if widens:
                yield _diag(
                    module.path, node, "SPB405", Severity.WARNING,
                    f"'{qual}' widens the forward window (fw + const) "
                    "with no max_fw clamp in scope; an unclamped "
                    "window makes in-flight speculation state "
                    "unbounded (cap with min(fw + 1, max_fw))",
                )


# --------------------------------------------------------------------------
# SPB406: unbounded trace/event buffer in long-running protocol code
# --------------------------------------------------------------------------


def check_spb406(module: ModuleGraphs, ctx: BoundContext) -> Iterator[Diagnostic]:
    for qual, func, phases, hot in _function_items(module, ctx.attribution):
        if not phases and not hot:
            continue
        key = (module.path, qual)
        for site in iter_append_sites(
            list(func.body), key, None, None
        ):
            if site.token not in EVENT_BUFFER_TOKENS:
                continue
            if module_trims(module, site.token):
                continue
            yield _diag(
                module.path, site.node, "SPB406", Severity.WARNING,
                f"'{qual}' appends to trace buffer '{site.buffer}' on "
                "a protocol path with no max_events cap or consumption "
                "trim; in long-running mode the log grows without "
                "bound — cap it (EventLog(max_events=...)) and count "
                "drops",
            )


# --------------------------------------------------------------------------
# SPB407: cascade correction loop without an FW-derived depth guard
# --------------------------------------------------------------------------


def _loop_guard_names(loop: ast.stmt) -> set[str]:
    """Identifiers appearing in the loop's bound expression."""
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        return _names_in(loop.iter)
    if isinstance(loop, ast.While):
        return _names_in(loop.test)
    return set()


def _open_ended(loop: ast.stmt) -> bool:
    """Loops whose trip count is not tied to an existing collection.

    ``for x in some_list`` iterates a finite structure and is bounded
    by whatever bounds the structure; ``while ...`` and
    ``for t in range(...)`` / ``itertools.count(...)`` manufacture
    their own trip count and need a window-derived guard.
    """
    if isinstance(loop, ast.While):
        return True
    if isinstance(loop, (ast.For, ast.AsyncFor)) and isinstance(
        loop.iter, ast.Call
    ):
        return call_name(loop.iter) in {"range", "count"}
    return False


def check_spb407(module: ModuleGraphs, ctx: BoundContext) -> Iterator[Diagnostic]:
    for qual, func, phases, _hot in _function_items(module, ctx.attribution):
        if "cascade" not in terminal_name(qual).lower():
            continue
        if "correct" not in phases:
            continue  # analysis/reporting helpers, not the protocol
        for loop in _loops_of(func):
            if not _open_ended(loop):
                continue
            guard = {n.lower() for n in _loop_guard_names(loop)}
            if any(tok in name for name in guard for tok in GUARD_TOKENS):
                continue
            yield _diag(
                module.path, loop, "SPB407", Severity.WARNING,
                f"cascade loop in '{qual}' has no FW-derived depth "
                "guard (bound not expressed in frontier/fw); a "
                "correction cascade must terminate within the forward "
                "window or rollback work is unbounded",
            )


# --------------------------------------------------------------------------
# SPB408: dict keyed by iteration number without eviction
# --------------------------------------------------------------------------


def _iteration_key_name(index: ast.expr) -> Optional[str]:
    """The iteration-ish name an index expression is keyed by."""
    candidates: list[ast.expr] = [index]
    if isinstance(index, ast.Tuple):
        candidates = list(index.elts)
    for cand in candidates:
        for node in ast.walk(cand):
            if isinstance(node, ast.Name) and node.id in ITERATION_NAMES:
                return node.id
    return None


def check_spb408(module: ModuleGraphs, ctx: BoundContext) -> Iterator[Diagnostic]:
    for qual, func, phases, _hot in _function_items(module, ctx.attribution):
        if not phases:
            continue
        for node in walk_function(func):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Subscript):
                    continue
                named = None
                base = target.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    named = (f"self.{base.attr}", base.attr)
                elif isinstance(base, ast.Name):
                    named = (base.id, base.id)
                if named is None:
                    continue
                key_name = _iteration_key_name(target.slice)
                if key_name is None:
                    continue
                if _module_drains(module, named[1]):
                    continue
                yield _diag(
                    module.path, node, "SPB408", Severity.WARNING,
                    f"'{qual}' stores into '{named[0]}' keyed by "
                    f"iteration '{key_name}' and nothing in the module "
                    "evicts old keys; prune entries below the verified "
                    "horizon or the map grows with run length",
                )


#: code -> checker, the pack the driver iterates.
RULE_CHECKERS: dict[
    str, Callable[[ModuleGraphs, BoundContext], Iterator[Diagnostic]]
] = {
    "SPB401": check_spb401,
    "SPB402": check_spb402,
    "SPB403": check_spb403,
    "SPB404": check_spb404,
    "SPB405": check_spb405,
    "SPB406": check_spb406,
    "SPB407": check_spb407,
    "SPB408": check_spb408,
}
