"""Occupancy contracts: symbolic bounds vs a recorded trace.

The differential half of specbound, in the specperf cost-contract
mold: a static bound is a *claim* about run-time occupancy, and a
recorded :class:`~repro.trace.events.EventLog` is evidence for or
against it.  For each contract we compute the observed maximum from
the trace and evaluate the matching symbolic bound
(:mod:`repro.analysis.bounds.symbolic`) at the run's ``(p, fw, bw)``:

* **history-ring** (per rank) — entries the rank's per-source history
  must retain: the gap between its most-advanced channel and the
  verified horizon (the oldest iteration a cascade may still re-read),
  checked against the engine's ring capacity ``max(bw, 2) + 2``;
* **inbox** (per rank) — undelivered messages per source channel
  (sends observed minus recvs, per tag family so barrier traffic does
  not pollute the data channel), checked against ``fw + 1``;
* **in-flight** (per rank) — a rank's outstanding sends across all
  peers, checked against ``(p - 1) * (fw + 1)``;
* **cascade** (run) — longest consecutive run of ``correct`` events on
  any rank, checked against ``max(fw, 1)``;
* **events** (run) — total trace size, checked against the linear
  envelope ``p * iters * (...)``.

Verdicts are **CONFIRMED** (observed within the bound), **REFUTED**
(the run outgrew the bound — a protocol-window or transport bug), or
**UNOBSERVED** (the trace has no events of that metric).  Determinism:
the DES is seeded, so a recorded trace — and every verdict — is
byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.bounds.symbolic import (
    Expr,
    cascade_bound,
    event_count_bound,
    history_ring_bound,
    inbox_bound,
    inflight_bound,
)
from repro.trace.events import EventLog, TraceEvent

#: Verdict labels (string constants shared with the reporters/tests).
CONFIRMED = "confirmed"
REFUTED = "refuted"
UNOBSERVED = "unobserved"

#: metric name -> its symbolic bound.
OCCUPANCY_BOUNDS: dict[str, Expr] = {
    "history-ring": history_ring_bound(),
    "inbox": inbox_bound(),
    "in-flight": inflight_bound(),
    "cascade": cascade_bound(),
    "events": event_count_bound(),
}


@dataclass(frozen=True, order=True)
class OccupancyVerdict:
    """One occupancy bound judged against a trace."""

    metric: str
    scope: str  # "rank 3" or "run"
    observed: int
    bound: int
    expr: str  # rendered symbolic bound
    status: str

    def format_text(self) -> str:
        """``occupancy-contract inbox [rank 0]: CONFIRMED ...`` (one line)."""
        return (
            f"occupancy-contract {self.metric} [{self.scope}]: "
            f"{self.status.upper()} — observed {self.observed} vs "
            f"bound {self.bound} = {self.expr}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "metric": self.metric,
            "scope": self.scope,
            "observed": self.observed,
            "bound": self.bound,
            "expr": self.expr,
            "status": self.status,
        }


def _time_ordered(log: EventLog) -> list[TraceEvent]:
    """Global replay order: by time, sends before the recvs they feed."""
    kind_rank = {"send": 0}
    return sorted(
        log.events,
        key=lambda ev: (ev.time, kind_rank.get(ev.kind, 1), ev.rank, ev.seq),
    )


def observed_ring_spans(log: EventLog) -> dict[int, int]:
    """Per rank: the widest history span its rings had to retain.

    Tracks the newest iteration received per channel; the rank's
    verified horizon is the slowest channel's newest iteration, and a
    cascade may re-read one entry below it, so the fast channel's ring
    must span ``newest - horizon + 2`` entries (the initial condition
    counts as iteration 0).
    """
    newest: dict[int, dict[int, int]] = {}
    spans: dict[int, int] = {}
    for ev in _time_ordered(log):
        if ev.kind != "recv" or ev.peer is None or ev.iteration is None:
            continue
        chans = newest.setdefault(ev.rank, {})
        chans[ev.peer] = max(chans.get(ev.peer, 0), ev.iteration)
        span = max(chans.values()) - min(chans.values()) + 2
        spans[ev.rank] = max(spans.get(ev.rank, 0), span)
    return spans


def observed_inbox_depths(log: EventLog) -> dict[int, int]:
    """Per rank: the deepest any single (source, family) channel got.

    Outstanding = sends addressed to the rank minus its recvs, counted
    per source *and* per tag family so one barrier message does not
    inflate the data channel's depth.
    """
    outstanding: dict[tuple[int, int, Optional[str]], int] = {}
    depths: dict[int, int] = {}
    for ev in _time_ordered(log):
        if ev.peer is None:
            continue
        if ev.kind == "send":
            chan = (ev.peer, ev.rank, ev.family)
        elif ev.kind == "recv":
            chan = (ev.rank, ev.peer, ev.family)
        else:
            continue
        delta = 1 if ev.kind == "send" else -1
        outstanding[chan] = max(0, outstanding.get(chan, 0) + delta)
        depths[chan[0]] = max(depths.get(chan[0], 0), outstanding[chan])
    return depths


def observed_inflight_sends(log: EventLog) -> dict[int, int]:
    """Per rank: its maximum outstanding sends, summed over peers.

    Like :func:`observed_inbox_depths` but attributed to the *sender*:
    within one tag family, how many of the rank's messages were in the
    pipe (or parked in a peer inbox) at once.
    """
    outstanding: dict[tuple[int, Optional[str], int], int] = {}
    peak: dict[int, int] = {}
    for ev in _time_ordered(log):
        if ev.peer is None:
            continue
        if ev.kind == "send":
            src, dst = ev.rank, ev.peer
        elif ev.kind == "recv":
            src, dst = ev.peer, ev.rank
        else:
            continue
        delta = 1 if ev.kind == "send" else -1
        chan = (src, ev.family, dst)
        outstanding[chan] = max(0, outstanding.get(chan, 0) + delta)
        total = sum(
            n for (s, fam, _d), n in outstanding.items()
            if s == src and fam == ev.family
        )
        peak[src] = max(peak.get(src, 0), total)
    return peak


def observed_cascade_depth(log: EventLog) -> Optional[int]:
    """Longest consecutive run of ``correct`` events on any rank.

    The engine emits one ``correct`` per repaired iteration and a
    cascade repairs consecutive iterations back-to-back, so the run
    length in per-rank program order is the cascade depth.  ``None``
    when the trace contains no corrections.
    """
    best: Optional[int] = None
    for rank in log.ranks():
        run = 0
        for ev in log.for_rank(rank):
            if ev.kind == "correct":
                run += 1
                best = run if best is None else max(best, run)
            else:
                run = 0
    return best


def inferred_iterations(log: EventLog) -> Optional[int]:
    """Iteration count implied by the trace (max tagged iteration + 1)."""
    tagged = [ev.iteration for ev in log.events if ev.iteration is not None]
    if not tagged:
        return None
    return max(tagged) + 1


def check_occupancy(
    log: EventLog,
    p: Optional[int] = None,
    fw: int = 1,
    bw: int = 2,
    iters: Optional[int] = None,
) -> list[OccupancyVerdict]:
    """Judge every occupancy bound against the trace.

    ``p`` defaults to the number of ranks in the trace and ``iters``
    to the largest tagged iteration; ``fw``/``bw`` must come from the
    run's configuration (they are not recorded per event).
    """
    ranks = log.ranks()
    p_eff = p if p is not None else max(1, len(ranks))
    iters_eff = iters if iters is not None else inferred_iterations(log)
    env = {"p": p_eff, "fw": fw, "bw": bw, "iters": iters_eff or 0}

    def verdict(metric: str, scope: str, observed: Optional[int]) -> OccupancyVerdict:
        expr = OCCUPANCY_BOUNDS[metric]
        bound = expr.evaluate(env)
        if observed is None:
            status = UNOBSERVED
            observed = 0
        elif observed <= bound:
            status = CONFIRMED
        else:
            status = REFUTED
        return OccupancyVerdict(
            metric=metric,
            scope=scope,
            observed=observed,
            bound=bound,
            expr=expr.render(),
            status=status,
        )

    verdicts: list[OccupancyVerdict] = []
    spans = observed_ring_spans(log)
    depths = observed_inbox_depths(log)
    inflight = observed_inflight_sends(log)
    for rank in ranks:
        verdicts.append(verdict("history-ring", f"rank {rank}", spans.get(rank)))
        verdicts.append(verdict("inbox", f"rank {rank}", depths.get(rank)))
        verdicts.append(verdict("in-flight", f"rank {rank}", inflight.get(rank)))
    verdicts.append(verdict("cascade", "run", observed_cascade_depth(log)))
    if iters_eff is None:
        verdicts.append(verdict("events", "run", None))
    else:
        verdicts.append(verdict("events", "run", len(log.events)))
    return sorted(verdicts)


def iter_verdict_dicts(verdicts: list[OccupancyVerdict]) -> list[dict[str, object]]:
    """JSON-ready verdict records (stable order)."""
    return [v.to_dict() for v in sorted(verdicts)]
