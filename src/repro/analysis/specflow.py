"""specflow driver: interprocedural protocol analysis over many files.

Where speclint (:mod:`repro.analysis.linter`) runs syntactic rules one
module at a time, specflow builds *program-wide* structure first —
every function's CFG (:mod:`repro.analysis.cfg`), a name-resolved
call graph, interprocedural taint summaries — and then runs the SPF
rule families over it:

========  =================================================
SPF101    unverified speculated value reaches a commit point
SPF102    untrimmed history container feeds the speculator
SPF103    correction cascade applied in descending order
SPF110    orphaned tag family (leak / deadlock)
SPF111    unordered conflicting sends at an ambiguous receive
========  =================================================

Entry point: :func:`analyze_paths` (what ``repro analyze`` calls).
Findings are ordinary :class:`~repro.analysis.diagnostics.Diagnostic`
records, so the text/JSON reporters, the SARIF writer and the
suppression directives (``# specflow: disable=SPF101``) all behave
exactly as they do for speclint.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.cfg import CallGraph, ModuleGraphs
from repro.analysis.diagnostics import SPF_RULES, Diagnostic
from repro.analysis.linter import drop_suppressed, iter_python_files
from repro.analysis.program import syntax_diagnostic

# Imported for the side effect of registering the SPF rule catalogue.
from repro.analysis import races, typestate  # noqa: F401
from repro.analysis.races import build_static_hb, check_spf110, check_spf111
from repro.analysis.typestate import (
    check_spf101,
    check_spf102,
    check_spf103,
    compute_summaries,
)


def analyze_modules(
    modules: list[ModuleGraphs],
    select: Optional[Iterable[str]] = None,
    callgraph: Optional[CallGraph] = None,
) -> list[Diagnostic]:
    """Run every SPF rule over pre-built module graphs.

    ``callgraph`` lets the umbrella ``repro check`` pass its shared
    :class:`~repro.analysis.program.ProgramIndex` graph instead of
    rebuilding one here.
    """
    wanted = {c.upper() for c in select} if select is not None else None

    def on(code: str) -> bool:
        return wanted is None or code in wanted

    if callgraph is None:
        callgraph = CallGraph(modules)
    summaries = compute_summaries(callgraph)
    found: list[Diagnostic] = []
    for module in modules:
        if on("SPF101"):
            found.extend(check_spf101(module, callgraph, summaries))
        if on("SPF102"):
            found.extend(check_spf102(module))
        if on("SPF103"):
            found.extend(check_spf103(module))
    if on("SPF110") or on("SPF111"):
        graph, sites = build_static_hb(modules, callgraph)
        if on("SPF110"):
            found.extend(check_spf110(sites))
        if on("SPF111"):
            found.extend(check_spf111(graph, sites))
    sources = {m.path: m.source for m in modules}
    return sorted(drop_suppressed(found, sources))


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Analyse one source text (testing convenience)."""
    try:
        module = ModuleGraphs.from_source(source, path=path)
    except SyntaxError as exc:
        return [syntax_diagnostic(path, exc, "SPF000")]
    return analyze_modules([module], select=select)


def analyze_paths(
    paths: Sequence[str | Path],
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Analyse every ``.py`` file under ``paths`` as one program.

    All parseable files contribute to one shared call graph (that is
    what makes SPF101 summaries and SPF110 send/recv matching
    *inter*-procedural); unparseable files each yield an ``SPF000``
    diagnostic instead of aborting the run.
    """
    modules: list[ModuleGraphs] = []
    syntax_errors: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            modules.append(ModuleGraphs.from_source(source, path=str(file_path)))
        except SyntaxError as exc:
            syntax_errors.append(syntax_diagnostic(str(file_path), exc, "SPF000"))
    return sorted(syntax_errors + analyze_modules(modules, select=select))


def rule_catalogue() -> dict[str, str]:
    """``code -> summary`` for every registered SPF rule (docs/CLI)."""
    return {code: SPF_RULES[code].summary for code in sorted(SPF_RULES)}
