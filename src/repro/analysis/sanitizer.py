"""Runtime protocol sanitizer for the speculative protocol stack.

Opt-in (``REPRO_SANITIZE=1`` or ``sanitize=True`` on the drivers and
transports), the sanitizer is the *runtime seat* on the declarative
invariant registry in :mod:`repro.analysis.invariants`: it checks, on
the effect stream of one live execution, every invariant whose
``seats`` include ``"sanitizer"``:

``event-state-machine``, ``monotonic-virtual-time``,
``forward-window-bound``, ``cascade-order``,
``verify-without-speculate``, ``eventual-verification``,
``sequence-gap-freedom``, ``window-policy-bound``,
``buffer-occupancy-bounded``, ``retransmit-bounded``.

(The registry's remaining ids — ``deadlock-freedom`` and
``history-ring-bound`` — need a global view of *all* interleavings and
are checked by the exhaustive seat, :mod:`repro.analysis.modelcheck`.)

A violated invariant raises :class:`ProtocolViolation` carrying a
phase-trace excerpt (the most recent protocol events) so the failure
is debuggable without re-running under a tracer.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Callable, Deque, Optional

from repro.analysis.invariants import require, sanitizer_invariant_ids
from repro.des.errors import SimulationError

#: Environment variable that turns the sanitizer on for every driver.
ENV_FLAG = "REPRO_SANITIZE"


class ProtocolViolation(SimulationError):
    """A runtime protocol invariant was broken.

    Attributes
    ----------
    invariant:
        Short invariant identifier (e.g. ``"forward-window-bound"``).
    details:
        Human-readable description of the violation.
    trace:
        The sanitizer's most recent phase-trace entries (oldest first).
    """

    def __init__(self, invariant: str, details: str, trace: list[str]) -> None:
        self.invariant = invariant
        self.details = details
        self.trace = trace
        excerpt = "\n".join(f"    {line}" for line in trace) or "    (empty)"
        super().__init__(
            f"protocol invariant violated [{invariant}]: {details}\n"
            f"  recent phase trace (oldest first):\n{excerpt}"
        )


def sanitize_enabled() -> bool:
    """Is :data:`ENV_FLAG` set to a truthy value?"""
    return os.environ.get(ENV_FLAG, "").strip().lower() in {"1", "true", "yes", "on"}


def sanitizer_from_env() -> Optional["ProtocolSanitizer"]:
    """A fresh sanitizer when :data:`ENV_FLAG` is set, else None."""
    return ProtocolSanitizer() if sanitize_enabled() else None


class ProtocolSanitizer:
    """Checks DES + speculative-protocol invariants as a run executes.

    One instance guards one simulation (attach it to the environment
    via ``env.sanitizer`` and pass it the driver hooks).  All hooks are
    cheap enough for test-suite use; production runs leave the
    sanitizer off (``env.sanitizer is None`` costs one attribute test
    per event).
    """

    #: The ids this seat enforces — derived from the shared registry,
    #: never hand-listed, so sanitizer/specmc/docs cannot drift apart.
    INVARIANTS = sanitizer_invariant_ids()

    def __init__(self, trace_limit: int = 40) -> None:
        self._trace: Deque[str] = deque(maxlen=trace_limit)
        #: Outstanding (rank, src, t) speculations awaiting verification.
        self._outstanding: set[tuple[int, int, int]] = set()
        #: Everything ever speculated (re-speculation during a cascade
        #: legitimately re-registers the same key).
        self._speculated: set[tuple[int, int, int]] = set()
        #: Per-rank last cascade iteration (None = no cascade open).
        self._cascade_last: dict[int, int] = {}
        #: Per (dst_rank, src) last delivered wire sequence number.
        self._last_seq: dict[tuple[int, int], int] = {}
        #: Outstanding (rank, src) -> missing seq retransmit requests
        #: awaiting a healing delivery (``retransmit-bounded``).
        self._open_gaps: dict[tuple[int, int], int] = {}
        #: Per-rank current FW as announced by WindowChanged events
        #: (present only for ranks running an adaptive window policy).
        self._current_fw: dict[int, int] = {}
        self._last_now: float = float("-inf")
        #: Totals, exposed for tests / reporting.
        self.events_checked = 0
        self.checks_passed = 0

    # ----------------------------------------------------------- trace
    def note(self, entry: str) -> None:
        """Append one entry to the phase-trace ring buffer."""
        self._trace.append(entry)

    def trace_excerpt(self) -> list[str]:
        """Current ring-buffer contents (oldest first)."""
        return list(self._trace)

    def _violate(self, invariant: str, details: str) -> None:
        require(invariant)  # ids must come from the shared registry
        raise ProtocolViolation(invariant, details, self.trace_excerpt())

    # ------------------------------------------------------- DES hooks
    def on_event_processed(self, event: object, now: float, prev_now: float) -> None:
        """Called by ``Environment.step`` before callbacks run."""
        self.events_checked += 1
        if now < prev_now:
            self._violate(
                "monotonic-virtual-time",
                f"clock moved backwards: {prev_now} -> {now}",
            )
        if now < self._last_now:
            self._violate(
                "monotonic-virtual-time",
                f"clock moved backwards across steps: {self._last_now} -> {now}",
            )
        self._last_now = now
        triggered = getattr(event, "triggered", True)
        if not triggered:
            self._violate(
                "event-state-machine",
                f"{event!r} reached the calendar without being triggered",
            )
        if getattr(event, "callbacks", ()) is None:
            self._violate(
                "event-state-machine",
                f"{event!r} processed twice (callbacks already consumed)",
            )
        self.checks_passed += 1

    # -------------------------------------------------- protocol hooks
    def on_speculate(self, rank: int, src: int, t: int) -> None:
        """Rank ``rank`` speculated the input from ``src`` at iteration ``t``."""
        self.note(f"rank {rank}: speculate src={src} t={t}")
        self._outstanding.add((rank, src, t))
        self._speculated.add((rank, src, t))

    def on_verify(self, rank: int, src: int, t: int) -> None:
        """Rank ``rank`` verifies the (src, t) speculation."""
        self.note(f"rank {rank}: verify src={src} t={t}")
        if (rank, src, t) not in self._speculated:
            self._violate(
                "verify-without-speculate",
                f"rank {rank} verifying (src={src}, t={t}) which was never "
                "speculated",
            )
        self._outstanding.discard((rank, src, t))

    def on_compute_begin(
        self, rank: int, t: int, verified_upto: int, fw: int
    ) -> None:
        """Rank ``rank`` enters the compute of iteration ``t``."""
        self.note(f"rank {rank}: compute t={t} verified_upto={verified_upto} fw={fw}")
        current = self._current_fw.get(rank)
        if current is not None and fw != current:
            self._violate(
                "window-policy-bound",
                f"rank {rank} computing t={t} gated on fw={fw} but the "
                f"window policy last announced fw={current}: gates must "
                "respect the current window, not a stale one",
            )
        if verified_upto >= t:
            return  # nothing unverified at or before t
        oldest_unverified = verified_upto + 1
        if fw == 0:
            self._violate(
                "forward-window-bound",
                f"rank {rank} computing t={t} with fw=0 but iteration "
                f"{oldest_unverified} unverified (blocking algorithm must "
                "wait)",
            )
        elif t - oldest_unverified > fw:
            self._violate(
                "forward-window-bound",
                f"rank {rank} computing t={t} while oldest unverified "
                f"iteration is {oldest_unverified}: distance "
                f"{t - oldest_unverified} exceeds fw={fw}",
            )

    def on_cascade_begin(self, rank: int, t: int) -> None:
        """A correction cascade repairs iteration ``t`` and opens."""
        self.note(f"rank {rank}: cascade begin t={t}")
        self._cascade_last[rank] = t

    def on_cascade_step(self, rank: int, t: int) -> None:
        """The open cascade recomputes iteration ``t``."""
        self.note(f"rank {rank}: cascade recompute t={t}")
        last = self._cascade_last.get(rank)
        if last is None:
            self._violate(
                "cascade-order",
                f"rank {rank} cascade recompute of t={t} outside any cascade",
            )
        elif t <= last:
            self._violate(
                "cascade-order",
                f"rank {rank} cascade recomputed t={t} after t={last}; "
                "cascades must repair ascending iterations",
            )
        self._cascade_last[rank] = t

    def on_cascade_end(self, rank: int) -> None:
        """The open cascade for ``rank`` finished."""
        self.note(f"rank {rank}: cascade end")
        self._cascade_last.pop(rank, None)

    def on_window_changed(
        self, rank: int, t: int, old_fw: int, new_fw: int,
        min_fw: int, max_fw: int,
    ) -> None:
        """The seated window policy moved ``rank``'s FW
        (``window-policy-bound``)."""
        self.note(
            f"rank {rank}: window t={t} fw {old_fw}->{new_fw} "
            f"bounds=[{min_fw}, {max_fw}]"
        )
        if not min_fw <= new_fw <= max_fw:
            self._violate(
                "window-policy-bound",
                f"rank {rank} window moved to fw={new_fw} outside the "
                f"policy bounds [{min_fw}, {max_fw}]",
            )
        self._current_fw[rank] = new_fw

    def on_ring_occupancy(
        self, rank: int, src: object, occupancy: int, capacity: int
    ) -> None:
        """A history ring on ``rank`` holds ``occupancy`` entries after
        an insert (``buffer-occupancy-bounded``)."""
        self.note(
            f"rank {rank}: ring src={src} occupancy={occupancy}/{capacity}"
        )
        if occupancy > capacity:
            self._violate(
                "buffer-occupancy-bounded",
                f"rank {rank} history ring for src={src} holds "
                f"{occupancy} entries, over its capacity {capacity}: the "
                "backward window no longer bounds memory",
            )

    def on_inbox_depth(
        self, rank: int, src: object, depth: int, bound: int
    ) -> None:
        """Rank ``rank`` has ``depth`` arrived-but-unverified iterations
        from ``src`` (``buffer-occupancy-bounded``)."""
        self.note(f"rank {rank}: inbox src={src} depth={depth}/{bound}")
        if depth > bound:
            self._violate(
                "buffer-occupancy-bounded",
                f"rank {rank} run-ahead backlog from src={src} is "
                f"{depth} iterations, over the FW-derived bound {bound}: "
                "arrivals are outrunning verification unboundedly",
            )

    def on_delivery(self, rank: int, src: int, seq: int) -> None:
        """A transport delivered the ``seq``-th message from ``src`` to
        ``rank``'s engine (``sequence-gap-freedom``)."""
        self.note(f"rank {rank}: deliver src={src} seq={seq}")
        last = self._last_seq.get((rank, src), -1)
        if seq != last + 1:
            self._violate(
                "sequence-gap-freedom",
                f"rank {rank} received seq={seq} from src={src} after "
                f"seq={last}: per-destination sequence numbers must be "
                "delivered gap-free and in order",
            )
        self._last_seq[(rank, src)] = seq

    def on_retransmit(
        self, rank: int, src: int, seq: int, attempt: int, max_attempts: int
    ) -> None:
        """Rank ``rank`` requested retransmission of the missing
        ``seq``-th message from ``src`` (``retransmit-bounded``)."""
        self.note(
            f"rank {rank}: retransmit src={src} seq={seq} "
            f"attempt={attempt}/{max_attempts}"
        )
        if attempt > max_attempts:
            self._violate(
                "retransmit-bounded",
                f"rank {rank} escalated the retransmit of seq={seq} from "
                f"src={src} to attempt {attempt}, over the budget of "
                f"{max_attempts}: a lost message was never recovered",
            )
        self._open_gaps[(rank, src)] = seq

    def on_gap_healed(self, rank: int, src: int, seq: int) -> None:
        """The missing ``seq``-th message from ``src`` finally reached
        ``rank`` — the outstanding retransmit is settled."""
        self.note(f"rank {rank}: gap healed src={src} seq={seq}")
        self._open_gaps.pop((rank, src), None)

    # ---------------------------------------------------------- final
    def on_run_end(self) -> None:
        """Called once the driver finished: no speculation may remain
        unverified and no retransmit may remain unanswered."""
        self.note("run end")
        if self._open_gaps:
            sample = sorted(self._open_gaps.items())[:5]
            self._violate(
                "retransmit-bounded",
                f"{len(self._open_gaps)} retransmit request(s) never "
                f"healed by a delivery (e.g. {sample})",
            )
        if self._outstanding:
            sample = sorted(self._outstanding)[:5]
            self._violate(
                "eventual-verification",
                f"{len(self._outstanding)} speculation(s) never verified "
                f"(e.g. {sample})",
            )

    def __repr__(self) -> str:
        return (
            f"<ProtocolSanitizer events={self.events_checked} "
            f"outstanding={len(self._outstanding)}>"
        )


def run_selftest(verbose: bool = True) -> int:
    """Prove the sanitizer fires: run a clean simulation under it, then
    deliberately violate each driver-level invariant.

    Returns a process exit code (0 = sanitizer behaves as specified).
    """
    failures: list[str] = []

    def expect_violation(invariant: str, thunk: Callable[[], None]) -> None:
        try:
            thunk()
        except ProtocolViolation as exc:
            if exc.invariant != invariant:
                failures.append(
                    f"{invariant}: raised {exc.invariant} instead"
                )
            return
        failures.append(f"{invariant}: violation NOT detected")

    # 1. A clean speculative run under the sanitizer must pass.
    try:
        from repro.core.driver import run_program
        from repro.harness.toys import ConstantProgram
        from repro.netsim import ConstantLatency, DelayNetwork
        from repro.vm import Cluster, uniform_specs

        prog = ConstantProgram(nprocs=3, iterations=6, ops_per_compute=1e3)
        cluster = Cluster(
            uniform_specs(3, capacity=1e3),
            network_factory=lambda env: DelayNetwork(env, ConstantLatency(0.5)),
        )
        result = run_program(prog, cluster, fw=2, sanitize=True)
        if result.iterations != 6:  # pragma: no cover - sanity
            failures.append("clean run: unexpected result")
    except ProtocolViolation as exc:  # pragma: no cover - would be a bug
        failures.append(f"clean run violated {exc.invariant}")

    # 2. Each invariant must fire on a crafted violation.
    def bad_verify() -> None:
        ProtocolSanitizer().on_verify(0, 1, 3)

    def bad_window() -> None:
        ProtocolSanitizer().on_compute_begin(0, t=5, verified_upto=1, fw=2)

    def bad_cascade() -> None:
        san = ProtocolSanitizer()
        san.on_cascade_begin(0, 4)
        san.on_cascade_step(0, 3)

    def bad_clock() -> None:
        san = ProtocolSanitizer()
        san.on_event_processed(object(), now=1.0, prev_now=2.0)

    def bad_seq_gap() -> None:
        san = ProtocolSanitizer()
        san.on_delivery(0, src=1, seq=0)
        san.on_delivery(0, src=1, seq=2)  # seq=1 lost on the wire

    def bad_run_end() -> None:
        san = ProtocolSanitizer()
        san.on_speculate(0, src=1, t=3)
        san.on_run_end()

    def bad_window_policy() -> None:
        san = ProtocolSanitizer()
        san.on_window_changed(0, t=4, old_fw=2, new_fw=3, min_fw=0, max_fw=2)

    def bad_occupancy() -> None:
        san = ProtocolSanitizer()
        san.on_ring_occupancy(0, src=1, occupancy=5, capacity=4)

    def bad_retransmit() -> None:
        san = ProtocolSanitizer()
        san.on_retransmit(0, src=1, seq=2, attempt=5, max_attempts=4)

    expect_violation("verify-without-speculate", bad_verify)
    expect_violation("forward-window-bound", bad_window)
    expect_violation("cascade-order", bad_cascade)
    expect_violation("monotonic-virtual-time", bad_clock)
    expect_violation("sequence-gap-freedom", bad_seq_gap)
    expect_violation("eventual-verification", bad_run_end)
    expect_violation("window-policy-bound", bad_window_policy)
    expect_violation("buffer-occupancy-bounded", bad_occupancy)
    expect_violation("retransmit-bounded", bad_retransmit)

    if verbose:
        if failures:
            for failure in failures:
                print(f"sanitizer selftest FAILED: {failure}")
        else:
            print(
                "sanitizer selftest ok: clean run passed; "
                f"{len(ProtocolSanitizer.INVARIANTS)} invariants armed, "
                "9 crafted violations detected"
            )
    return 1 if failures else 0
