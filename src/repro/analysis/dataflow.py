"""A small forward-dataflow fixpoint engine over specflow CFGs.

Classic worklist algorithm, monotone-framework shape: an analysis
supplies the initial state, a join (least upper bound) and a transfer
function; :func:`solve_forward` iterates to a fixpoint and returns the
state *at entry of* every node (the state after a node is
``transfer(node, entry_state)``).

States must be immutable-ish values with structural equality — the
engine never mutates them, it only joins and compares.  The typestate
analysis uses frozen dict-of-frozenset states; anything hashable or
``==``-comparable works.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, TypeVar

from repro.analysis.cfg import CFG, CFGNode

S = TypeVar("S")

#: Iteration safety valve: |nodes| * this factor bounds worklist pops.
MAX_VISITS_PER_NODE = 64


class ForwardAnalysis(Generic[S]):
    """Base class for forward analyses (subclass and override)."""

    def initial(self) -> S:
        """State at the function entry."""
        raise NotImplementedError

    def bottom(self) -> S:
        """State for not-yet-reached nodes (identity of :meth:`join`)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states (path merge)."""
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        """State after executing ``node`` from ``state``."""
        raise NotImplementedError


def solve_forward(cfg: CFG, analysis: ForwardAnalysis[S]) -> dict[int, S]:
    """Run ``analysis`` over ``cfg`` to fixpoint.

    Returns the entry state of every node uid.  Unreachable nodes keep
    the bottom state.  Termination is guaranteed for finite lattices;
    a visit budget guards against non-monotone transfer bugs (raises
    ``RuntimeError`` rather than spinning).
    """
    entry_state: dict[int, S] = {uid: analysis.bottom() for uid in cfg.nodes}
    entry_state[cfg.entry] = analysis.initial()
    work: deque[int] = deque([cfg.entry])
    reached: set[int] = {cfg.entry}
    budget = max(1, len(cfg.nodes)) * MAX_VISITS_PER_NODE
    pops = 0
    while work:
        pops += 1
        if pops > budget:  # pragma: no cover - defensive
            raise RuntimeError(
                f"dataflow did not converge on {cfg.qualname} "
                f"({len(cfg.nodes)} nodes, {pops} visits)"
            )
        uid = work.popleft()
        out = analysis.transfer(cfg.nodes[uid], entry_state[uid])
        for succ in cfg.nodes[uid].succs:
            joined = analysis.join(entry_state[succ], out)
            # Propagate on a changed state *or* first reachability —
            # with an empty initial state the join can equal bottom,
            # and the successor still has to be visited once.
            if joined != entry_state[succ] or succ not in reached:
                entry_state[succ] = joined
                reached.add(succ)
                if succ not in work:
                    work.append(succ)
    return entry_state


def solve_and_exit(
    cfg: CFG, analysis: ForwardAnalysis[S]
) -> tuple[dict[int, S], S]:
    """:func:`solve_forward` plus the state at the synthetic exit node."""
    states = solve_forward(cfg, analysis)
    return states, states[cfg.exit]


def map_join(
    a: dict[str, frozenset[str]], b: dict[str, frozenset[str]]
) -> dict[str, frozenset[str]]:
    """Pointwise union join for ``name -> set-of-facts`` states.

    The workhorse lattice of the typestate analysis: each variable
    maps to the set of abstract protocol states it may be in; merging
    two paths unions the possibilities.
    """
    if not b:
        return a
    if not a:
        return b
    merged = dict(a)
    for key, facts in b.items():
        have = merged.get(key)
        merged[key] = facts if have is None else (have | facts)
    return merged


JoinFn = Callable[
    [dict[str, frozenset[str]], dict[str, frozenset[str]]],
    dict[str, frozenset[str]],
]
