"""Static message-race detection over a happens-before graph.

The protocol exchanges messages tagged ``(family, iteration)``; the
*family* identifies the conversation (``"vars"``, ``"barrier-in"``,
...).  This pass collects every send/receive **site** in the analysed
sources, resolves each site's tag family (through module-level
constants like ``VARS = "vars"``), and builds a
:class:`HappensBeforeGraph`:

* program-order edges between sites of one function, taken from the
  CFG (two sites in a common loop, or on exclusive branches, are
  *unordered*);
* call-order edges when one function (transitively) calls another;
* communication edges from each send site to every receive site whose
  family can match it.

Two rule families read the graph:

* **SPF110** — an orphaned conversation: a send whose family no
  receive can ever match (message leak), or a receive whose family no
  send produces (guaranteed deadlock on that path).
* **SPF111** — an unordered conflicting pair: two *distinct* send
  sites share a tag family, neither happens-before the other, and an
  ambiguous receive (wildcard tag or wildcard source) can match both —
  so which message the receive consumes depends on delivery timing.
  Same-site sends are exempt: the protocol's iteration sub-tag orders
  those.

The same :class:`HappensBeforeGraph` is reused dynamically by
:mod:`repro.analysis.replay`, where nodes are trace events instead of
source sites — that is what makes static findings checkable against a
recorded run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Hashable, Iterator, Optional

from repro.analysis.cfg import CallGraph, ModuleGraphs, walk_own
from repro.analysis.diagnostics import Diagnostic, Severity, register_spf_rule

register_spf_rule(
    "SPF110",
    "orphaned-tag-family",
    Severity.ERROR,
    "a send whose tag family no receive can match (message leak), or "
    "a receive whose tag family no send produces (deadlock)",
)
register_spf_rule(
    "SPF111",
    "unordered-conflicting-sends",
    Severity.WARNING,
    "two distinct send sites share a tag family, are unordered in the "
    "happens-before graph, and an ambiguous (wildcard) receive can "
    "match either — the consumed message depends on delivery timing",
)

#: Method names treated as message sends / receives.
SEND_METHODS = frozenset({"send", "broadcast"})
RECV_METHODS = frozenset({"recv", "try_recv", "probe"})


@dataclass(frozen=True, order=True)
class CommSite:
    """One send or receive call site."""

    path: str
    qualname: str
    line: int
    col: int
    kind: str                    # "send" | "recv"
    method: str
    family: Optional[str]        # resolved tag family, None = unresolved
    wildcard_tag: bool           # recv with no/None tag
    wildcard_src: bool           # recv with no/None src

    @property
    def key(self) -> tuple[str, str, int, int]:
        return (self.path, self.qualname, self.line, self.col)


class HappensBeforeGraph:
    """Directed graph with reachability queries (HB partial order)."""

    def __init__(self) -> None:
        self._succs: dict[Hashable, set[Hashable]] = {}

    def add_node(self, node: Hashable) -> None:
        self._succs.setdefault(node, set())

    def add_edge(self, a: Hashable, b: Hashable) -> None:
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self._succs[a].add(b)

    def nodes(self) -> list[Hashable]:
        return list(self._succs)

    def ordered(self, a: Hashable, b: Hashable) -> bool:
        """Is there an HB path ``a`` → ``b``?"""
        if a not in self._succs or b not in self._succs:
            return False
        seen: set[Hashable] = set()
        stack = [a]
        while stack:
            cur = stack.pop()
            for nxt in self._succs.get(cur, ()):
                if nxt == b:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def unordered(self, a: Hashable, b: Hashable) -> bool:
        """Neither direction ordered (a true HB race candidate)."""
        return not self.ordered(a, b) and not self.ordered(b, a)

    def edge_count(self) -> int:
        return sum(len(s) for s in self._succs.values())


# --------------------------------------------------------------------------
# site collection
# --------------------------------------------------------------------------


def module_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` string constants."""
    consts: dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant):
            if isinstance(stmt.value.value, str):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        consts[target.id] = stmt.value.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.value, ast.Constant
        ):
            if isinstance(stmt.value.value, str) and isinstance(
                stmt.target, ast.Name
            ):
                consts[stmt.target.id] = stmt.value.value
    return consts


def _resolve_family(
    tag: Optional[ast.expr], consts: dict[str, str]
) -> tuple[Optional[str], bool]:
    """``(family, wildcard)`` for a tag expression."""
    if tag is None:
        return None, True
    if isinstance(tag, ast.Constant):
        if tag.value is None:
            return None, True
        return str(tag.value), False
    if isinstance(tag, ast.Name):
        return consts.get(tag.id), False
    if isinstance(tag, ast.Tuple) and tag.elts:
        head = tag.elts[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value, False
        if isinstance(head, ast.Name):
            return consts.get(head.id), False
    return None, False


def collect_comm_sites(module: ModuleGraphs) -> list[CommSite]:
    """Every send/receive call site of one module, with families."""
    consts = module_constants(module.tree)
    sites: list[CommSite] = []
    for qualname, cfg in sorted(module.cfgs.items()):
        for node in cfg.stmt_nodes():
            assert node.stmt is not None
            for sub in walk_own(node.stmt):
                if not (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                ):
                    continue
                method = sub.func.attr
                if method in SEND_METHODS:
                    kind = "send"
                elif method in RECV_METHODS:
                    kind = "recv"
                else:
                    continue
                tag_kw = next(
                    (kw.value for kw in sub.keywords if kw.arg == "tag"), None
                )
                if kind == "send" and tag_kw is None:
                    continue  # untagged transport internals (pipes etc.)
                family, wildcard_tag = _resolve_family(tag_kw, consts)
                src_kw = next(
                    (kw.value for kw in sub.keywords if kw.arg == "src"), None
                )
                wildcard_src = src_kw is None or (
                    isinstance(src_kw, ast.Constant) and src_kw.value is None
                )
                sites.append(
                    CommSite(
                        path=module.path,
                        qualname=qualname,
                        line=sub.lineno,
                        col=sub.col_offset,
                        kind=kind,
                        method=method,
                        family=family,
                        wildcard_tag=(kind == "recv" and wildcard_tag),
                        wildcard_src=wildcard_src,
                    )
                )
    return sites


# --------------------------------------------------------------------------
# happens-before construction
# --------------------------------------------------------------------------


def _matches(send: CommSite, recv: CommSite) -> bool:
    """Can ``recv`` consume a message from ``send``?"""
    if recv.wildcard_tag:
        return True
    if send.family is None or recv.family is None:
        return False
    return send.family == recv.family


def build_static_hb(
    modules: list[ModuleGraphs], callgraph: CallGraph
) -> tuple[HappensBeforeGraph, list[CommSite]]:
    """HB graph over all comm sites of ``modules``."""
    graph = HappensBeforeGraph()
    all_sites: list[CommSite] = []
    per_function: dict[tuple[str, str], list[CommSite]] = {}
    for module in modules:
        for site in collect_comm_sites(module):
            all_sites.append(site)
            graph.add_node(site.key)
            per_function.setdefault((site.path, site.qualname), []).append(site)

    # Program order within each function (CFG strict ordering).
    for (path, qualname), sites in per_function.items():
        cfg = callgraph.cfg_of((path, qualname))
        if cfg is None:  # pragma: no cover - defensive
            continue
        located: list[tuple[CommSite, int]] = []
        for site in sites:
            uid = None
            for node in cfg.stmt_nodes():
                assert node.stmt is not None
                for sub in walk_own(node.stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and sub.lineno == site.line
                        and sub.col_offset == site.col
                    ):
                        uid = node.uid
                        break
                if uid is not None:
                    break
            if uid is not None:
                located.append((site, uid))
        for i, (site_a, uid_a) in enumerate(located):
            for site_b, uid_b in located[i + 1:]:
                if uid_a == uid_b:
                    continue  # same statement: treat as unordered
                if cfg.strictly_ordered(uid_a, uid_b):
                    graph.add_edge(site_a.key, site_b.key)
                elif cfg.strictly_ordered(uid_b, uid_a):
                    graph.add_edge(site_b.key, site_a.key)

    # Call order: sites of a callee inherit an edge from the caller's
    # sites that strictly precede the call (coarse: caller -> callee).
    for caller in callgraph.functions():
        for callee in callgraph.callees.get(caller, ()):
            for site_a in per_function.get(caller, []):
                for site_b in per_function.get(callee, []):
                    if caller != callee:
                        graph.add_edge(site_a.key, site_b.key)

    # Communication edges: send -> every matching receive.
    sends = [s for s in all_sites if s.kind == "send"]
    recvs = [s for s in all_sites if s.kind == "recv"]
    for send in sends:
        for recv in recvs:
            if _matches(send, recv):
                graph.add_edge(send.key, recv.key)
    return graph, all_sites


# --------------------------------------------------------------------------
# the rules
# --------------------------------------------------------------------------


def _site_diag(site: CommSite, code: str, severity: Severity, message: str) -> Diagnostic:
    return Diagnostic(
        path=site.path,
        line=site.line,
        col=site.col,
        code=code,
        severity=severity,
        message=message,
    )


def check_spf110(sites: list[CommSite]) -> Iterator[Diagnostic]:
    """Orphaned send families / unsatisfiable receives."""
    sends = [s for s in sites if s.kind == "send"]
    recvs = [s for s in sites if s.kind == "recv"]
    for send in sends:
        if send.family is None:
            continue  # unresolved family: cannot judge
        if not any(_matches(send, recv) for recv in recvs):
            yield _site_diag(
                send,
                "SPF110",
                Severity.ERROR,
                f"send with tag family {send.family!r} in {send.qualname} "
                "has no receive that can match it anywhere in the analysed "
                "sources; the message is never consumed",
            )
    known_send_families = {s.family for s in sends if s.family is not None}
    unresolved_sends = any(s.family is None for s in sends)
    for recv in recvs:
        if recv.wildcard_tag or recv.family is None:
            continue
        if recv.family not in known_send_families and not unresolved_sends:
            yield _site_diag(
                recv,
                "SPF110",
                Severity.ERROR,
                f"receive of tag family {recv.family!r} in {recv.qualname} "
                "matches no send in the analysed sources; this receive can "
                "never be satisfied (deadlock on this path)",
            )


def check_spf111(
    graph: HappensBeforeGraph, sites: list[CommSite]
) -> Iterator[Diagnostic]:
    """Unordered conflicting send pairs racing at an ambiguous receive."""
    sends = [s for s in sites if s.kind == "send" and s.family is not None]
    recvs = [s for s in sites if s.kind == "recv"]
    by_family: dict[str, list[CommSite]] = {}
    for send in sends:
        assert send.family is not None
        by_family.setdefault(send.family, []).append(send)
    reported: set[tuple[tuple[str, str, int, int], tuple[str, str, int, int]]] = set()
    for family, family_sends in sorted(by_family.items()):
        if len(family_sends) < 2:
            continue
        ambiguous = [
            r
            for r in recvs
            if (r.wildcard_tag or (r.family == family and r.wildcard_src))
            # Scope to the same module set: a wildcard receive in a
            # different module only races if the modules interact,
            # which the call graph models via the caller edges above.
        ]
        if not ambiguous:
            continue
        ordered_sends = sorted(family_sends)
        for i, a in enumerate(ordered_sends):
            for b in ordered_sends[i + 1:]:
                if a.key == b.key:
                    continue
                if not graph.unordered(a.key, b.key):
                    continue
                pair = (a.key, b.key)
                if pair in reported:
                    continue
                reported.add(pair)
                yield _site_diag(
                    a,
                    "SPF111",
                    Severity.WARNING,
                    f"sends of tag family {family!r} in "
                    f"{a.qualname} and {b.qualname} are unordered "
                    "in the happens-before graph and a wildcard receive can "
                    "match either; which message is consumed depends on "
                    "delivery timing (disambiguate the tag or order the "
                    "sends)",
                )
