"""speclint output formats: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.diagnostics import RULES, Diagnostic, Severity


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """One ``path:line:col: CODE [severity] message`` line per finding,
    followed by a summary line."""
    lines = [diag.format_text() for diag in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = len(diagnostics) - errors
    if diagnostics:
        lines.append(f"speclint: {errors} error(s), {warnings} warning(s)")
    else:
        lines.append("speclint: clean")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Stable JSON document: summary counts plus one record per finding."""
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    payload = {
        "tool": "speclint",
        "rules": {code: rule.summary for code, rule in sorted(RULES.items())},
        "summary": {
            "total": len(diagnostics),
            "errors": errors,
            "warnings": len(diagnostics) - errors,
        },
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(diagnostics: Sequence[Diagnostic], fmt: str = "text") -> str:
    """Render in the requested format (``text`` or ``json``)."""
    if fmt == "json":
        return render_json(diagnostics)
    if fmt == "text":
        return render_text(diagnostics)
    raise ValueError(f"unknown speclint output format {fmt!r}")
