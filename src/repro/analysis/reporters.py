"""speclint output formats: human text and machine JSON.

The scaffolding (text listing + summary line, stable JSON document)
lives in :mod:`repro.analysis.reporting`, shared with specflow, specmc
and specperf; this module binds it to the SPL/SPF/SPP rule catalogue
and keeps the historical entry points.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.diagnostics import (
    RULES,
    SPF_RULES,
    SPP_RULES,
    Diagnostic,
)
from repro.analysis.reporting import render_diag_json, render_diag_text


def _catalogue() -> dict[str, str]:
    """code → summary over every registered rule family."""
    catalogue = {code: rule.summary for code, rule in sorted(RULES.items())}
    catalogue.update(
        (code, info.summary) for code, info in sorted(SPF_RULES.items())
    )
    catalogue.update(
        (code, info.summary) for code, info in sorted(SPP_RULES.items())
    )
    return catalogue


def render_text(
    diagnostics: Sequence[Diagnostic], tool: str = "speclint"
) -> str:
    """One ``path:line:col: CODE [severity] message`` line per finding,
    followed by a summary line."""
    return render_diag_text(diagnostics, tool)


def render_json(
    diagnostics: Sequence[Diagnostic], tool: str = "speclint"
) -> str:
    """Stable JSON document: summary counts plus one record per finding."""
    return render_diag_json(diagnostics, tool, _catalogue())


def render(
    diagnostics: Sequence[Diagnostic],
    fmt: str = "text",
    tool: str = "speclint",
) -> str:
    """Render in the requested format (``text`` or ``json``)."""
    if fmt == "json":
        return render_json(diagnostics, tool)
    if fmt == "text":
        return render_text(diagnostics, tool)
    raise ValueError(f"unknown speclint output format {fmt!r}")
