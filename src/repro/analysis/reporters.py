"""speclint output formats: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.diagnostics import (
    RULES,
    SPF_RULES,
    Diagnostic,
    Severity,
)


def render_text(
    diagnostics: Sequence[Diagnostic], tool: str = "speclint"
) -> str:
    """One ``path:line:col: CODE [severity] message`` line per finding,
    followed by a summary line."""
    lines = [diag.format_text() for diag in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = len(diagnostics) - errors
    if diagnostics:
        lines.append(f"{tool}: {errors} error(s), {warnings} warning(s)")
    else:
        lines.append(f"{tool}: clean")
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic], tool: str = "speclint"
) -> str:
    """Stable JSON document: summary counts plus one record per finding."""
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    catalogue = {code: rule.summary for code, rule in sorted(RULES.items())}
    catalogue.update(
        (code, info.summary) for code, info in sorted(SPF_RULES.items())
    )
    payload = {
        "tool": tool,
        "rules": catalogue,
        "summary": {
            "total": len(diagnostics),
            "errors": errors,
            "warnings": len(diagnostics) - errors,
        },
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(
    diagnostics: Sequence[Diagnostic],
    fmt: str = "text",
    tool: str = "speclint",
) -> str:
    """Render in the requested format (``text`` or ``json``)."""
    if fmt == "json":
        return render_json(diagnostics, tool)
    if fmt == "text":
        return render_text(diagnostics, tool)
    raise ValueError(f"unknown speclint output format {fmt!r}")
