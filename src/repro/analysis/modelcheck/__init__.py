"""specmc — exhaustive interleaving model checker for the sans-I/O
protocol engine.

The static-analysis ladder's semantic rung: speclint checks syntax,
specflow checks dataflow and happens-before, specmc *executes* every
reachable message-delivery/scheduling interleaving of bounded
configurations (p <= 3, FW <= 2, BW <= 2, T <= 4) of real
:class:`~repro.engine.core.SpecEngine` instances and checks the shared
invariant registry (:mod:`repro.analysis.invariants`) in every state.

Entry points:

* :func:`explore` — the search (sleep-set DPOR + fingerprint dedup);
* :func:`shrink_schedule` — ddmin a counterexample schedule;
* :func:`replay_schedule` — deterministic replay (used by generated
  regression tests);
* :func:`emit_trace` / :func:`emit_test` — counterexample to
  ``repro analyze --trace`` JSONL / ready-to-run pytest;
* ``repro mc`` (:mod:`repro.cli`) — the command-line surface.
"""

from repro.analysis.modelcheck.emit import emit_test, emit_trace
from repro.analysis.modelcheck.explorer import (
    Budget,
    McResult,
    ScheduleSample,
    explore,
    random_schedules,
)
from repro.analysis.modelcheck.model import (
    MUTATIONS,
    Action,
    Execution,
    McViolation,
    Mutation,
    ReplayOutcome,
    replay_schedule,
    resolve_mutation,
    schedule_from_json,
    schedule_to_json,
)
from repro.analysis.modelcheck.report import (
    render_json,
    render_sarif_mc,
    render_text,
    report_dict,
)
from repro.analysis.modelcheck.scenario import (
    CASCADES,
    MAX_BW,
    MAX_FW,
    MAX_ITERS,
    MAX_P,
    SCENARIOS,
    ConstantProgram,
    DriftProgram,
    McConfig,
    build_program,
)
from repro.analysis.modelcheck.shrink import shrink_schedule

__all__ = [
    "Action",
    "Budget",
    "CASCADES",
    "ConstantProgram",
    "DriftProgram",
    "Execution",
    "MAX_BW",
    "MAX_FW",
    "MAX_ITERS",
    "MAX_P",
    "MUTATIONS",
    "McConfig",
    "McResult",
    "McViolation",
    "Mutation",
    "ReplayOutcome",
    "SCENARIOS",
    "ScheduleSample",
    "build_program",
    "emit_test",
    "emit_trace",
    "explore",
    "random_schedules",
    "render_json",
    "render_sarif_mc",
    "render_text",
    "replay_schedule",
    "report_dict",
    "resolve_mutation",
    "schedule_from_json",
    "schedule_to_json",
    "shrink_schedule",
]
