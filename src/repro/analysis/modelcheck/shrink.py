"""Counterexample shrinking: delta debugging over the schedule.

The raw counterexample the explorer returns is whatever DFS prefix
first tripped an invariant — typically padded with irrelevant skips
and deliveries.  ``ddmin`` removes chunks of the schedule while the
*same invariant id* still fires under best-effort replay
(:func:`~repro.analysis.modelcheck.model.replay_schedule`: non-enabled
actions are dropped, and the run is completed deterministically once
the schedule runs out).  A candidate therefore "fails" iff schedule +
deterministic completion reproduces the violation — which is exactly
the recipe the emitted regression test replays, so a shrunk schedule
is reproducible by construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.modelcheck.model import (
    Action,
    Mutation,
    replay_schedule,
    resolve_mutation,
)
from repro.analysis.modelcheck.scenario import McConfig

__all__ = ["shrink_schedule"]


def shrink_schedule(
    config: McConfig,
    schedule: Sequence[Action],
    invariant: str,
    mutation: Union[str, Mutation, None] = None,
    max_replays: int = 2000,
) -> Tuple[Action, ...]:
    """1-minimal schedule still violating ``invariant``.

    Classic ddmin (complement reduction with granularity doubling)
    followed by a greedy single-action sweep.  Bounded by
    ``max_replays`` replays; returns the input unchanged if it does
    not reproduce (should not happen for explorer-produced schedules).
    """
    mut = resolve_mutation(mutation)
    replays = 0

    def fails(candidate: Sequence[Action]) -> bool:
        nonlocal replays
        replays += 1
        outcome = replay_schedule(config, candidate, mutation=mut)
        return (
            outcome.violation is not None
            and outcome.violation.invariant == invariant
        )

    current: List[Action] = list(schedule)
    if not fails(current):
        return tuple(schedule)

    granularity = 2
    while len(current) >= 2 and replays < max_replays:
        chunk = max(1, len(current) // granularity)
        chunks = [current[i:i + chunk] for i in range(0, len(current), chunk)]
        reduced: Optional[List[Action]] = None
        for skip_index in range(len(chunks)):
            candidate = [
                action
                for j, part in enumerate(chunks)
                if j != skip_index
                for action in part
            ]
            if fails(candidate):
                reduced = candidate
                break
        if reduced is not None:
            current = reduced
            granularity = max(2, granularity - 1)
        else:
            if chunk == 1:
                break
            granularity = min(len(current), granularity * 2)

    index = 0
    while index < len(current) and replays < max_replays:
        candidate = current[:index] + current[index + 1:]
        if fails(candidate):
            current = candidate
        else:
            index += 1
    return tuple(current)
