"""The explicit-state search: DFS over schedules with sleep sets and
state-fingerprint deduplication.

The search space is the tree of schedule prefixes over
:class:`~repro.analysis.modelcheck.model.Action`\\ s.  Because
generators cannot be snapshotted, the search is *stateless* (replay
based): going deeper extends the one live
:class:`~repro.analysis.modelcheck.model.Execution` by a single
action; backtracking rebuilds it by replaying the (short, bounded)
prefix.  Two reductions keep the bounded configs in CI time:

**Sleep sets** (dynamic partial-order reduction).  Two actions are
independent iff they resume *different* ranks: a delivery pops the
head of one ``(src, dst)`` FIFO and advances only ``dst``; another
rank's action can at most append at some tail, which changes no head
and no enabledness of the first.  (Per-destination FIFO — the
``Send.seq`` discipline — is exactly what makes head-pops commute.)
After exploring action ``a`` at a node, every already-explored sibling
``b`` independent of ``a`` goes into the child's sleep set: the
``b``-then-``a`` interleaving is a permutation of ``a``-then-``b`` and
need not be explored again.  Sleep sets on top of a full enabled-set
expansion are a sound reduction: they only prune transitions provably
leading to already-covered states.

**Fingerprint dedup.**  Different interleavings converge on identical
protocol states; :meth:`Execution.fingerprint` detects that and the
search stops re-expanding.  Combining dedup with sleep sets needs
care (a cached state may have been explored under a *larger* sleep
set): the visited table stores the sleep set each fingerprint was
expanded with, prunes only when the new sleep set is a superset, and
otherwise re-expands under the intersection — the standard sound
composition.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.analysis.modelcheck.model import (
    Action,
    Execution,
    McViolation,
    Mutation,
    resolve_mutation,
)
from repro.analysis.modelcheck.scenario import McConfig

__all__ = ["Budget", "McResult", "ScheduleSample", "explore", "random_schedules"]


@dataclass(frozen=True)
class Budget:
    """Search limits: state count and/or wall seconds."""

    max_states: Optional[int] = None
    max_seconds: Optional[float] = None

    @staticmethod
    def parse(spec: str) -> "Budget":
        """``"60s"`` / ``"2m"`` → seconds; a bare integer → states."""
        text = spec.strip().lower()
        try:
            if text.endswith("ms"):
                return Budget(max_seconds=float(text[:-2]) / 1000.0)
            if text.endswith("s"):
                return Budget(max_seconds=float(text[:-1]))
            if text.endswith("m"):
                return Budget(max_seconds=float(text[:-1]) * 60.0)
            return Budget(max_states=int(text))
        except ValueError:
            raise ValueError(
                f"bad budget {spec!r}: use e.g. '60s', '2m' or a state count"
            ) from None

    def exceeded(self, states: int, elapsed: float) -> bool:
        if self.max_states is not None and states >= self.max_states:
            return True
        if self.max_seconds is not None and elapsed >= self.max_seconds:
            return True
        return False


@dataclass
class McResult:
    """Outcome of one :func:`explore` run."""

    config: McConfig
    mutation: Optional[str]
    explored: int = 0          #: distinct states (by fingerprint)
    deduped: int = 0           #: fingerprint hits (re-expansion avoided)
    sleep_pruned: int = 0      #: transitions removed by sleep sets
    transitions: int = 0       #: actions applied during the search
    executions: int = 0        #: replays performed (root + backtracks)
    max_depth: int = 0         #: longest schedule reached
    exhausted: bool = False    #: True iff the full space was covered
    elapsed: float = 0.0
    violation: Optional[McViolation] = None
    shrunk_schedule: Optional[Tuple[Action, ...]] = None

    @property
    def clean(self) -> bool:
        return self.violation is None

    def counterexample_schedule(self) -> Optional[Tuple[Action, ...]]:
        """The shrunk schedule when available, else the raw one."""
        if self.shrunk_schedule is not None:
            return self.shrunk_schedule
        return self.violation.schedule if self.violation else None


@dataclass
class _Frame:
    schedule: Tuple[Action, ...]
    pending: List[Action]
    explored_here: List[Action] = field(default_factory=list)
    sleep: FrozenSet[Action] = frozenset()


def _independent(a: Action, b: Action) -> bool:
    """Actions commute iff they resume different ranks (see module doc)."""
    return a.rank != b.rank


def explore(
    config: McConfig,
    mutation: Union[str, Mutation, None] = None,
    budget: Optional[Budget] = None,
) -> McResult:
    """Exhaustively search all interleavings of ``config``.

    Stops at the first invariant violation (its schedule is the raw
    counterexample; callers shrink it), on budget exhaustion
    (``exhausted=False``), or after covering the reduced state space
    (``exhausted=True``).
    """
    mut = resolve_mutation(mutation)
    result = McResult(config=config, mutation=mut.name if mut else None)
    started = time.perf_counter()

    def make_execution(schedule: Tuple[Action, ...]) -> Execution:
        ex = Execution(config, mutation=mut)
        for action in schedule:
            ex.apply(action)
        result.executions += 1
        return ex

    #: fingerprint -> sleep set it was last expanded under.
    visited: Dict[bytes, FrozenSet[Action]] = {}

    current = make_execution(())
    current_schedule: Optional[Tuple[Action, ...]] = ()
    if current.violation is None:
        current.check_deadlock()
    if current.violation is not None:
        result.violation = current.violation
        result.elapsed = time.perf_counter() - started
        return result
    visited[current.fingerprint()] = frozenset()
    result.explored = 1
    stack: List[_Frame] = [
        _Frame(schedule=(), pending=current.enabled_actions())
    ]

    while stack:
        result.elapsed = time.perf_counter() - started
        if budget is not None and budget.exceeded(result.explored, result.elapsed):
            return result  # exhausted stays False
        frame = stack[-1]
        if not frame.pending:
            stack.pop()
            continue
        action = frame.pending.pop(0)
        prior = list(frame.explored_here)
        frame.explored_here.append(action)
        if current_schedule != frame.schedule:
            current = make_execution(frame.schedule)
            current_schedule = frame.schedule
        current.apply(action)
        result.transitions += 1
        current_schedule = frame.schedule + (action,)
        result.max_depth = max(result.max_depth, len(current_schedule))
        if current.violation is not None:
            result.violation = current.violation
            result.elapsed = time.perf_counter() - started
            return result
        if not current.is_done and current.check_deadlock() is not None:
            result.violation = current.violation
            result.elapsed = time.perf_counter() - started
            return result

        sleep = frozenset(
            b
            for b in frame.sleep.union(prior)
            if _independent(b, action)
        )
        fingerprint = current.fingerprint()
        recorded = visited.get(fingerprint)
        if recorded is not None:
            if sleep >= recorded:
                result.deduped += 1
                continue
            sleep = frozenset(sleep & recorded)
        visited[fingerprint] = sleep
        if recorded is None:
            result.explored += 1
        if current.is_done:
            continue
        enabled = current.enabled_actions()
        pending = [a for a in enabled if a not in sleep]
        result.sleep_pruned += len(enabled) - len(pending)
        stack.append(
            _Frame(schedule=current_schedule, pending=pending, sleep=sleep)
        )

    result.exhausted = True
    result.elapsed = time.perf_counter() - started
    return result


@dataclass
class ScheduleSample:
    """One complete random-walk execution (for property tests)."""

    schedule: Tuple[Action, ...]
    finals: Dict[int, Any]
    violation: Optional[McViolation]


def random_schedules(
    config: McConfig,
    n: int,
    seed: int = 0,
    mutation: Union[str, Mutation, None] = None,
    max_steps: int = 100_000,
) -> List[ScheduleSample]:
    """``n`` complete executions under uniformly random scheduling.

    Each walk picks uniformly among the enabled actions until every
    rank finishes (or an invariant breaks, when a mutation is
    injected).  The schedules are genuine specmc-explorable paths —
    exactly what the determinism property tests replay.
    """
    rng = random.Random(seed)
    samples: List[ScheduleSample] = []
    for _ in range(n):
        ex = Execution(config, mutation=mutation)
        steps = 0
        while ex.violation is None and not ex.is_done and steps < max_steps:
            actions = ex.enabled_actions()
            if not actions:
                ex.check_deadlock()
                break
            ex.apply(rng.choice(actions))
            steps += 1
        samples.append(
            ScheduleSample(
                schedule=tuple(ex.schedule),
                finals=dict(ex.finals),
                violation=ex.violation,
            )
        )
    return samples
