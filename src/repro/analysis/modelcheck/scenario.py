"""Bounded configurations and scenario programs for specmc.

Model checking is exhaustive, so the programs it drives must be tiny
and *discriminating*: small enough that the full interleaving space of
``p`` engines over ``T`` iterations fits in CI time, rich enough that
every protocol path (speculate, verify, accept, correct, cascade) is
actually taken.  Two scenarios cover the two sides of the check:

``drift``
    Every block changes every iteration, the acceptance threshold is
    0, so *every* speculation is rejected — corrections and cascades
    fire on every resolved speculation.
``constant``
    Blocks never change, so zero-order-hold speculation is exact and
    *every* speculation is accepted — the verify/accept path.

Blocks are plain floats and every kernel is pure integer-free float
arithmetic, so replaying the same schedule is bit-identical and the
state fingerprints in :mod:`repro.analysis.modelcheck.model` are
exact.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from repro.core.program import SyncIterativeProgram
from repro.policy import AimdWindow, WindowPolicy

#: Hard bounds on the checkable configuration space (ISSUE 4 / the
#: docs' state-space model).  Beyond these the explicit-state search
#: stops being a CI-time proposition.
MAX_P = 3
MAX_FW = 2
MAX_BW = 2
MAX_ITERS = 4

SCENARIOS = ("drift", "constant")
CASCADES = ("recompute", "none")
WINDOWS = ("static", "aimd")


@dataclass(frozen=True)
class McConfig:
    """One bounded model-checking configuration.

    Attributes mirror the protocol knobs: ``p`` engines, forward
    window ``fw``, backward window ``bw`` (the HistoryRing capacity is
    ``bw + 2``), ``iters`` iterations, the cascade policy, the window
    policy (``"static"`` keeps FW fixed; ``"aimd"`` seats a
    one-iteration-epoch :class:`~repro.policy.AimdWindow` in every
    engine, with the model supplying the deterministic iteration
    clock) and the scenario program.
    """

    p: int = 2
    fw: int = 1
    bw: int = 1
    iters: int = 3
    cascade: str = "recompute"
    scenario: str = "drift"
    window: str = "static"

    def __post_init__(self) -> None:
        if not 2 <= self.p <= MAX_P:
            raise ValueError(f"p must be in 2..{MAX_P} (got {self.p})")
        if not 0 <= self.fw <= MAX_FW:
            raise ValueError(f"fw must be in 0..{MAX_FW} (got {self.fw})")
        if not 0 <= self.bw <= MAX_BW:
            raise ValueError(f"bw must be in 0..{MAX_BW} (got {self.bw})")
        if not 1 <= self.iters <= MAX_ITERS:
            raise ValueError(
                f"iters must be in 1..{MAX_ITERS} (got {self.iters})"
            )
        if self.cascade not in CASCADES:
            raise ValueError(f"unknown cascade policy {self.cascade!r}")
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}")
        if self.window not in WINDOWS:
            raise ValueError(f"unknown window policy {self.window!r}")

    @property
    def hist_cap(self) -> int:
        """HistoryRing capacity used for every engine."""
        return self.bw + 2

    def window_policy(self) -> Optional[WindowPolicy]:
        """The engine-seated window-policy template, if any.

        ``"aimd"`` uses a one-iteration epoch with bounds ``[0, 2]``
        (the checkable FW range), so widen/shrink decisions happen on
        every iteration and the full window trajectory is explored
        within ``MAX_ITERS``.
        """
        if self.window == "aimd":
            return AimdWindow(epoch=1, min_fw=0, max_fw=MAX_FW)
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverse of ``McConfig(**d)``)."""
        return asdict(self)

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"p={self.p} fw={self.fw} bw={self.bw} iters={self.iters} "
            f"cascade={self.cascade} scenario={self.scenario} "
            f"window={self.window}"
        )


class DriftProgram(SyncIterativeProgram):
    """Every block drifts every iteration; theta = 0.

    Zero-order-hold speculation predicts "unchanged", the blocks never
    are, so every resolved speculation is rejected: the correct +
    cascade machinery runs on every check.  With ``fw <= 1`` the
    protocol's theta = 0 exactness guarantee applies, so the final
    blocks are *schedule-independent* — the anchor fact behind the
    determinism property tests.
    """

    def __init__(self, nprocs: int, iterations: int) -> None:
        super().__init__(nprocs, iterations, threshold=0.0)

    def initial_block(self, rank: int) -> float:
        return float(rank + 1)

    def compute(self, rank: int, inputs: Mapping[int, Any], t: int) -> float:
        total = 0.0
        for k in sorted(inputs):
            total += float(inputs[k])
        return float(inputs[rank]) + 0.5 * total + 1.0

    def compute_ops(self, rank: int) -> float:
        return 10.0

    def block_nbytes(self, rank: int) -> int:
        return 8


class ConstantProgram(SyncIterativeProgram):
    """Blocks never change; theta = 0.

    Zero-order-hold speculation is exact, so every speculation is
    accepted — the verify/accept path of the protocol, with no
    corrections at all.
    """

    def __init__(self, nprocs: int, iterations: int) -> None:
        super().__init__(nprocs, iterations, threshold=0.0)

    def initial_block(self, rank: int) -> float:
        return float(rank + 1)

    def compute(self, rank: int, inputs: Mapping[int, Any], t: int) -> float:
        return float(inputs[rank])

    def compute_ops(self, rank: int) -> float:
        return 10.0

    def block_nbytes(self, rank: int) -> int:
        return 8


def build_program(config: McConfig) -> SyncIterativeProgram:
    """The scenario program for ``config``."""
    if config.scenario == "drift":
        return DriftProgram(config.p, config.iters)
    return ConstantProgram(config.p, config.iters)
