"""specmc reporters: text, JSON and SARIF, matching lint/analyze.

The JSON document is what CI uploads as an artifact (``repro mc
--report FILE``); the SARIF output lets a violation appear in the same
code-scanning UI as speclint/specflow findings, with the invariant id
as the rule id and the shrunk schedule in the result properties.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.invariants import INVARIANTS, specmc_invariant_ids
from repro.analysis.modelcheck.explorer import McResult
from repro.analysis.modelcheck.model import schedule_to_json
from repro.analysis.reporting import render_sarif_document, stable_json

__all__ = ["report_dict", "render_text", "render_json", "render_sarif_mc"]


def result_dict(result: McResult) -> Dict[str, Any]:
    """JSON-ready representation of one explored configuration."""
    data: Dict[str, Any] = {
        "config": result.config.to_dict(),
        "mutation": result.mutation,
        "explored": result.explored,
        "deduped": result.deduped,
        "sleep_pruned": result.sleep_pruned,
        "transitions": result.transitions,
        "executions": result.executions,
        "max_depth": result.max_depth,
        "exhausted": result.exhausted,
        "elapsed_seconds": round(result.elapsed, 4),
        "violation": (
            result.violation.to_dict() if result.violation is not None else None
        ),
    }
    if result.shrunk_schedule is not None:
        data["shrunk_schedule"] = schedule_to_json(result.shrunk_schedule)
    return data


def report_dict(results: Sequence[McResult]) -> Dict[str, Any]:
    """The full ``repro mc`` report document."""
    return {
        "tool": "specmc",
        "invariants": list(specmc_invariant_ids()),
        "runs": [result_dict(r) for r in results],
        "clean": all(r.clean for r in results),
        "exhausted": all(r.exhausted for r in results),
    }


def render_text(results: Sequence[McResult]) -> str:
    """Human-readable summary, one block per configuration."""
    lines: List[str] = []
    for result in results:
        status = (
            "VIOLATION"
            if result.violation is not None
            else ("exhausted" if result.exhausted else "budget-limited")
        )
        lines.append(f"specmc [{result.config.describe()}]: {status}")
        if result.mutation:
            lines.append(f"  mutation      : {result.mutation}")
        lines.append(
            f"  states        : {result.explored} explored, "
            f"{result.deduped} deduped, {result.sleep_pruned} sleep-pruned"
        )
        lines.append(
            f"  transitions   : {result.transitions} applied over "
            f"{result.executions} replays (max depth {result.max_depth})"
        )
        lines.append(f"  elapsed       : {result.elapsed:.3f}s")
        if result.violation is not None:
            lines.append("  counterexample: " + result.violation.describe()
                         .replace("\n", "\n  "))
            if result.shrunk_schedule is not None:
                steps = " ".join(
                    a.describe() for a in result.shrunk_schedule
                ) or "(empty; deterministic completion reproduces)"
                lines.append(
                    f"  shrunk        : {len(result.shrunk_schedule)} "
                    f"action(s): {steps}"
                )
    if all(r.clean for r in results):
        checked = ", ".join(specmc_invariant_ids())
        lines.append(f"specmc: clean ({checked})")
    return "\n".join(lines)


def render_json(results: Sequence[McResult]) -> str:
    """The report document as pretty-printed JSON."""
    return stable_json(report_dict(results))


def _rules() -> List[Dict[str, Any]]:
    rules: List[Dict[str, Any]] = []
    for invariant_id in specmc_invariant_ids():
        inv = INVARIANTS[invariant_id]
        rules.append(
            {
                "id": invariant_id,
                "name": inv.title,
                "shortDescription": {"text": inv.summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return rules


def render_sarif_mc(results: Sequence[McResult]) -> str:
    """SARIF 2.1.0 document; one result per violated invariant."""
    sarif_results: List[Dict[str, Any]] = []
    for result in results:
        violation = result.violation
        if violation is None:
            continue
        schedule = result.counterexample_schedule() or ()
        sarif_results.append(
            {
                "ruleId": violation.invariant,
                "level": "error",
                "message": {
                    "text": (
                        f"[{result.config.describe()}] {violation.details}"
                    )
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": "src/repro/engine/core.py"
                            },
                            "region": {"startLine": 1, "startColumn": 1},
                        }
                    }
                ],
                "properties": {
                    "mutation": result.mutation,
                    "schedule": schedule_to_json(schedule),
                },
            }
        )
    return render_sarif_document("specmc", _rules(), sarif_results)
