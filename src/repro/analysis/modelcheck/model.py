"""specmc's execution model: N sans-I/O engines under an explicit scheduler.

PR 3 made the protocol a pure state machine: ``SpecEngine.run()``
yields a frozen effect alphabet, never touches a clock, and all of a
rank's live state sits in the engine object whenever the generator is
parked at a ``Recv``/``TryRecv``.  That is exactly the shape an
explicit-state model checker needs:

* an :class:`Execution` holds one engine per rank, per-channel FIFO
  queues of undelivered messages, and a fresh
  :class:`~repro.analysis.sanitizer.ProtocolSanitizer` (the runtime
  seat of the shared invariant registry, reused verbatim as the model
  checker's per-execution oracle);
* the *scheduler's* nondeterminism is reified as :class:`Action`
  values — ``deliver`` (hand one queued message to a parked rank) and
  ``skip`` (answer a ``TryRecv`` with "nothing yet", modelling a
  message still in flight);
* every reachable state is a schedule prefix; states are fingerprinted
  (:meth:`Execution.fingerprint`) for deduplication, which is sound
  because a parked generator's continuation is a function of the
  engine fields plus the parked effect alone (the engine has no hidden
  locals that survive a park — see docs/static_analysis.md).

Engine-bug injection for the counterexample pipeline is modelled as
:class:`Mutation`\\ s — each names the registry invariant it must trip,
so the checker can assert its own detection power end to end.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.invariants import require
from repro.analysis.modelcheck.scenario import McConfig, build_program
from repro.analysis.sanitizer import ProtocolSanitizer, ProtocolViolation
from repro.engine.core import SpecEngine, topology
from repro.engine.events import (
    Arrival,
    CascadeBegin,
    CascadeEnd,
    CascadeStep,
    Charge,
    ComputeBegin,
    Corrected,
    IterationDone,
    Recv,
    Retransmit,
    Send,
    Speculated,
    TryRecv,
    Verified,
    WindowChanged,
)
from repro.engine.ring import OutOfOrderArrival

__all__ = [
    "Action",
    "Execution",
    "McViolation",
    "Mutation",
    "MUTATIONS",
    "ReplayOutcome",
    "replay_schedule",
    "resolve_mutation",
    "schedule_from_json",
    "schedule_to_json",
]


# --------------------------------------------------------------------------
# Scheduler actions
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Action:
    """One scheduler decision.

    ``kind == "deliver"``: pop message ``idx`` of channel
    ``(src, rank)`` and resume ``rank``'s parked receive with it
    (``idx > 0`` only under the ``no-seq-floor`` mutation, which lets
    the wire reorder).  ``kind == "skip"``: resume ``rank``'s parked
    ``TryRecv`` with None — the message it might have seen is still in
    flight.  ``rank`` is always the rank that resumes, which is what
    the independence relation keys on.
    """

    kind: str
    rank: int
    src: int = -1
    idx: int = 0

    def to_json(self) -> List[Union[str, int]]:
        return [self.kind, self.rank, self.src, self.idx]

    @staticmethod
    def from_json(data: Sequence[Union[str, int]]) -> "Action":
        kind, rank, src, idx = data
        return Action(str(kind), int(rank), int(src), int(idx))

    def describe(self) -> str:
        if self.kind == "skip":
            return f"skip(rank={self.rank})"
        extra = f", idx={self.idx}" if self.idx else ""
        return f"deliver({self.src}->{self.rank}{extra})"


def schedule_to_json(schedule: Sequence[Action]) -> List[List[Union[str, int]]]:
    """JSON-ready schedule (inverse of :func:`schedule_from_json`)."""
    return [a.to_json() for a in schedule]


def schedule_from_json(
    data: Sequence[Sequence[Union[str, int]]]
) -> Tuple[Action, ...]:
    """Rebuild a schedule serialized by :func:`schedule_to_json`."""
    return tuple(Action.from_json(entry) for entry in data)


# --------------------------------------------------------------------------
# Mutations: injected engine/transport bugs the checker must catch
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Mutation:
    """A deliberate protocol bug plus the registry id it must trip."""

    name: str
    description: str
    expected_invariant: str

    def __post_init__(self) -> None:
        require(self.expected_invariant)


MUTATIONS: Dict[str, Mutation] = {
    m.name: m
    for m in (
        Mutation(
            "ungated-window",
            "disable the engine's pre-/post-send window gates (the "
            "trailing verification loop of Fig. 3 never blocks); "
            "catchable at fw=0, or fw=1 with iters=4",
            "forward-window-bound",
        ),
        Mutation(
            "no-seq-floor",
            "the transport ignores Send.seq: deliveries may take a "
            "later message first and the per-channel gap check is off "
            "— the pre-fix SPF111 stack, where injected jitter could "
            "present one peer's vars stream out of order",
            "history-ring-bound",
        ),
        Mutation(
            "seq-skip",
            "the engine's per-destination stamp skips a number (seq "
            "0 then 2), so a seq-honouring transport delivers a gap",
            "sequence-gap-freedom",
        ),
        Mutation(
            "drop-message",
            "the transport silently drops the first message on the "
            "1->0 channel and never answers the receiver's retransmit "
            "requests; the engine detects the sequence gap and asks, "
            "but the loss is unrecoverable",
            "retransmit-bounded",
        ),
        Mutation(
            "runaway-window",
            "the seated window policy widens unconditionally and "
            "ignores its own max_fw, so the engine's FW escapes the "
            "declared [min_fw, max_fw] bounds within two iterations",
            "window-policy-bound",
        ),
    )
}


def resolve_mutation(
    mutation: Union[str, Mutation, None]
) -> Optional[Mutation]:
    """Normalise a mutation given by name (or None / already built)."""
    if mutation is None or isinstance(mutation, Mutation):
        return mutation
    try:
        return MUTATIONS[mutation]
    except KeyError:
        raise ValueError(
            f"unknown mutation {mutation!r}; known: {sorted(MUTATIONS)}"
        ) from None


class _SeqSkippingEngine(SpecEngine):
    """``seq-skip``: the second stamp on every channel jumps by one."""

    def next_seq(self, dst: int) -> int:
        seq = super().next_seq(dst)
        if seq == 1:
            self._send_seq[dst] = 3
            return 2
        return int(seq)


def _ungated_horizon(engine: SpecEngine, t: int) -> int:
    return -(10**9)


def _ungated_window_ok(engine: SpecEngine, t: int) -> bool:
    return True


class _RunawayWindow:
    """``runaway-window``: widens every iteration, past its own bound."""

    min_fw = 0
    max_fw = 2

    def spawn(self) -> "_RunawayWindow":
        return _RunawayWindow()

    def on_iteration(
        self,
        t: int,
        *,
        fw: int,
        epoch_wait: float,
        checks: int,
        rejects: int,
        now: float,
    ) -> int:
        # Deliberately runaway (no max_fw clamp): this is the broken
        # policy the model checker must catch, not a policy to fix.
        return fw + 1  # specbound: disable=SPB405

    def state(self) -> Tuple[float, ...]:
        return ()


# --------------------------------------------------------------------------
# Violations
# --------------------------------------------------------------------------
@dataclass
class McViolation:
    """A registry invariant broken in one explored interleaving."""

    invariant: str
    details: str
    rank: Optional[int]
    schedule: Tuple[Action, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "details": self.details,
            "rank": self.rank,
            "schedule": schedule_to_json(self.schedule),
        }

    def describe(self) -> str:
        steps = " ".join(a.describe() for a in self.schedule) or "(empty)"
        return (
            f"[{self.invariant}] {self.details}\n"
            f"  schedule ({len(self.schedule)} action(s)): {steps}"
        )


def _digest_block(block: Any) -> str:
    """Exact, hashable digest of an opaque block value."""
    if isinstance(block, np.ndarray):
        h = hashlib.blake2b(digest_size=8)
        h.update(repr((block.dtype.str, block.shape)).encode())
        h.update(block.tobytes())
        return h.hexdigest()
    if isinstance(block, (tuple, list)):
        return repr([_digest_block(b) for b in block])
    return repr(block)


#: One queued wire message: (seq, family, iteration, payload).
_Msg = Tuple[int, str, int, Any]


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------
class Execution:
    """One deterministic run of ``p`` engines under an explicit schedule.

    Construction primes every engine to its first park point; from
    then on the *only* nondeterminism is which :class:`Action` is
    applied next, so a schedule prefix identifies a state exactly.
    Invariant violations (from the sanitizer seat, from the engine's
    own :class:`OutOfOrderArrival`, or from the specmc-only state
    predicates) are captured into :attr:`violation` rather than
    raised, so exploration code stays straight-line.
    """

    def __init__(
        self,
        config: McConfig,
        mutation: Union[str, Mutation, None] = None,
        event_log: Any = None,
    ) -> None:
        self.config = config
        self.mutation = resolve_mutation(mutation)
        self.event_log = event_log
        self.program = build_program(config)
        needed, audience = topology(self.program)

        name = self.mutation.name if self.mutation is not None else None
        engine_cls = _SeqSkippingEngine if name == "seq-skip" else SpecEngine
        gate_kwargs: Dict[str, Any] = {}
        if name == "ungated-window":
            gate_kwargs = {
                "pre_send_horizon": _ungated_horizon,
                "window_ok": _ungated_window_ok,
            }
        #: The pre-fix stacks being modelled had no wire stamps, so the
        #: per-channel gap check is off for them: ``no-seq-floor``
        #: must be caught downstream (HistoryRing), ``drop-message``
        #: by the retransmit-bounded detector.
        self._check_delivery_seq = name not in ("no-seq-floor", "drop-message")
        #: ``no-seq-floor`` models the pre-PR10 unsequenced wire: its
        #: arrivals carry seq=-1, so the engine's gap/stash resilience
        #: stays disarmed and the reorder reaches the HistoryRing.
        self._include_seq = name != "no-seq-floor"
        self._reorder = name == "no-seq-floor"
        self._drop = name == "drop-message"
        policy = (
            _RunawayWindow()
            if name == "runaway-window"
            else config.window_policy()
        )

        self.engines: Dict[int, SpecEngine] = {
            rank: engine_cls(
                self.program,
                rank,
                needed[rank],
                audience[rank],
                fw=config.fw,
                cascade=config.cascade,
                hist_cap=config.hist_cap,
                policy=policy,
                **gate_kwargs,
            )
            for rank in range(config.p)
        }
        self.sanitizer = ProtocolSanitizer()
        #: (src, dst) -> FIFO of undelivered messages.
        self.channels: Dict[Tuple[int, int], Deque[_Msg]] = {}
        self.parked: Dict[int, Any] = {}
        self.finals: Dict[int, Any] = {}
        self.violation: Optional[McViolation] = None
        self.schedule: List[Action] = []
        self.steps = 0
        self.dropped = 0
        self.retransmits = 0
        self._clock = 0
        self._gens = {rank: eng.run() for rank, eng in self.engines.items()}
        for rank in sorted(self._gens):
            if self.violation is None:
                self._advance(rank, None)
        self._check_state()

    # ------------------------------------------------------------ queries
    @property
    def is_done(self) -> bool:
        """Every rank returned its final block (and nothing broke)."""
        return self.violation is None and len(self.finals) == len(self._gens)

    def enabled_actions(self) -> List[Action]:
        """All scheduler actions applicable in the current state."""
        if self.violation is not None:
            return []
        actions: List[Action] = []
        for rank in sorted(self.parked):
            effect = self.parked[rank]
            if isinstance(effect, TryRecv):
                actions.append(Action("skip", rank))
                actions.extend(self._deliveries(rank, None))
            else:  # Recv
                actions.extend(self._deliveries(rank, effect.match))
        return actions

    def _deliveries(
        self, rank: int, match: Optional[Tuple[str, int]]
    ) -> List[Action]:
        out: List[Action] = []
        for src in sorted(self._gens):
            queue = self.channels.get((src, rank))
            if not queue:
                continue
            if match is None:
                out.append(Action("deliver", rank, src, 0))
                if self._reorder and len(queue) >= 2:
                    out.append(Action("deliver", rank, src, 1))
            else:
                family, iteration = match
                for i, (_seq, fam, it, _payload) in enumerate(queue):
                    if fam == family and it == iteration:
                        out.append(Action("deliver", rank, src, i))
                        break
        return out

    def check_deadlock(self) -> Optional[McViolation]:
        """Detect (and record) a terminal state with unfinished ranks."""
        if self.violation is not None or self.is_done:
            return self.violation
        if self.enabled_actions():
            return None
        waiting = {
            rank: type(eff).__name__ for rank, eff in sorted(self.parked.items())
        }
        undelivered = sum(len(q) for q in self.channels.values())
        if self.dropped > 0 and self.retransmits > 0:
            # The wedge is a *diagnosed* loss: the engine detected the
            # gap and requested retransmission, but the transport never
            # answered — the recovery contract, not scheduling, broke.
            self._violate(
                "retransmit-bounded",
                f"{self.retransmits} retransmit request(s) went "
                f"unanswered after {self.dropped} dropped message(s); "
                f"ranks {sorted(self.parked)} are wedged awaiting "
                "recovery (parked: "
                f"{waiting}; undelivered messages: {undelivered})",
                rank=None,
            )
            return self.violation
        self._violate(
            "deadlock-freedom",
            f"no action enabled but ranks {sorted(self.parked)} are "
            f"unfinished (parked: {waiting}; undelivered messages: "
            f"{undelivered}, dropped: {self.dropped})",
            rank=None,
        )
        return self.violation

    # ------------------------------------------------------------ stepping
    def apply(self, action: Action) -> None:
        """Apply one enabled scheduler action (strict: raises if not)."""
        if self.violation is not None:
            raise RuntimeError("execution already violated; cannot step")
        self.steps += 1
        self.schedule.append(action)
        if action.kind == "skip":
            effect = self.parked.get(action.rank)
            if not isinstance(effect, TryRecv):
                raise ValueError(f"{action.describe()} not enabled")
            del self.parked[action.rank]
            self._advance(action.rank, None)
            self._check_state()
            return
        if action.kind != "deliver":
            raise ValueError(f"unknown action kind {action.kind!r}")
        queue = self.channels.get((action.src, action.rank))
        if queue is None or len(queue) <= action.idx:
            raise ValueError(f"{action.describe()} not enabled")
        effect = self.parked.get(action.rank)
        if effect is None:
            raise ValueError(f"{action.describe()}: rank not parked")
        seq, family, iteration, payload = queue[action.idx]
        del queue[action.idx]
        if not queue:
            del self.channels[(action.src, action.rank)]
        del self.parked[action.rank]
        self._record(
            "recv", action.rank, peer=action.src, family=family,
            iteration=iteration,
        )
        if self._check_delivery_seq:
            try:
                self.sanitizer.on_delivery(action.rank, action.src, seq)
            except ProtocolViolation as exc:
                self._violate(exc.invariant, exc.details, rank=action.rank)
                return
        # A delivery resuming a blocking Recv counts one model step of
        # wait — the deterministic analogue of blocked-in-select time,
        # which is what makes window-widening decisions reachable for a
        # seated policy (harmless otherwise: epoch_wait is unread).
        waited = 1.0 if isinstance(effect, Recv) else 0.0
        self._advance(
            action.rank,
            Arrival(
                src=action.src, iteration=iteration, payload=payload,
                waited=waited, seq=seq if self._include_seq else -1,
            ),
        )
        self._check_state()

    def _advance(self, rank: int, response: Optional[Arrival]) -> None:
        """Run ``rank`` until it parks at a receive or finishes."""
        gen = self._gens[rank]
        try:
            while True:
                try:
                    effect = gen.send(response)
                except StopIteration as stop:
                    self.parked.pop(rank, None)
                    self.finals[rank] = stop.value
                    if len(self.finals) == len(self._gens):
                        self.sanitizer.on_run_end()
                    return
                response = None
                kind = type(effect)
                if kind is Send:
                    self._on_send(rank, effect)
                elif kind is Charge:
                    pass  # the model has no clock; costs are not state
                elif kind is Recv or kind is TryRecv:
                    self.parked[rank] = effect
                    return
                else:
                    self._notify(rank, effect)
        except ProtocolViolation as exc:
            self._violate(exc.invariant, exc.details, rank=rank)
        except OutOfOrderArrival as exc:
            self._violate(
                "history-ring-bound",
                f"rank {rank}: HistoryRing rejected a non-increasing "
                f"arrival time ({exc}) — a message overtook its "
                "predecessor on the wire (the SPF111 pattern)",
                rank=rank,
            )

    def _on_send(self, rank: int, effect: Send) -> None:
        self._record(
            "send", rank, peer=effect.dst, family=effect.family,
            iteration=effect.iteration,
        )
        if self._drop and rank == 1 and effect.dst == 0 and effect.seq == 0:
            self.dropped += 1
            return
        self.channels.setdefault((rank, effect.dst), deque()).append(
            (effect.seq, effect.family, effect.iteration, effect.payload)
        )

    # ----------------------------------------------------------- observers
    def _tick(self) -> float:
        self._clock += 1
        return float(self._clock)

    def _record(
        self,
        kind: str,
        rank: int,
        peer: Optional[int] = None,
        family: Optional[str] = None,
        iteration: Optional[int] = None,
    ) -> None:
        if self.event_log is not None:
            self.event_log.record(
                kind, rank, self._tick(), peer=peer, family=family,
                iteration=iteration,
            )

    def _notify(self, rank: int, effect: Any) -> None:
        """Fan one engine event to the sanitizer seat + event log
        (mirrors ``DESTransport._notify``; ProtocolViolation escapes to
        ``_advance``)."""
        san = self.sanitizer
        kind = type(effect)
        if kind is Speculated:
            san.on_speculate(rank, effect.peer, effect.iteration)
            if not effect.in_cascade:
                self._record(
                    "speculate", rank, peer=effect.peer, family="vars",
                    iteration=effect.iteration,
                )
        elif kind is ComputeBegin:
            san.on_compute_begin(
                rank, effect.iteration, effect.verified_upto, effect.fw
            )
            self._record("compute", rank, iteration=effect.iteration)
        elif kind is Verified:
            san.on_verify(rank, effect.peer, effect.iteration)
            self._record(
                "verify", rank, peer=effect.peer, family="vars",
                iteration=effect.iteration,
            )
        elif kind is Corrected:
            self._record(
                "correct", rank, peer=effect.peer, family="vars",
                iteration=effect.iteration,
            )
        elif kind is CascadeBegin:
            san.on_cascade_begin(rank, effect.iteration)
        elif kind is CascadeStep:
            san.on_cascade_step(rank, effect.iteration)
        elif kind is CascadeEnd:
            san.on_cascade_end(rank)
        elif kind is IterationDone:
            # Clock response stays None: the engine falls back to its
            # deterministic iteration clock, so seated policies see
            # bit-identical time on every schedule.
            pass
        elif kind is WindowChanged:
            san.on_window_changed(
                rank, effect.iteration, effect.old_fw, effect.new_fw,
                effect.min_fw, effect.max_fw,
            )
            self._record(
                "window", rank, peer=effect.new_fw,
                iteration=effect.iteration,
            )
        elif kind is Retransmit:
            # The model's transport never retransmits: count the
            # request (check_deadlock's retransmit-bounded evidence)
            # and let the sanitizer seat track the open gap.
            self.retransmits += 1
            san.on_retransmit(
                rank, effect.peer, effect.seq, effect.attempt,
                effect.max_attempts,
            )
            self._record(
                "retransmit", rank, peer=effect.peer, family="vars",
                iteration=effect.seq,
            )

    # ------------------------------------------------------------ checking
    def _violate(
        self, invariant: str, details: str, rank: Optional[int]
    ) -> None:
        require(invariant)
        self.violation = McViolation(
            invariant=invariant,
            details=details,
            rank=rank,
            schedule=tuple(self.schedule),
        )

    def _check_state(self) -> None:
        """specmc-only state predicates (``history-ring-bound``,
        ``window-policy-bound``)."""
        if self.violation is not None:
            return
        for rank, engine in self.engines.items():
            policy = engine.policy
            if policy is not None and not (
                policy.min_fw <= engine.fw <= policy.max_fw
            ):
                self._violate(
                    "window-policy-bound",
                    f"rank {rank}: engine FW {engine.fw} escaped the "
                    f"seated policy's bounds "
                    f"[{policy.min_fw}, {policy.max_fw}]",
                    rank=rank,
                )
                return
            for k, ring in engine.history.items():
                times, _values = ring.series()
                if len(times) > ring.capacity:
                    self._violate(
                        "history-ring-bound",
                        f"rank {rank}: history for peer {k} holds "
                        f"{len(times)} entries, capacity {ring.capacity}",
                        rank=rank,
                    )
                    return
                if any(b <= a for a, b in zip(times, times[1:])):
                    self._violate(
                        "history-ring-bound",
                        f"rank {rank}: history times for peer {k} are "
                        f"not strictly increasing: {list(times)}",
                        rank=rank,
                    )
                    return

    # --------------------------------------------------------- fingerprint
    def fingerprint(self) -> bytes:
        """Exact digest of the protocol-relevant state.

        Sound for dedup because a parked rank's continuation is a
        function of (engine fields, parked effect) only, and future
        *transport* behaviour is a function of the channel contents.
        Excluded on purpose: ``SpecStats`` counters and the schedule
        itself (neither feeds back into protocol decisions), which is
        what lets different interleavings converge.
        """
        h = hashlib.blake2b(digest_size=20)

        def put(*parts: object) -> None:
            h.update(repr(parts).encode())
            h.update(b"\x00")

        for rank in sorted(self._gens):
            if rank in self.finals:
                put("done", rank, _digest_block(self.finals[rank]))
                continue
            effect = self.parked.get(rank)
            if isinstance(effect, TryRecv):
                put("park", rank, "TryRecv")
            elif isinstance(effect, Recv):
                put("park", rank, "Recv", effect.phase, effect.iteration,
                    effect.match)
            else:  # pragma: no cover - every live rank is parked
                put("running", rank)
            eng = self.engines[rank]
            put(eng.frontier, eng.verified_upto, eng.fw)
            for t in sorted(eng.chain):
                put("chain", t, _digest_block(eng.chain[t]))
            for key in sorted(eng.actual):
                put("actual", key, _digest_block(eng.actual[key]))
            for key in sorted(eng.spec_used):
                put("spec", key, _digest_block(eng.spec_used[key]))
            for t in sorted(eng.inputs_used):
                for k in sorted(eng.inputs_used[t]):
                    put("inputs", t, k, _digest_block(eng.inputs_used[t][k]))
            for t in sorted(eng.missing):
                put("missing", t, eng.missing[t])
            for dst in sorted(eng._send_seq):
                put("seq", dst, eng._send_seq[dst])
            # Resilience state: expected next seqs, stashed
            # out-of-order arrivals and open retransmit gaps all feed
            # the continuation once sequenced wires are in play.
            for src in sorted(eng._recv_next):
                put("rnext", src, eng._recv_next[src])
            for src in sorted(eng._recv_stash):
                stash = eng._recv_stash[src]
                put("rstash", src, tuple(
                    (s, stash[s].iteration, _digest_block(stash[s].payload))
                    for s in sorted(stash)
                ))
            for src in sorted(eng._gaps):
                put("rgap", src, tuple(eng._gaps[src]))
            if eng.policy is not None:
                # With a seated policy the adaptation signals *do* feed
                # back into protocol decisions, so they join the state.
                put("policy", eng.epoch_wait, eng.stats.checks,
                    eng.stats.spec_rejected, eng.policy.state())
            for k in sorted(eng.history):
                times, values = eng.history[k].series()
                put("hist", k, tuple(times),
                    tuple(_digest_block(v) for v in values))
        for key in sorted(self.channels):
            queue = self.channels[key]
            put("chan", key,
                tuple((m[0], m[1], m[2], _digest_block(m[3])) for m in queue))
        return h.digest()


# --------------------------------------------------------------------------
# Schedule replay (shrinker, emitted tests, trace emission)
# --------------------------------------------------------------------------
@dataclass
class ReplayOutcome:
    """Result of replaying a (possibly partial) schedule."""

    violation: Optional[McViolation]
    finals: Dict[int, Any]
    applied: int
    skipped: int
    completed: int
    config: McConfig = field(repr=False, default=McConfig())

    @property
    def deadlocked(self) -> bool:
        return (
            self.violation is not None
            and self.violation.invariant == "deadlock-freedom"
        )


def _canonical_key(action: Action) -> Tuple[int, int, int, int]:
    """Deterministic completion order: deliveries first, low ranks first."""
    return (1 if action.kind == "skip" else 0, action.rank, action.src,
            action.idx)


def replay_schedule(
    config: McConfig,
    schedule: Sequence[Action],
    mutation: Union[str, Mutation, None] = None,
    event_log: Any = None,
    strict: bool = False,
    complete: bool = True,
    max_steps: int = 100_000,
) -> ReplayOutcome:
    """Replay ``schedule`` against a fresh :class:`Execution`.

    Best-effort by default: actions no longer enabled (the shrinker
    removes their enablers) are skipped, and after the schedule runs
    out the execution is *completed deterministically* (canonical
    action order) so run-end and deadlock violations still surface.
    ``strict=True`` raises on a non-enabled action instead — the
    explorer's replay-on-backtrack path uses that, since its prefixes
    are enabled by construction.
    """
    ex = Execution(config, mutation=mutation, event_log=event_log)
    applied = skipped = completed = 0
    for action in schedule:
        if ex.violation is not None or ex.is_done:
            break
        if action in ex.enabled_actions():
            ex.apply(action)
            applied += 1
        elif strict:
            raise ValueError(f"schedule action {action.describe()} not enabled")
        else:
            skipped += 1
    if complete:
        while ex.violation is None and not ex.is_done and completed < max_steps:
            actions = ex.enabled_actions()
            if not actions:
                ex.check_deadlock()
                break
            ex.apply(min(actions, key=_canonical_key))
            completed += 1
    return ReplayOutcome(
        violation=ex.violation,
        finals=dict(ex.finals),
        applied=applied,
        skipped=skipped,
        completed=completed,
        config=config,
    )
