"""Diagnostic records and the speclint rule registry.

Every finding produced by a speclint rule is a :class:`Diagnostic`:
an immutable (path, line, col, code, severity, message) record that
reporters serialise and the CLI turns into an exit code.

Rules register themselves in :data:`RULES` via :func:`register_rule`
so the linter, the docs generator, and the test-suite all enumerate
the same canonical set.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator


class Severity(str, enum.Enum):
    """How bad a finding is.  Both severities fail the lint run; the
    distinction is informational (warnings flag heuristic rules)."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One speclint finding at a source location."""

    path: str
    line: int
    col: int
    code: str
    severity: Severity
    message: str

    def format_text(self) -> str:
        """``path:line:col: CODE [severity] message`` (one line)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (see the JSON reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }


#: A rule is a callable: (module AST, path, source) -> iterator of findings.
RuleFn = Callable[[ast.Module, str, str], Iterator[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """A registered speclint rule."""

    code: str
    name: str
    severity: Severity
    summary: str
    check: RuleFn = field(compare=False)


#: Canonical rule registry, keyed by code (SPL001..SPL006).
RULES: dict[str, Rule] = {}


@dataclass(frozen=True)
class RuleInfo:
    """Metadata for a specflow (SPF1xx) rule.

    Unlike speclint's :class:`Rule`, specflow rules are whole-program
    analyses driven by :mod:`repro.analysis.specflow`, not per-module
    callables — the registry records the catalogue (code, severity,
    summary) that reporters, SARIF output and the docs enumerate.
    """

    code: str
    name: str
    severity: Severity
    summary: str


#: specflow rule catalogue, keyed by code (SPF101..SPF111).
SPF_RULES: dict[str, RuleInfo] = {}


def register_spf_rule(
    code: str, name: str, severity: Severity, summary: str
) -> RuleInfo:
    """Register one specflow rule's metadata (idempotence is an error)."""
    if code in SPF_RULES:  # pragma: no cover - programming error
        raise ValueError(f"duplicate specflow rule code {code}")
    info = RuleInfo(code=code, name=name, severity=severity, summary=summary)
    SPF_RULES[code] = info
    return info


def all_spf_codes() -> list[str]:
    """Sorted list of registered specflow rule codes."""
    return sorted(SPF_RULES)


#: specperf rule catalogue, keyed by code (SPP201..SPP208).  Like the
#: SPF registry these are whole-program analyses driven by
#: :mod:`repro.analysis.perf`; the registry records the metadata the
#: reporters, SARIF output and the docs enumerate.
SPP_RULES: dict[str, RuleInfo] = {}


def register_spp_rule(
    code: str, name: str, severity: Severity, summary: str
) -> RuleInfo:
    """Register one specperf rule's metadata (idempotence is an error)."""
    if code in SPP_RULES:  # pragma: no cover - programming error
        raise ValueError(f"duplicate specperf rule code {code}")
    info = RuleInfo(code=code, name=name, severity=severity, summary=summary)
    SPP_RULES[code] = info
    return info


def all_spp_codes() -> list[str]:
    """Sorted list of registered specperf rule codes."""
    return sorted(SPP_RULES)


#: spectaint rule catalogue, keyed by code (SPT301..SPT308).  Like the
#: SPF/SPP registries these are whole-program analyses driven by
#: :mod:`repro.analysis.taint`; the registry records the metadata the
#: reporters, SARIF output and the docs enumerate.
SPT_RULES: dict[str, RuleInfo] = {}


def register_spt_rule(
    code: str, name: str, severity: Severity, summary: str
) -> RuleInfo:
    """Register one spectaint rule's metadata (idempotence is an error)."""
    if code in SPT_RULES:  # pragma: no cover - programming error
        raise ValueError(f"duplicate spectaint rule code {code}")
    info = RuleInfo(code=code, name=name, severity=severity, summary=summary)
    SPT_RULES[code] = info
    return info


def all_spt_codes() -> list[str]:
    """Sorted list of registered spectaint rule codes."""
    return sorted(SPT_RULES)


#: specbound rule catalogue, keyed by code (SPB401..SPB408).  Like the
#: SPF/SPP/SPT registries these are whole-program analyses driven by
#: :mod:`repro.analysis.bounds`; the registry records the metadata the
#: reporters, SARIF output and the docs enumerate.
SPB_RULES: dict[str, RuleInfo] = {}


def register_spb_rule(
    code: str, name: str, severity: Severity, summary: str
) -> RuleInfo:
    """Register one specbound rule's metadata (idempotence is an error)."""
    if code in SPB_RULES:  # pragma: no cover - programming error
        raise ValueError(f"duplicate specbound rule code {code}")
    info = RuleInfo(code=code, name=name, severity=severity, summary=summary)
    SPB_RULES[code] = info
    return info


def all_spb_codes() -> list[str]:
    """Sorted list of registered specbound rule codes."""
    return sorted(SPB_RULES)


def register_rule(
    code: str, name: str, severity: Severity, summary: str
) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering ``fn`` as the checker for ``code``."""

    def wrap(fn: RuleFn) -> RuleFn:
        if code in RULES:  # pragma: no cover - programming error
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(
            code=code, name=name, severity=severity, summary=summary, check=fn
        )
        return fn

    return wrap


def all_rule_codes() -> list[str]:
    """Sorted list of registered rule codes."""
    return sorted(RULES)
