"""Type-state analysis of the speculative protocol state machine.

The protocol's value lifecycle is a state machine::

    send ──▶ recv ──▶ (actual) ─────────────────────▶ commit
                 └──▶ speculate ──▶ compute ──▶ verify ──▶ correct
                          │                        │
                          └── UNVERIFIED ──────────┘

A value produced by a speculator is *unverified* until it has been
checked against the actual arrival; committing it (sending it to
another rank, returning it as a result) before that check is the bug
class the runtime sanitizer can only catch when the bad path actually
executes — this module finds it on **all** paths, statically:

* **SPF101** — a speculated value reaches a commit point
  (``send``/``broadcast`` payload) with no ``check``/``verify`` on
  some path.  Interprocedural: functions that *return* speculated
  values taint their callers through call-graph summaries.
* **SPF102** — a history container that feeds the speculator grows
  without a backward-window trim, so values older than the window can
  be consumed.
* **SPF103** — a correction/recompute loop walks iterations in
  descending order, violating the cascade-rollback ordering that the
  stability results require (corrections must propagate oldest-first).

The SPF101 pass runs on the dataflow engine
(:mod:`repro.analysis.dataflow`) over per-function CFGs
(:mod:`repro.analysis.cfg`); SPF102/SPF103 are syntactic
per-function passes that share the same function inventory.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.cfg import CFG, CallGraph, CFGNode, ModuleGraphs
from repro.analysis.dataflow import ForwardAnalysis, map_join, solve_forward
from repro.analysis.diagnostics import Diagnostic, Severity, register_spf_rule

# ------------------------------------------------------------------ registry

register_spf_rule(
    "SPF101",
    "speculated-value-escapes-unverified",
    Severity.ERROR,
    "a value produced by a speculator can reach a commit point "
    "(send/broadcast payload) without passing a check/verify on some "
    "control-flow path (interprocedural via return-value summaries)",
)
register_spf_rule(
    "SPF102",
    "stale-history-speculation",
    Severity.ERROR,
    "a history container feeding the speculator is appended but never "
    "trimmed to the backward window, so arbitrarily old values can be "
    "consumed by a prediction",
)
register_spf_rule(
    "SPF103",
    "out-of-order-correction",
    Severity.ERROR,
    "a correction/recompute step iterates in descending iteration "
    "order; cascade corrections must repair oldest-first",
)

#: Calls that *produce* speculated values.
SPECULATE_NAMES = frozenset({"speculate", "predict", "extrapolate"})
#: Calls that *verify* speculated values.
CHECK_NAMES = frozenset({"check", "verify"})
#: Calls that *commit* a payload to another rank.
COMMIT_NAMES = frozenset({"send", "broadcast"})
#: Calls that *correct* a rejected speculation.
CORRECT_NAMES = frozenset({"correct"})

#: Abstract facts a variable may carry.
SPEC = "spec"          # may hold an unverified speculated value
VERIFIED = "verified"  # that value has been checked on this path

_EMPTY: frozenset[str] = frozenset()
_SPEC_ONLY: frozenset[str] = frozenset({SPEC})


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _iter_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls in ``stmt``'s *own* expressions.

    Skips nested defs/lambdas (their bodies run later) and nested
    statements (compound statements such as ``for``/``if`` own their
    header expressions only — the body statements are separate CFG
    nodes and would otherwise be visited twice).
    """
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.stmt) and node is not stmt:
            continue  # nested statement: has its own CFG node
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _iter_calls_deep(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls anywhere inside ``stmt`` including nested statements.

    Used where a rule really does want a compound statement's whole
    region (e.g. "a correction call anywhere in this loop's body");
    nested defs/lambdas are still skipped.
    """
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _payload_of(call: ast.Call) -> Optional[ast.expr]:
    """The payload argument of a send/broadcast call, if present."""
    name = _call_name(call)
    if name == "send":
        if len(call.args) > 1:
            return call.args[1]
    elif name == "broadcast":
        if call.args:
            return call.args[0]
    for kw in call.keywords:
        if kw.arg == "payload":
            return kw.value
    return None


# --------------------------------------------------------------------------
# SPF101 — dataflow typestate
# --------------------------------------------------------------------------

State = dict[str, frozenset[str]]


class SpecTaintAnalysis(ForwardAnalysis[State]):
    """Tracks which names may hold unverified speculated values.

    ``summaries`` maps ``(path, qualname)`` to True when that function
    may return an unverified speculated value; calls resolved (by the
    call graph) to such functions taint their assignment targets.
    """

    def __init__(
        self,
        callgraph: Optional[CallGraph] = None,
        path: str = "<string>",
        qualname: str = "",
        summaries: Optional[dict[tuple[str, str], bool]] = None,
    ) -> None:
        self.callgraph = callgraph
        self.path = path
        self.qualname = qualname
        self.summaries = summaries or {}
        self._spec_callees: set[int] = set()
        if callgraph is not None:
            for call, callee in callgraph.calls_in(path, qualname):
                if self.summaries.get(callee):
                    self._spec_callees.add(id(call))

    # ------------------------------------------------------------ lattice
    def initial(self) -> State:
        return {}

    def bottom(self) -> State:
        return {}

    def join(self, a: State, b: State) -> State:
        return map_join(a, b)

    # ----------------------------------------------------------- transfer
    def _facts_of(self, expr: ast.expr, state: State) -> frozenset[str]:
        """Abstract facts carried by the value of ``expr``."""
        if isinstance(expr, ast.Name):
            return state.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name in SPECULATE_NAMES or id(expr) in self._spec_callees:
                return _SPEC_ONLY
            return _EMPTY  # opaque calls launder taint (compute etc.)
        if isinstance(expr, (ast.YieldFrom, ast.Await)):
            return self._facts_of(expr.value, state)
        if isinstance(expr, ast.Subscript):
            return self._facts_of(expr.value, state)
        if isinstance(expr, ast.Starred):
            return self._facts_of(expr.value, state)
        if isinstance(expr, ast.IfExp):
            return self._facts_of(expr.body, state) | self._facts_of(
                expr.orelse, state
            )
        if isinstance(expr, (ast.BinOp,)):
            return self._facts_of(expr.left, state) | self._facts_of(
                expr.right, state
            )
        if isinstance(expr, ast.UnaryOp):
            return self._facts_of(expr.operand, state)
        if isinstance(expr, ast.BoolOp):
            facts = _EMPTY
            for value in expr.values:
                facts |= self._facts_of(value, state)
            return facts
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            facts = _EMPTY
            for elt in expr.elts:
                facts |= self._facts_of(elt, state)
            return facts
        if isinstance(expr, ast.NamedExpr):
            return self._facts_of(expr.value, state)
        return _EMPTY

    def _assign(self, new: State, target: ast.expr, facts: frozenset[str]) -> None:
        if isinstance(target, ast.Name):
            if facts:
                new[target.id] = facts
            else:
                new.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(new, elt, facts)
        elif isinstance(target, ast.Starred):
            self._assign(new, target.value, facts)
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            if facts:
                base = target.value.id
                new[base] = new.get(base, _EMPTY) | facts

    def transfer(self, node: CFGNode, state: State) -> State:
        stmt = node.stmt
        if stmt is None:
            return state
        new = dict(state)
        # 1. check/verify marks its named spec arguments as verified.
        for call in _iter_calls(stmt):
            if _call_name(call) in CHECK_NAMES:
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    if isinstance(arg, ast.Name):
                        facts = new.get(arg.id, _EMPTY)
                        if SPEC in facts:
                            new[arg.id] = facts | {VERIFIED}
        # 2. assignments propagate / launder facts.
        if isinstance(stmt, ast.Assign):
            facts = self._facts_of(stmt.value, new)
            for target in stmt.targets:
                self._assign(new, target, facts)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(new, stmt.target, self._facts_of(stmt.value, new))
        elif isinstance(stmt, ast.AugAssign):
            facts = self._facts_of(stmt.value, new)
            if isinstance(stmt.target, ast.Name):
                merged = new.get(stmt.target.id, _EMPTY) | facts
                if merged:
                    new[stmt.target.id] = merged
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    new.pop(target.id, None)
        return new


def _diag(path: str, node: ast.AST, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        severity=Severity.ERROR,
        message=message,
    )


def _unverified(facts: frozenset[str]) -> bool:
    return SPEC in facts and VERIFIED not in facts


def compute_summaries(callgraph: CallGraph) -> dict[tuple[str, str], bool]:
    """``(path, qualname) -> may return an unverified speculated value``.

    Fixpoint over the call graph: a function is spec-returning if any
    of its ``return`` statements can yield a spec-tainted, unverified
    value, where calls to already-known spec-returning functions count
    as taint sources.
    """
    summaries: dict[tuple[str, str], bool] = {
        key: False for key in callgraph.functions()
    }
    for _ in range(len(summaries) + 1):
        changed = False
        for key in callgraph.functions():
            if summaries[key]:
                continue
            cfg = callgraph.cfg_of(key)
            if cfg is None:  # pragma: no cover - defensive
                continue
            analysis = SpecTaintAnalysis(
                callgraph, path=key[0], qualname=key[1], summaries=summaries
            )
            states = solve_forward(cfg, analysis)
            for node in cfg.stmt_nodes():
                stmt = node.stmt
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    out = analysis.transfer(node, states[node.uid])
                    if _unverified(analysis._facts_of(stmt.value, out)):
                        summaries[key] = True
                        changed = True
                        break
        if not changed:
            break
    return summaries


def check_spf101(
    module: ModuleGraphs,
    callgraph: Optional[CallGraph] = None,
    summaries: Optional[dict[tuple[str, str], bool]] = None,
) -> Iterator[Diagnostic]:
    """Unverified speculated values reaching send/broadcast commits."""
    for qualname, cfg in sorted(module.cfgs.items()):
        analysis = SpecTaintAnalysis(
            callgraph, path=module.path, qualname=qualname, summaries=summaries
        )
        states = solve_forward(cfg, analysis)
        seen: set[tuple[int, int]] = set()
        for node in cfg.stmt_nodes():
            assert node.stmt is not None
            state = states[node.uid]
            for call in _iter_calls(node.stmt):
                if _call_name(call) not in COMMIT_NAMES:
                    continue
                payload = _payload_of(call)
                if not isinstance(payload, ast.Name):
                    continue
                if not _unverified(state.get(payload.id, _EMPTY)):
                    continue
                key = (call.lineno, call.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield _diag(
                    module.path,
                    call,
                    "SPF101",
                    f"speculated value `{payload.id}` reaches "
                    f"`{_call_name(call)}(...)` in {qualname} without a "
                    "check/verify on this path; verify (or correct) before "
                    "committing speculative state to other ranks",
                )


# --------------------------------------------------------------------------
# SPF102 — stale history feeding the speculator
# --------------------------------------------------------------------------


def _subscript_root(expr: ast.expr) -> Optional[str]:
    """Root name of a (possibly nested) subscript chain."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _names_in(expr: ast.expr) -> set[str]:
    return {
        sub.id
        for sub in ast.walk(expr)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def check_spf102(module: ModuleGraphs) -> Iterator[Diagnostic]:
    """History containers appended but never trimmed feed speculate."""
    for qualname, cfg in sorted(module.cfgs.items()):
        appended: set[str] = set()
        trimmed: set[str] = set()
        assigns: list[tuple[str, set[str]]] = []
        spec_calls: list[ast.Call] = []
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            assert stmt is not None
            for call in _iter_calls(stmt):
                name = _call_name(call)
                if name == "append" and isinstance(call.func, ast.Attribute):
                    root = _subscript_root(call.func.value)
                    if root is not None:
                        appended.add(root)
                elif name in ("popleft", "pop", "clear") and isinstance(
                    call.func, ast.Attribute
                ):
                    root = _subscript_root(call.func.value)
                    if root is not None:
                        trimmed.add(root)
                elif name == "deque":
                    # deque(maxlen=...) is self-trimming; credit targets.
                    if any(kw.arg == "maxlen" for kw in call.keywords):
                        trimmed.add("__deque_maxlen__")
                elif name in SPECULATE_NAMES:
                    spec_calls.append(call)
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript):
                        root = _subscript_root(target)
                        if root is not None:
                            trimmed.add(root)
            elif isinstance(stmt, ast.Assign):
                # h = h[-n:]  (slice-reassign trim) and taint tracking.
                value_names = _names_in(stmt.value)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assigns.append((target.id, value_names))
                        if (
                            isinstance(stmt.value, ast.Subscript)
                            and isinstance(stmt.value.slice, ast.Slice)
                            and _subscript_root(stmt.value) == target.id
                        ):
                            trimmed.add(target.id)
        # deque(maxlen=...) anywhere in the function protects every
        # container assigned from a deque call (coarse but safe).
        if "__deque_maxlen__" in trimmed:
            continue
        unbounded = appended - trimmed
        if not unbounded or not spec_calls:
            continue
        # Fixpoint: which names derive from an unbounded container?
        derived: dict[str, set[str]] = {root: {root} for root in unbounded}
        for _ in range(len(assigns) + 1):
            changed = False
            for target, sources in assigns:
                for root, members in derived.items():
                    if target not in members and sources & members:
                        members.add(target)
                        changed = True
            if not changed:
                break
        for call in spec_calls:
            roots: set[str] = set()
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for name in _names_in(arg):
                    for root, members in derived.items():
                        if name in members:
                            roots.add(root)
            for root in sorted(roots):
                yield _diag(
                    module.path,
                    call,
                    "SPF102",
                    f"speculator input derives from history `{root}` which "
                    f"is appended in {qualname} but never trimmed to the "
                    "backward window; values older than the window can be "
                    "consumed (trim with `del h[:-cap]` or use "
                    "deque(maxlen=...))",
                )


# --------------------------------------------------------------------------
# SPF103 — out-of-cascade-order corrections
# --------------------------------------------------------------------------


def _is_descending_iter(expr: ast.expr) -> bool:
    """Does the loop iterable run in descending order?"""
    if isinstance(expr, ast.Call):
        name = _call_name(expr)
        if name == "reversed":
            return True
        if name == "sorted":
            for kw in expr.keywords:
                if (
                    kw.arg == "reverse"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
        if name == "range" and len(expr.args) == 3:
            step = expr.args[2]
            if (
                isinstance(step, ast.UnaryOp)
                and isinstance(step.op, ast.USub)
                and isinstance(step.operand, ast.Constant)
            ):
                return True
            if isinstance(step, ast.Constant) and isinstance(
                step.value, (int, float)
            ) and step.value < 0:
                return True
    return False


def check_spf103(module: ModuleGraphs) -> Iterator[Diagnostic]:
    """Corrections applied newest-first instead of oldest-first."""
    for qualname, cfg in sorted(module.cfgs.items()):
        seen: set[tuple[int, int]] = set()
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if not isinstance(stmt, (ast.For, ast.AsyncFor)):
                continue
            if not _is_descending_iter(stmt.iter):
                continue
            for call in _iter_calls_deep(stmt):
                name = _call_name(call)
                is_correct = name in CORRECT_NAMES
                if not is_correct and name in ("compute", "advance"):
                    is_correct = any(
                        kw.arg == "phase"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value == "correct"
                        for kw in call.keywords
                    )
                if is_correct and (call.lineno, call.col_offset) not in seen:
                    seen.add((call.lineno, call.col_offset))
                    yield _diag(
                        module.path,
                        call,
                        "SPF103",
                        f"correction step inside a descending loop in "
                        f"{qualname}; cascade corrections must repair "
                        "iterations oldest-first (ascending), or later "
                        "recomputes consume still-stale state",
                    )
