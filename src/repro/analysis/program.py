"""One shared parse of the program for every analysis family.

``repro analyze`` and ``repro perf-lint`` each used to re-discover the
files, re-parse every module and rebuild the interprocedural call
graph from scratch; with four analysis families the umbrella ``repro
check`` would have parsed the tree four times.  :class:`ProgramIndex`
is the single cache they now share: files are discovered once, each
parseable file becomes exactly one
:class:`~repro.analysis.cfg.ModuleGraphs` (tree + source + CFGs), the
:class:`~repro.analysis.cfg.CallGraph` is built lazily once, and
syntax errors are recorded per file so every tool can report them
under its own ``xxx000`` code without re-hitting the parser.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.cfg import CallGraph, ModuleGraphs
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.linter import iter_python_files


def syntax_diagnostic(path: str, exc: SyntaxError, code: str) -> Diagnostic:
    """The per-tool unparseable-file finding (SPL000/SPF000/SPP000/SPT000)."""
    return Diagnostic(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        code=code,
        severity=Severity.ERROR,
        message=f"syntax error: {exc.msg}",
    )


class ProgramIndex:
    """Parsed modules + call graph for one set of paths, built once."""

    def __init__(self, paths: Sequence[str | Path]) -> None:
        self.modules: list[ModuleGraphs] = []
        #: ``(path, exception)`` for every unparseable file.
        self.syntax_errors: list[tuple[str, SyntaxError]] = []
        self._callgraph: Optional[CallGraph] = None
        for file_path in iter_python_files(paths):
            source = file_path.read_text(encoding="utf-8")
            try:
                self.modules.append(
                    ModuleGraphs.from_source(source, path=str(file_path))
                )
            except SyntaxError as exc:
                self.syntax_errors.append((str(file_path), exc))

    @property
    def callgraph(self) -> CallGraph:
        """The shared interprocedural call graph (built on first use)."""
        if self._callgraph is None:
            self._callgraph = CallGraph(self.modules)
        return self._callgraph

    @property
    def sources(self) -> dict[str, str]:
        """``path -> source text`` for suppression filtering."""
        return {m.path: m.source for m in self.modules}

    def syntax_diags(self, code: str) -> list[Diagnostic]:
        """Every syntax error as one diagnostic under ``code``."""
        return [
            syntax_diagnostic(path, exc, code)
            for path, exc in self.syntax_errors
        ]
