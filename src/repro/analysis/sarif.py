"""SARIF 2.1.0 output and fingerprint baselines for speclint/specflow.

SARIF (Static Analysis Results Interchange Format) is the lingua
franca code-scanning UIs ingest; emitting it lets CI upload specflow
findings next to any other analyser's.  The document this module
produces is deliberately minimal but valid: one ``run``, the rule
catalogue under ``tool.driver.rules``, one ``result`` per
:class:`~repro.analysis.diagnostics.Diagnostic`.

Baselines ride on the same machinery.  Every diagnostic gets a
*fingerprint* — a stable hash of ``path::code::message`` that survives
unrelated edits moving the finding a few lines — recorded both in the
SARIF ``partialFingerprints`` and in the plain-JSON baseline file CI
checks in.  ``repro analyze --baseline FILE`` drops findings whose
fingerprint the baseline already contains, so the gate only fails on
*new* findings.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.diagnostics import RULES, SPF_RULES, Diagnostic
from repro.analysis.reporting import (
    SARIF_LEVELS as _LEVELS,
    SARIF_SCHEMA,
    SARIF_VERSION,
    render_sarif_document,
    rule_catalogue_entries,
)

__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "render_sarif",
    "write_baseline",
]


def _canonical_path(path: str) -> str:
    """Project-relative POSIX form of a diagnostic path.

    Absolute paths are relativised against the working directory when
    possible so a baseline written by ``repro analyze src/`` in CI
    matches an in-process run that passed absolute paths.
    """
    p = Path(path)
    if p.is_absolute():
        try:
            p = p.relative_to(Path.cwd())
        except ValueError:  # outside the tree: keep absolute
            pass
    return p.as_posix()


def fingerprint(diag: Diagnostic) -> str:
    """Stable identity of a finding: hash of ``path::code::message``.

    Line/column are deliberately excluded so a baseline survives
    unrelated edits above the finding; rule messages are written
    without embedded line numbers for the same reason.
    """
    payload = f"{_canonical_path(diag.path)}::{diag.code}::{diag.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _rule_catalogue() -> list[dict[str, object]]:
    """SARIF rule metadata for every registered SPL + SPF rule."""
    return rule_catalogue_entries(RULES) + rule_catalogue_entries(SPF_RULES)


def _result(diag: Diagnostic) -> dict[str, object]:
    return {
        "ruleId": diag.code,
        "level": _LEVELS[diag.severity],
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path.replace("\\", "/")},
                    "region": {
                        "startLine": max(diag.line, 1),
                        "startColumn": max(diag.col, 0) + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"speclint/v1": fingerprint(diag)},
    }


def render_sarif(
    diagnostics: list[Diagnostic],
    tool_name: str = "specflow",
    rules: list[dict[str, object]] | None = None,
) -> str:
    """One SARIF 2.1.0 document (pretty-printed JSON) for ``diagnostics``.

    ``rules`` overrides the advertised rule catalogue (specperf passes
    its SPP registry; the default is the SPL + SPF catalogue).
    """
    return render_sarif_document(
        tool_name,
        rules if rules is not None else _rule_catalogue(),
        [_result(d) for d in sorted(diagnostics)],
    )


# --------------------------------------------------------------------------
# baselines
# --------------------------------------------------------------------------


def write_baseline(diagnostics: list[Diagnostic], path: str | Path) -> int:
    """Record the fingerprints of ``diagnostics`` as the accepted set."""
    prints = sorted({fingerprint(d) for d in diagnostics})
    payload = {"version": 1, "fingerprints": prints}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(prints)


def load_baseline(path: str | Path) -> frozenset[str]:
    """The fingerprint set a baseline file accepts."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    prints = payload.get("fingerprints", [])
    if not isinstance(prints, list):  # pragma: no cover - defensive
        raise ValueError(f"malformed baseline file {path}")
    return frozenset(str(p) for p in prints)


def apply_baseline(
    diagnostics: list[Diagnostic], accepted: frozenset[str]
) -> list[Diagnostic]:
    """Drop findings whose fingerprint the baseline already accepts."""
    return [d for d in diagnostics if fingerprint(d) not in accepted]
