"""SARIF 2.1.0 output and fingerprint baselines for speclint/specflow.

SARIF (Static Analysis Results Interchange Format) is the lingua
franca code-scanning UIs ingest; emitting it lets CI upload specflow
findings next to any other analyser's.  The document this module
produces is deliberately minimal but valid: one ``run``, the rule
catalogue under ``tool.driver.rules``, one ``result`` per
:class:`~repro.analysis.diagnostics.Diagnostic`.

Baselines ride on the same machinery.  Every diagnostic gets a
*fingerprint* — a stable hash of ``path::code::message`` that survives
unrelated edits moving the finding a few lines — recorded both in the
SARIF ``partialFingerprints`` and in the plain-JSON baseline file CI
checks in.  ``repro analyze --baseline FILE`` drops findings whose
fingerprint the baseline already contains, so the gate only fails on
*new* findings.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.diagnostics import RULES, SPF_RULES, Diagnostic, Severity

#: SARIF schema pinned by this writer.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _canonical_path(path: str) -> str:
    """Project-relative POSIX form of a diagnostic path.

    Absolute paths are relativised against the working directory when
    possible so a baseline written by ``repro analyze src/`` in CI
    matches an in-process run that passed absolute paths.
    """
    p = Path(path)
    if p.is_absolute():
        try:
            p = p.relative_to(Path.cwd())
        except ValueError:  # outside the tree: keep absolute
            pass
    return p.as_posix()


def fingerprint(diag: Diagnostic) -> str:
    """Stable identity of a finding: hash of ``path::code::message``.

    Line/column are deliberately excluded so a baseline survives
    unrelated edits above the finding; rule messages are written
    without embedded line numbers for the same reason.
    """
    payload = f"{_canonical_path(diag.path)}::{diag.code}::{diag.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _rule_catalogue() -> list[dict[str, object]]:
    """SARIF rule metadata for every registered SPL + SPF rule."""
    rules: list[dict[str, object]] = []
    for code in sorted(RULES):
        rule = RULES[code]
        rules.append(
            {
                "id": code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            }
        )
    for code in sorted(SPF_RULES):
        info = SPF_RULES[code]
        rules.append(
            {
                "id": code,
                "name": info.name,
                "shortDescription": {"text": info.summary},
                "defaultConfiguration": {"level": _LEVELS[info.severity]},
            }
        )
    return rules


def _result(diag: Diagnostic) -> dict[str, object]:
    return {
        "ruleId": diag.code,
        "level": _LEVELS[diag.severity],
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path.replace("\\", "/")},
                    "region": {
                        "startLine": max(diag.line, 1),
                        "startColumn": max(diag.col, 0) + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"speclint/v1": fingerprint(diag)},
    }


def render_sarif(
    diagnostics: list[Diagnostic], tool_name: str = "specflow"
) -> str:
    """One SARIF 2.1.0 document (pretty-printed JSON) for ``diagnostics``."""
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": (
                            "https://github.com/repro/speculative-computation"
                        ),
                        "rules": _rule_catalogue(),
                    }
                },
                "results": [_result(d) for d in sorted(diagnostics)],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


# --------------------------------------------------------------------------
# baselines
# --------------------------------------------------------------------------


def write_baseline(diagnostics: list[Diagnostic], path: str | Path) -> int:
    """Record the fingerprints of ``diagnostics`` as the accepted set."""
    prints = sorted({fingerprint(d) for d in diagnostics})
    payload = {"version": 1, "fingerprints": prints}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(prints)


def load_baseline(path: str | Path) -> frozenset[str]:
    """The fingerprint set a baseline file accepts."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    prints = payload.get("fingerprints", [])
    if not isinstance(prints, list):  # pragma: no cover - defensive
        raise ValueError(f"malformed baseline file {path}")
    return frozenset(str(p) for p in prints)


def apply_baseline(
    diagnostics: list[Diagnostic], accepted: frozenset[str]
) -> list[Diagnostic]:
    """Drop findings whose fingerprint the baseline already accepts."""
    return [d for d in diagnostics if fingerprint(d) not in accepted]
