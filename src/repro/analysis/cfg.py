"""Control-flow graphs and the interprocedural call graph for specflow.

The specflow analyses (:mod:`repro.analysis.typestate`,
:mod:`repro.analysis.races`) need to reason about *paths*, not just
syntax: "can a speculated value reach a send without passing a check
on **some** path?" is a reachability question.  This module builds the
graphs those questions are asked over:

* :func:`build_cfg` — a statement-level control-flow graph for one
  function (``if``/loops/``try``/``return``/``break``/``continue``
  modelled; everything else is straight-line).  Precision notes:
  exceptions are approximated by an edge from every statement of a
  ``try`` body to each handler; loop bodies get a back edge, so two
  statements inside one loop are mutually reachable (deliberately —
  that is exactly the "unordered" answer the race analysis wants).
* :class:`ModuleGraphs` — all CFGs of one module, keyed by dotted
  qualname (nested and decorated functions included).
* :class:`CallGraph` — name-based interprocedural edges across a set
  of modules.  Resolution is intentionally simple (a call ``f(...)``
  or ``obj.f(...)`` targets every analysed function whose name is
  ``f``): sound for the package's idioms, cheap enough to run on every
  commit, and honest about being an over-approximation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class CFGNode:
    """One node of a statement-level CFG."""

    uid: int
    stmt: Optional[ast.stmt]
    label: str
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    @property
    def line(self) -> int:
        """Source line of the underlying statement (1 for synthetic)."""
        return getattr(self.stmt, "lineno", 1) if self.stmt is not None else 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CFGNode {self.uid} {self.label} ->{self.succs}>"


class CFG:
    """Statement-level control-flow graph of one function."""

    def __init__(self, func: FunctionNode, qualname: str, path: str) -> None:
        self.func = func
        self.qualname = qualname
        self.path = path
        self.nodes: dict[int, CFGNode] = {}
        self._next_uid = 0
        self.entry = self._new_node(None, "entry").uid
        self.exit = self._new_node(None, "exit").uid

    # -------------------------------------------------------- construction
    def _new_node(self, stmt: Optional[ast.stmt], label: str) -> CFGNode:
        node = CFGNode(uid=self._next_uid, stmt=stmt, label=label)
        self._next_uid += 1
        self.nodes[node.uid] = node
        return node

    def _connect(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    # ------------------------------------------------------------- queries
    def stmt_nodes(self) -> Iterator[CFGNode]:
        """All non-synthetic nodes, uid order."""
        for uid in sorted(self.nodes):
            node = self.nodes[uid]
            if node.stmt is not None:
                yield node

    def node_of(self, stmt: ast.stmt) -> Optional[CFGNode]:
        """The node wrapping ``stmt``, if it is in this CFG."""
        for node in self.nodes.values():
            if node.stmt is stmt:
                return node
        return None

    def reachable_from(self, uid: int) -> set[int]:
        """uids reachable from ``uid`` by one or more edges."""
        seen: set[int] = set()
        stack = list(self.nodes[uid].succs)
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.nodes[cur].succs)
        return seen

    def strictly_ordered(self, a: int, b: int) -> bool:
        """Does every execution reaching ``b`` pass ``a`` first?

        Approximated as: ``b`` is reachable from ``a`` and ``a`` is not
        reachable from ``b`` (nodes in a common loop are *unordered* —
        the conservative answer for race detection).
        """
        return b in self.reachable_from(a) and a not in self.reachable_from(b)

    def __repr__(self) -> str:
        return f"<CFG {self.qualname} nodes={len(self.nodes)}>"


class _Builder:
    """Recursive-descent CFG construction (one function body)."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: Stack of (break targets, continue targets) per enclosing loop.
        self._loops: list[tuple[list[int], list[int]]] = []
        #: Entries of handlers currently able to catch raises.
        self._handlers: list[list[int]] = []

    def build(self) -> None:
        frontier = self._stmts(self.cfg.func.body, [self.cfg.entry])
        for uid in frontier:
            self.cfg._connect(uid, self.cfg.exit)

    # ------------------------------------------------------------ helpers
    def _seal(self, stmt: ast.stmt, label: str, frontier: list[int]) -> CFGNode:
        node = self.cfg._new_node(stmt, label)
        for uid in frontier:
            self.cfg._connect(uid, node.uid)
        # Any statement may raise into an active handler (coarse).
        for handlers in self._handlers:
            for h in handlers:
                self.cfg._connect(node.uid, h)
        return node

    def _stmts(self, body: list[ast.stmt], frontier: list[int]) -> list[int]:
        for stmt in body:
            frontier = self._stmt(stmt, frontier)
        return frontier

    # ---------------------------------------------------------- dispatch
    def _stmt(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        if not frontier:
            return []  # dead code after return/raise/break
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._seal(stmt, "with", frontier)
            return self._stmts(stmt.body, [node.uid])
        if isinstance(stmt, ast.Return):
            node = self._seal(stmt, "return", frontier)
            self.cfg._connect(node.uid, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._seal(stmt, "raise", frontier)
            if not self._handlers:
                self.cfg._connect(node.uid, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            node = self._seal(stmt, "break", frontier)
            if self._loops:
                self._loops[-1][0].append(node.uid)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._seal(stmt, "continue", frontier)
            if self._loops:
                self._loops[-1][1].append(node.uid)
            return []
        # Straight-line statement (incl. nested defs, treated opaquely).
        node = self._seal(stmt, type(stmt).__name__.lower(), frontier)
        return [node.uid]

    def _if(self, stmt: ast.If, frontier: list[int]) -> list[int]:
        cond = self._seal(stmt, "if", frontier)
        then_out = self._stmts(stmt.body, [cond.uid])
        else_out = self._stmts(stmt.orelse, [cond.uid]) if stmt.orelse else [cond.uid]
        return then_out + else_out

    def _loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], frontier: list[int]
    ) -> list[int]:
        head = self._seal(stmt, "loop", frontier)
        breaks: list[int] = []
        continues: list[int] = []
        self._loops.append((breaks, continues))
        body_out = self._stmts(stmt.body, [head.uid])
        self._loops.pop()
        for uid in body_out + continues:
            self.cfg._connect(uid, head.uid)  # back edge
        else_out = self._stmts(stmt.orelse, [head.uid]) if stmt.orelse else [head.uid]
        # Loop may run zero times (While/For) -> fall through from head.
        return else_out + breaks

    def _try(self, stmt: ast.Try, frontier: list[int]) -> list[int]:
        head = self._seal(stmt, "try", frontier)
        handler_entries: list[int] = []
        handler_nodes: list[CFGNode] = []
        for handler in stmt.handlers:
            node = self.cfg._new_node(handler, "except")
            handler_entries.append(node.uid)
            handler_nodes.append(node)
        self._handlers.append(handler_entries)
        body_out = self._stmts(stmt.body, [head.uid])
        self._handlers.pop()
        # A raise anywhere in the body (incl. its first statement) may
        # land in each handler.
        for uid in handler_entries:
            self.cfg._connect(head.uid, uid)
        outs: list[int] = list(body_out)
        for node in handler_nodes:
            assert isinstance(node.stmt, ast.ExceptHandler)
            outs.extend(self._stmts(node.stmt.body, [node.uid]))
        if stmt.orelse:
            outs = self._stmts(stmt.orelse, body_out) + outs[len(body_out):]
        if stmt.finalbody:
            outs = self._stmts(stmt.finalbody, outs)
        return outs


def walk_own(stmt: ast.stmt) -> Iterator[ast.AST]:
    """AST nodes belonging to ``stmt``'s *own* expressions.

    Unlike ``ast.walk`` this prunes (a) nested function/lambda bodies,
    which execute later and have their own CFGs, and (b) nested
    statements, which compound statements (``for``/``if``/``try``)
    contain syntactically but which are separate CFG nodes — walking
    them here would attribute every call in a loop body to the loop
    head as well, double-counting each site.
    """
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.stmt) and node is not stmt:
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def build_cfg(func: FunctionNode, qualname: str = "", path: str = "<string>") -> CFG:
    """Construct the CFG for one function definition."""
    cfg = CFG(func, qualname or func.name, path)
    _Builder(cfg).build()
    return cfg


# --------------------------------------------------------------------------
# module-level collection
# --------------------------------------------------------------------------


def iter_functions_qualified(
    tree: ast.Module,
) -> Iterator[tuple[str, FunctionNode]]:
    """Every function in the module with its dotted qualname.

    Descends into classes, decorated functions, nested and
    async-nested functions — the full closure forest, not just
    top-level ``FunctionDef``\\ s.
    """

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, FunctionNode]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}" if prefix else child.name
                yield qual, child
                yield from walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}{child.name}" if prefix else child.name
                yield from walk(child, f"{qual}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


@dataclass
class ModuleGraphs:
    """All CFGs of one module plus the parsed tree and source."""

    path: str
    tree: ast.Module
    source: str
    cfgs: dict[str, CFG] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "ModuleGraphs":
        """Parse and build every function's CFG (raises SyntaxError)."""
        tree = ast.parse(source, filename=path)
        graphs = cls(path=path, tree=tree, source=source)
        for qual, func in iter_functions_qualified(tree):
            graphs.cfgs[qual] = build_cfg(func, qualname=qual, path=path)
        return graphs


class CallGraph:
    """Name-resolved call edges across a set of :class:`ModuleGraphs`.

    Nodes are ``(path, qualname)`` pairs; an edge caller → callee means
    the caller's body contains a call whose terminal name matches the
    callee's function name.  ``callers``/``callees`` expose both
    directions; :meth:`calls_in` lists the resolved call expressions of
    one function (used to apply interprocedural summaries at call
    sites).
    """

    def __init__(self, modules: list[ModuleGraphs]) -> None:
        self.modules = modules
        #: function name -> [(path, qualname)] of definitions.
        self._by_name: dict[str, list[tuple[str, str]]] = {}
        for mod in modules:
            for qual, cfg in mod.cfgs.items():
                name = qual.rsplit(".", 1)[-1]
                self._by_name.setdefault(name, []).append((mod.path, qual))
        self.callees: dict[tuple[str, str], set[tuple[str, str]]] = {}
        self.callers: dict[tuple[str, str], set[tuple[str, str]]] = {}
        self._call_sites: dict[tuple[str, str], list[tuple[ast.Call, tuple[str, str]]]] = {}
        for mod in modules:
            for qual, cfg in mod.cfgs.items():
                key = (mod.path, qual)
                self.callees.setdefault(key, set())
                self._call_sites.setdefault(key, [])
                for call, callee in self._resolve_calls(cfg):
                    self.callees[key].add(callee)
                    self.callers.setdefault(callee, set()).add(key)
                    self._call_sites[key].append((call, callee))

    def _resolve_calls(
        self, cfg: CFG
    ) -> Iterator[tuple[ast.Call, tuple[str, str]]]:
        for node in cfg.stmt_nodes():
            assert node.stmt is not None
            for sub in walk_own(node.stmt):
                if not isinstance(sub, ast.Call):
                    continue
                name: Optional[str] = None
                if isinstance(sub.func, ast.Name):
                    name = sub.func.id
                elif isinstance(sub.func, ast.Attribute):
                    name = sub.func.attr
                if name is None:
                    continue
                for target in self._by_name.get(name, []):
                    yield sub, target

    def calls_in(self, path: str, qualname: str) -> list[tuple[ast.Call, tuple[str, str]]]:
        """Resolved ``(call expression, callee key)`` pairs of one function."""
        return self._call_sites.get((path, qualname), [])

    def functions(self) -> list[tuple[str, str]]:
        """All ``(path, qualname)`` keys, deterministic order."""
        return sorted(self._call_sites)

    def cfg_of(self, key: tuple[str, str]) -> Optional[CFG]:
        """The CFG behind a call-graph key."""
        for mod in self.modules:
            if mod.path == key[0]:
                return mod.cfgs.get(key[1])
        return None
