"""speclint: protocol-aware static analysis + runtime sanitizer.

Two complementary halves:

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.linter` — an
  AST-based static pass (rules SPL001..SPL006) that catches the
  silent-failure classes specific to this codebase: dropped ``yield
  from``, blocking receives in speculative paths, nondeterminism,
  undisciplined message tags, payload aliasing, and broad excepts
  swallowing :class:`~repro.des.errors.Interrupt`.
* :mod:`repro.analysis.sanitizer` — a runtime
  :class:`ProtocolSanitizer` (opt-in via ``REPRO_SANITIZE=1``) that
  asserts DES and forward-window invariants while a simulation runs.

Entry point: ``repro lint [paths] [--format json] [--sanitize-selftest]``.
"""

from repro.analysis.diagnostics import RULES, Diagnostic, Rule, Severity, all_rule_codes
from repro.analysis.linter import (
    collect_suppressions,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.reporters import render, render_json, render_text
from repro.analysis.sanitizer import (
    ENV_FLAG,
    ProtocolSanitizer,
    ProtocolViolation,
    run_selftest,
    sanitize_enabled,
    sanitizer_from_env,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "Rule",
    "Severity",
    "all_rule_codes",
    "collect_suppressions",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render",
    "render_json",
    "render_text",
    "ENV_FLAG",
    "ProtocolSanitizer",
    "ProtocolViolation",
    "run_selftest",
    "sanitize_enabled",
    "sanitizer_from_env",
]
