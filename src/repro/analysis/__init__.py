"""speclint: protocol-aware static analysis + runtime sanitizer.

Two complementary halves:

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.linter` — an
  AST-based static pass (rules SPL001..SPL006) that catches the
  silent-failure classes specific to this codebase: dropped ``yield
  from``, blocking receives in speculative paths, nondeterminism,
  undisciplined message tags, payload aliasing, and broad excepts
  swallowing :class:`~repro.des.errors.Interrupt`.
* :mod:`repro.analysis.sanitizer` — a runtime
  :class:`ProtocolSanitizer` (opt-in via ``REPRO_SANITIZE=1``) that
  asserts DES and forward-window invariants while a simulation runs.
* :mod:`repro.analysis.specflow` — the interprocedural half (rules
  SPF101..SPF111): per-function CFGs + a call graph feed a type-state
  taint analysis of the speculate→verify→correct state machine and a
  happens-before race analysis of the message-tag families; findings
  render as text, JSON or SARIF.  :mod:`repro.analysis.replay` checks
  the same rules dynamically against a recorded
  :class:`~repro.trace.events.EventLog` so static findings can be
  confirmed or refuted (differential analysis).

* :mod:`repro.analysis.perf` — the cost half (rules SPP201..SPP208):
  phase attribution over the same call graph feeds a hot-path cost
  rule pack, and ``repro perf-lint --trace`` judges the findings
  against the calibrated performance model's per-phase time budget
  (CONFIRMED / REFUTED / UNOBSERVED cost contracts).

* :mod:`repro.analysis.taint` — the escape half (rules
  SPT301..SPT308): forward taint abstract interpretation over the
  same CFGs + call graph proving unconfirmed speculative values never
  reach an irreversible effect (I/O, sends, stores outliving the
  backward window); ``@commits`` / ``# spectaint: commit`` annotate
  legitimate confirmation sites, and ``repro taint --trace`` judges
  findings against a recorded event log.

* :mod:`repro.analysis.bounds` — the memory half (rules
  SPB401..SPB408): interprocedural buffer summaries over the same
  call graph proving every container the protocol grows is bounded by
  a protocol parameter (BW for history, FW for run-ahead state), and
  ``repro bounds --trace`` checks the derived symbolic occupancy
  bounds against a recorded event log's observed maxima.

Entry points: ``repro lint [paths] [--format json]
[--sanitize-selftest]``, ``repro analyze [paths] [--format
text|json|sarif] [--trace LOG]``, ``repro perf-lint [paths] ...``,
``repro taint [paths] ...``, ``repro bounds [paths] ...`` and the
umbrella ``repro check [paths] [--sarif FILE] [--stats]`` running all
five families over one shared parse
(:class:`~repro.analysis.program.ProgramIndex`).
"""

from repro.analysis.diagnostics import (
    RULES,
    SPB_RULES,
    SPF_RULES,
    SPP_RULES,
    SPT_RULES,
    Diagnostic,
    Rule,
    RuleInfo,
    Severity,
    all_rule_codes,
    all_spb_codes,
    all_spf_codes,
    all_spp_codes,
    all_spt_codes,
)
from repro.analysis.linter import (
    collect_suppressions,
    drop_suppressed,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.analysis.program import ProgramIndex, syntax_diagnostic
from repro.analysis.replay import (
    ReplayFinding,
    ReplayReport,
    Verdict,
    cross_reference,
    replay,
)
from repro.analysis.reporters import render, render_json, render_text
from repro.analysis.sarif import (
    apply_baseline,
    fingerprint,
    load_baseline,
    render_sarif,
    write_baseline,
)
from repro.analysis.specflow import analyze_paths, analyze_source

# Imported for the side effect of registering the SPP, SPT and SPB
# rule catalogues, so the shared reporters' rule listing is
# import-order independent.
from repro.analysis.perf import rules as _spp_rules  # noqa: F401
from repro.analysis.taint import rules as _spt_rules  # noqa: F401
from repro.analysis.bounds import rules as _spb_rules  # noqa: F401
from repro.analysis.sanitizer import (
    ENV_FLAG,
    ProtocolSanitizer,
    ProtocolViolation,
    run_selftest,
    sanitize_enabled,
    sanitizer_from_env,
)

__all__ = [
    "RULES",
    "SPB_RULES",
    "SPF_RULES",
    "SPP_RULES",
    "SPT_RULES",
    "Diagnostic",
    "ProgramIndex",
    "Rule",
    "RuleInfo",
    "Severity",
    "all_rule_codes",
    "all_spb_codes",
    "all_spf_codes",
    "all_spp_codes",
    "all_spt_codes",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "cross_reference",
    "fingerprint",
    "load_baseline",
    "render_sarif",
    "replay",
    "write_baseline",
    "ReplayFinding",
    "ReplayReport",
    "Verdict",
    "collect_suppressions",
    "drop_suppressed",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "syntax_diagnostic",
    "render",
    "render_json",
    "render_text",
    "ENV_FLAG",
    "ProtocolSanitizer",
    "ProtocolViolation",
    "run_selftest",
    "sanitize_enabled",
    "sanitizer_from_env",
]
