"""speclint: protocol-aware static analysis + runtime sanitizer.

Two complementary halves:

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.linter` — an
  AST-based static pass (rules SPL001..SPL006) that catches the
  silent-failure classes specific to this codebase: dropped ``yield
  from``, blocking receives in speculative paths, nondeterminism,
  undisciplined message tags, payload aliasing, and broad excepts
  swallowing :class:`~repro.des.errors.Interrupt`.
* :mod:`repro.analysis.sanitizer` — a runtime
  :class:`ProtocolSanitizer` (opt-in via ``REPRO_SANITIZE=1``) that
  asserts DES and forward-window invariants while a simulation runs.
* :mod:`repro.analysis.specflow` — the interprocedural half (rules
  SPF101..SPF111): per-function CFGs + a call graph feed a type-state
  taint analysis of the speculate→verify→correct state machine and a
  happens-before race analysis of the message-tag families; findings
  render as text, JSON or SARIF.  :mod:`repro.analysis.replay` checks
  the same rules dynamically against a recorded
  :class:`~repro.trace.events.EventLog` so static findings can be
  confirmed or refuted (differential analysis).

* :mod:`repro.analysis.perf` — the cost half (rules SPP201..SPP208):
  phase attribution over the same call graph feeds a hot-path cost
  rule pack, and ``repro perf-lint --trace`` judges the findings
  against the calibrated performance model's per-phase time budget
  (CONFIRMED / REFUTED / UNOBSERVED cost contracts).

Entry points: ``repro lint [paths] [--format json]
[--sanitize-selftest]``, ``repro analyze [paths] [--format
text|json|sarif] [--trace LOG]`` and ``repro perf-lint [paths]
[--format text|json|sarif] [--trace LOG]``.
"""

from repro.analysis.diagnostics import (
    RULES,
    SPF_RULES,
    SPP_RULES,
    Diagnostic,
    Rule,
    RuleInfo,
    Severity,
    all_rule_codes,
    all_spf_codes,
    all_spp_codes,
)
from repro.analysis.linter import (
    collect_suppressions,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.replay import (
    ReplayFinding,
    ReplayReport,
    Verdict,
    cross_reference,
    replay,
)
from repro.analysis.reporters import render, render_json, render_text
from repro.analysis.sarif import (
    apply_baseline,
    fingerprint,
    load_baseline,
    render_sarif,
    write_baseline,
)
from repro.analysis.specflow import analyze_paths, analyze_source

# Imported for the side effect of registering the SPP rule catalogue,
# so the shared reporters' rule listing is import-order independent.
from repro.analysis.perf import rules as _spp_rules  # noqa: F401
from repro.analysis.sanitizer import (
    ENV_FLAG,
    ProtocolSanitizer,
    ProtocolViolation,
    run_selftest,
    sanitize_enabled,
    sanitizer_from_env,
)

__all__ = [
    "RULES",
    "SPF_RULES",
    "SPP_RULES",
    "Diagnostic",
    "Rule",
    "RuleInfo",
    "Severity",
    "all_rule_codes",
    "all_spf_codes",
    "all_spp_codes",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "cross_reference",
    "fingerprint",
    "load_baseline",
    "render_sarif",
    "replay",
    "write_baseline",
    "ReplayFinding",
    "ReplayReport",
    "Verdict",
    "collect_suppressions",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render",
    "render_json",
    "render_text",
    "ENV_FLAG",
    "ProtocolSanitizer",
    "ProtocolViolation",
    "run_selftest",
    "sanitize_enabled",
    "sanitizer_from_env",
]
