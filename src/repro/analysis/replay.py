"""Trace replay: check recorded runs against the protocol HB model.

The static half of specflow (:mod:`repro.analysis.races`,
:mod:`repro.analysis.typestate`) reasons about *source sites*; this
module applies the same happens-before discipline to a *recorded
execution* — an :class:`~repro.trace.events.EventLog` produced by the
simulator or the multiprocessing backend.  Each event becomes a node
in the shared :class:`~repro.analysis.races.HappensBeforeGraph`:

* per-rank program order: ``(rank, seq)`` → ``(rank, seq + 1)``;
* message order: each send is matched to the receive that consumed it
  (same ``(src, dst, family, iteration)``, earliest unconsumed first)
  and contributes a cross-rank edge.

On top of the dynamic graph the replay runs the *dynamic mirrors* of
the SPF rules (same codes, so a static finding and its runtime
witness line up):

* **SPF101** — a speculation never verified before the run ended;
* **SPF102** — a speculation whose source iteration lags the rank's
  compute frontier by more than the backward window;
* **SPF103** — corrections applied in descending iteration order;
* **SPF110** — sends never received / receives never fed by a send;
* **SPF111** — message overtaking: two same-family sends from one
  rank to one peer received in the opposite order.

Finally :func:`cross_reference` joins a static diagnostic list with a
replay report: every SPF code is marked *confirmed* (the trace
exhibits the behaviour), *refuted* (the trace exercised the code's
behaviour and stayed clean) or *unobserved* (the trace never reached
it) — the differential-analysis verdict ``repro analyze --trace``
prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.races import HappensBeforeGraph
from repro.trace.events import EventLog, TraceEvent

#: Default backward window used by the dynamic SPF102 mirror when the
#: caller does not pass the run's actual ``--bw``.
DEFAULT_BACKWARD_WINDOW = 4


@dataclass(frozen=True, order=True)
class ReplayFinding:
    """One protocol violation witnessed in a recorded trace."""

    code: str          # SPF1xx, aligned with the static rule catalogue
    rank: int
    seq: int
    message: str

    def format_text(self) -> str:
        return f"trace rank {self.rank} seq {self.seq}: {self.code} {self.message}"


@dataclass(frozen=True)
class Verdict:
    """Differential-analysis verdict for one static rule code."""

    code: str
    status: str        # "confirmed" | "refuted" | "unobserved"
    detail: str

    def format_text(self) -> str:
        return f"{self.code}: {self.status} — {self.detail}"


@dataclass
class ReplayReport:
    """Everything the trace replay learned from one event log."""

    graph: HappensBeforeGraph
    findings: list[ReplayFinding] = field(default_factory=list)
    matched_messages: int = 0
    unmatched_sends: int = 0
    unmatched_recvs: int = 0
    stats: dict[str, int] = field(default_factory=dict)

    def codes(self) -> set[str]:
        return {f.code for f in self.findings}


def event_key(ev: TraceEvent) -> tuple[int, int]:
    """Graph-node identity of one event: ``(rank, seq)``."""
    return (ev.rank, ev.seq)


# --------------------------------------------------------------------------
# dynamic happens-before construction
# --------------------------------------------------------------------------


def match_messages(
    log: EventLog,
) -> tuple[list[tuple[TraceEvent, TraceEvent]], list[TraceEvent], list[TraceEvent]]:
    """Pair each send with the receive that consumed it.

    Matching key is ``(src, dst, family, iteration)``; within a key,
    sends and receives pair FIFO (the transports preserve per-pair
    order, and the iteration sub-tag disambiguates the rest).  Returns
    ``(pairs, unmatched_sends, unmatched_recvs)``.
    """
    pending: dict[
        tuple[int, Optional[int], Optional[str], Optional[int]],
        list[TraceEvent],
    ] = {}
    for ev in log.of_kind("send"):
        key = (ev.rank, ev.peer, ev.family, ev.iteration)
        pending.setdefault(key, []).append(ev)
    pairs: list[tuple[TraceEvent, TraceEvent]] = []
    unmatched_recvs: list[TraceEvent] = []
    for ev in log.of_kind("recv"):
        key = (
            ev.peer if ev.peer is not None else -1,
            ev.rank,
            ev.family,
            ev.iteration,
        )
        queue = pending.get(key)
        if queue:
            pairs.append((queue.pop(0), ev))
        else:
            unmatched_recvs.append(ev)
    unmatched_sends = [ev for queue in pending.values() for ev in queue]
    return pairs, sorted(unmatched_sends), unmatched_recvs


def build_dynamic_hb(
    log: EventLog,
) -> tuple[HappensBeforeGraph, ReplayReport]:
    """The dynamic HB graph of one recorded run (plus match stats)."""
    graph = HappensBeforeGraph()
    for rank in log.ranks():
        events = log.for_rank(rank)
        for ev in events:
            graph.add_node(event_key(ev))
        for prev, nxt in zip(events, events[1:]):
            graph.add_edge(event_key(prev), event_key(nxt))
    pairs, unmatched_sends, unmatched_recvs = match_messages(log)
    for send, recv in pairs:
        graph.add_edge(event_key(send), event_key(recv))
    report = ReplayReport(
        graph=graph,
        matched_messages=len(pairs),
        unmatched_sends=len(unmatched_sends),
        unmatched_recvs=len(unmatched_recvs),
    )
    return graph, report


# --------------------------------------------------------------------------
# dynamic rule mirrors
# --------------------------------------------------------------------------


def _check_unverified_speculations(log: EventLog) -> Iterator[ReplayFinding]:
    """SPF101 mirror: speculate events never followed by verify/correct."""
    for rank in log.ranks():
        events = log.for_rank(rank)
        open_specs: dict[tuple[Optional[int], Optional[int]], TraceEvent] = {}
        for ev in events:
            key = (ev.peer, ev.iteration)
            if ev.kind == "speculate":
                open_specs[key] = ev
            elif ev.kind in ("verify", "correct"):
                open_specs.pop(key, None)
        for ev in sorted(open_specs.values()):
            yield ReplayFinding(
                code="SPF101",
                rank=ev.rank,
                seq=ev.seq,
                message=(
                    f"speculated input from rank {ev.peer} for iteration "
                    f"{ev.iteration} was never verified before the run "
                    "ended; its effects committed unchecked"
                ),
            )


def _check_stale_speculations(
    log: EventLog, backward_window: int
) -> Iterator[ReplayFinding]:
    """SPF102 mirror: speculation source older than the backward window."""
    for rank in log.ranks():
        frontier: Optional[int] = None  # latest compute iteration seen
        for ev in log.for_rank(rank):
            if ev.kind == "compute" and ev.iteration is not None:
                if frontier is None or ev.iteration > frontier:
                    frontier = ev.iteration
            elif (
                ev.kind == "speculate"
                and ev.iteration is not None
                and frontier is not None
                and frontier - ev.iteration > backward_window
            ):
                yield ReplayFinding(
                    code="SPF102",
                    rank=ev.rank,
                    seq=ev.seq,
                    message=(
                        f"speculation for iteration {ev.iteration} ran while "
                        f"the compute frontier was at {frontier} — "
                        f"{frontier - ev.iteration} iterations back, beyond "
                        f"the backward window of {backward_window}"
                    ),
                )


def _check_correction_order(log: EventLog) -> Iterator[ReplayFinding]:
    """SPF103 mirror: a correction cascade applied in descending order."""
    for rank in log.ranks():
        prev: Optional[TraceEvent] = None
        for ev in log.for_rank(rank):
            if ev.kind != "correct":
                prev = None if ev.kind == "verify" else prev
                continue
            if (
                prev is not None
                and prev.iteration is not None
                and ev.iteration is not None
                and ev.iteration < prev.iteration
            ):
                yield ReplayFinding(
                    code="SPF103",
                    rank=ev.rank,
                    seq=ev.seq,
                    message=(
                        f"correction for iteration {ev.iteration} applied "
                        f"after the correction for {prev.iteration}; the "
                        "cascade must repair oldest-first or later repairs "
                        "recompute from unrepaired state"
                    ),
                )
            prev = ev


def _check_unmatched_messages(
    log: EventLog, report: ReplayReport
) -> Iterator[ReplayFinding]:
    """SPF110 mirror: sends never consumed / receives never fed."""
    pairs, unmatched_sends, unmatched_recvs = match_messages(log)
    del pairs
    for ev in unmatched_sends:
        yield ReplayFinding(
            code="SPF110",
            rank=ev.rank,
            seq=ev.seq,
            message=(
                f"send to rank {ev.peer} (family {ev.family!r}, iteration "
                f"{ev.iteration}) was never received; the message leaked"
            ),
        )
    for ev in unmatched_recvs:
        yield ReplayFinding(
            code="SPF110",
            rank=ev.rank,
            seq=ev.seq,
            message=(
                f"receive from rank {ev.peer} (family {ev.family!r}, "
                f"iteration {ev.iteration}) matches no recorded send"
            ),
        )


def _check_message_overtaking(log: EventLog) -> Iterator[ReplayFinding]:
    """SPF111 mirror: same-channel messages received out of send order."""
    pairs, _, _ = match_messages(log)
    by_channel: dict[
        tuple[int, int, Optional[str]], list[tuple[TraceEvent, TraceEvent]]
    ] = {}
    for send, recv in pairs:
        channel = (send.rank, recv.rank, send.family)
        by_channel.setdefault(channel, []).append((send, recv))
    for channel, channel_pairs in sorted(
        by_channel.items(), key=lambda item: (item[0][0], item[0][1])
    ):
        channel_pairs.sort(key=lambda pair: pair[0].seq)
        for (send_a, recv_a), (send_b, recv_b) in zip(
            channel_pairs, channel_pairs[1:]
        ):
            if recv_b.seq < recv_a.seq:
                yield ReplayFinding(
                    code="SPF111",
                    rank=recv_b.rank,
                    seq=recv_b.seq,
                    message=(
                        f"message (family {send_b.family!r}, iteration "
                        f"{send_b.iteration}) from rank {send_b.rank} "
                        f"overtook the earlier send for iteration "
                        f"{send_a.iteration}; receives observed delivery "
                        "order, not send order"
                    ),
                )


def replay(
    log: EventLog, backward_window: int = DEFAULT_BACKWARD_WINDOW
) -> ReplayReport:
    """Run every dynamic check over ``log`` and collect the findings."""
    graph, report = build_dynamic_hb(log)
    findings: list[ReplayFinding] = []
    findings.extend(_check_unverified_speculations(log))
    findings.extend(_check_stale_speculations(log, backward_window))
    findings.extend(_check_correction_order(log))
    findings.extend(_check_unmatched_messages(log, report))
    findings.extend(_check_message_overtaking(log))
    report.findings = sorted(findings)
    report.stats = {
        "events": len(log),
        "ranks": len(log.ranks()),
        "hb_edges": graph.edge_count(),
        "matched_messages": report.matched_messages,
        "speculations": len(log.of_kind("speculate")),
        "verifications": len(log.of_kind("verify")),
        "corrections": len(log.of_kind("correct")),
    }
    return report


# --------------------------------------------------------------------------
# differential analysis: static findings vs the recorded run
# --------------------------------------------------------------------------

#: What a trace must contain for a code's behaviour to count as
#: *exercised* (so a clean trace refutes rather than merely not
#: observing the static finding).
_EXERCISE_KINDS: dict[str, tuple[str, ...]] = {
    "SPF101": ("speculate",),
    "SPF102": ("speculate",),
    "SPF103": ("correct",),
    "SPF110": ("send", "recv"),
    "SPF111": ("send",),
}


def cross_reference(
    diagnostics: list[Diagnostic],
    log: EventLog,
    backward_window: int = DEFAULT_BACKWARD_WINDOW,
) -> tuple[ReplayReport, list[Verdict]]:
    """Join static findings with a recorded run.

    For every distinct SPF code among ``diagnostics``:

    * *confirmed* — the replay witnessed the same violation class;
    * *refuted* — the trace exercised the relevant protocol steps and
      stayed clean (evidence the static finding is a false positive,
      or that this input never hits the bad path);
    * *unobserved* — the trace never exercised those steps, so it says
      nothing either way.
    """
    report = replay(log, backward_window=backward_window)
    witnessed = report.codes()
    verdicts: list[Verdict] = []
    for code in sorted({d.code for d in diagnostics if d.code.startswith("SPF1")}):
        static_count = sum(1 for d in diagnostics if d.code == code)
        if code in witnessed:
            hits = [f for f in report.findings if f.code == code]
            verdicts.append(
                Verdict(
                    code=code,
                    status="confirmed",
                    detail=(
                        f"{static_count} static finding(s); the trace "
                        f"witnesses {len(hits)} runtime violation(s), e.g. "
                        f"rank {hits[0].rank} seq {hits[0].seq}"
                    ),
                )
            )
            continue
        exercise = _EXERCISE_KINDS.get(code, ())
        exercised = all(log.of_kind(kind) for kind in exercise) if exercise else False
        if exercised:
            verdicts.append(
                Verdict(
                    code=code,
                    status="refuted",
                    detail=(
                        f"{static_count} static finding(s), but the trace "
                        f"exercised {'/'.join(exercise)} events "
                        f"({', '.join(str(len(log.of_kind(k))) for k in exercise)}"
                        ") without violating the rule on this input"
                    ),
                )
            )
        else:
            verdicts.append(
                Verdict(
                    code=code,
                    status="unobserved",
                    detail=(
                        f"{static_count} static finding(s); the trace never "
                        f"exercised the relevant protocol steps "
                        f"({'/'.join(exercise) or 'n/a'})"
                    ),
                )
            )
    return report, verdicts
