"""Phase-cost contracts: static findings vs a measured trace.

The differential half of specperf, mirroring what
:mod:`repro.analysis.replay` does for specflow's protocol findings:
a static finding is a *claim* about run-time cost, and a recorded
:class:`~repro.trace.events.EventLog` is evidence for or against it.

The contract is the calibrated performance model (Eq. 3-9,
:mod:`repro.perfmodel.model`): on the bottleneck processor one
speculative iteration decomposes into

    max(spec + compute, comm) + check + k * recompute

which fixes the *share* of iteration time each phase may consume.
:func:`measure_phase_shares` extracts the same shares from a trace by
attributing inter-event gaps on each rank (time before a ``recv`` is
communication wait; time after a ``compute``/``speculate``/``verify``/
``correct`` event belongs to that phase).  A static finding's phase
(:data:`PHASE_OF_RULE`) is then judged:

* **CONFIRMED** — the phase consumed more of the iteration than the
  model budgets (beyond ``tol``): the trace is consistent with the
  flagged overhead actually costing time;
* **REFUTED** — the phase stayed within its budget: the pattern exists
  but did not distort this run's phase economy;
* **UNOBSERVED** — the trace contains no events of that phase, so it
  is silent about the claim.

Determinism: the DES is seeded, so a recorded trace — and therefore
every verdict — is byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.perfmodel.model import ModelParams, PerformanceModel, section4_params
from repro.trace.events import EventLog
from repro.trace.phases import PHASES

#: The measured phase a rule's cost pattern inflates when real.
PHASE_OF_RULE: dict[str, str] = {
    "SPP201": "comm",     # per-message copy sits on the send path
    "SPP202": "spec",     # history rebuild feeds the speculator
    "SPP203": "compute",  # allocation inside the force kernel
    "SPP204": "check",    # ring scan per verified message
    "SPP205": "compute",  # attribute churn inside the kernel
    "SPP206": "comm",     # buffer growth on the message path
    "SPP207": "comm",     # mutable payload forces the copy
    "SPP208": "comm",     # sizing recomputed per message
}

#: Verdict labels (string constants shared with the reporters/tests).
CONFIRMED = "confirmed"
REFUTED = "refuted"
UNOBSERVED = "unobserved"

#: Gap attribution: the phase that owns time *after* an event kind.
_AFTER_KIND = {
    "compute": "compute",
    "speculate": "spec",
    "verify": "check",
    "correct": "correct",
    "send": "comm",
}

#: Event kinds whose presence makes a phase observable in a trace.
_KINDS_OF_PHASE = {
    "compute": ("compute",),
    "spec": ("speculate",),
    "check": ("verify",),
    "correct": ("correct",),
    "comm": ("send", "recv"),
}


def measure_phase_shares(log: EventLog) -> dict[str, float]:
    """Fraction of traced time each phase consumed, summed over ranks.

    Works on inter-event gaps per rank: the interval ending at a
    ``recv`` is communication wait (the rank was blocked on the
    message); otherwise the interval belongs to the phase of the event
    that *started* it (:data:`_AFTER_KIND`), defaulting to ``idle``.
    """
    totals = {phase: 0.0 for phase in PHASES}
    for rank in log.ranks():
        events = log.for_rank(rank)
        for prev, cur in zip(events, events[1:]):
            gap = cur.time - prev.time
            if gap <= 0.0:
                continue
            if cur.kind == "recv":
                phase = "comm"
            else:
                phase = _AFTER_KIND.get(prev.kind, "idle")
            totals[phase] += gap
    grand = sum(totals.values())
    if grand <= 0.0:
        return {phase: 0.0 for phase in PHASES}
    return {phase: t / grand for phase, t in totals.items()}


def observed_phases(log: EventLog) -> frozenset[str]:
    """Phases the trace actually exercised (has events of)."""
    kinds = {ev.kind for ev in log.events}
    return frozenset(
        phase
        for phase, needed in _KINDS_OF_PHASE.items()
        if kinds.intersection(needed)
    )


def model_phase_shares(
    p: int, params: Optional[ModelParams] = None
) -> dict[str, float]:
    """The Eq. 8 phase budget on the bottleneck rank, as shares.

    Decomposes the bottleneck processor's iteration time into the five
    protocol components (communication is the *exposed* wait — the part
    speculation + computation fail to overlap) and normalises.
    """
    params = params if params is not None else section4_params()
    p = max(1, min(p, params.max_procs))
    shares = {phase: 0.0 for phase in PHASES}
    if p == 1:
        shares["compute"] = 1.0
        return shares
    model = PerformanceModel(params)
    counts = model.allocation(p)
    bottleneck = max(range(p), key=lambda i: model.t_spec_rank(p, i))
    n_i = counts[bottleneck]
    m_i = params.capacities[bottleneck]
    remote = params.n - n_i
    spec_t = remote * params.f_spec / m_i
    comp_t = n_i * params.f_comp / m_i
    comm_t = max(0.0, params.t_comm(p) - (spec_t + comp_t))
    check_t = remote * params.f_check / m_i
    correct_t = params.k * n_i * params.f_comp / m_i
    total = spec_t + comp_t + comm_t + check_t + correct_t
    if total <= 0.0:  # pragma: no cover - degenerate parameters
        return shares
    shares["compute"] = comp_t / total
    shares["comm"] = comm_t / total
    shares["spec"] = spec_t / total
    shares["check"] = check_t / total
    shares["correct"] = correct_t / total
    return shares


@dataclass(frozen=True, order=True)
class CostVerdict:
    """One rule's phase-cost claim judged against a trace."""

    code: str
    phase: str
    measured: float
    modeled: float
    status: str

    def format_text(self) -> str:
        """``cost-contract SPP203 [compute]: CONFIRMED ...`` (one line)."""
        drift = (self.measured - self.modeled) * 100.0
        return (
            f"cost-contract {self.code} [{self.phase}]: "
            f"{self.status.upper()} — measured {self.measured:.1%} vs "
            f"model {self.modeled:.1%} share ({drift:+.1f}pp)"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "phase": self.phase,
            "measured": round(self.measured, 6),
            "modeled": round(self.modeled, 6),
            "status": self.status,
        }


def check_contracts(
    diagnostics: Sequence[Diagnostic],
    log: EventLog,
    p: Optional[int] = None,
    params: Optional[ModelParams] = None,
    tol: float = 0.05,
) -> tuple[dict[str, float], dict[str, float], list[CostVerdict]]:
    """Judge every distinct finding code against the trace.

    Returns ``(measured shares, model shares, verdicts)``; ``p``
    defaults to the number of ranks in the trace.
    """
    measured = measure_phase_shares(log)
    observed = observed_phases(log)
    ranks = log.ranks()
    p_eff = p if p is not None else max(1, len(ranks))
    modeled = model_phase_shares(p_eff, params)
    verdicts: list[CostVerdict] = []
    for code in sorted({d.code for d in diagnostics}):
        phase = PHASE_OF_RULE.get(code)
        if phase is None:
            continue
        if phase not in observed:
            status = UNOBSERVED
        elif measured[phase] - modeled[phase] > tol:
            status = CONFIRMED
        else:
            status = REFUTED
        verdicts.append(
            CostVerdict(
                code=code,
                phase=phase,
                measured=measured[phase],
                modeled=modeled[phase],
                status=status,
            )
        )
    return measured, modeled, verdicts


def format_share_table(
    measured: dict[str, float], modeled: dict[str, float]
) -> str:
    """Side-by-side measured vs model phase shares (text report)."""
    lines = ["phase      measured    model"]
    for phase in PHASES:
        lines.append(
            f"{phase:<9s}  {measured.get(phase, 0.0):>7.1%}  {modeled.get(phase, 0.0):>7.1%}"
        )
    return "\n".join(lines)


def iter_verdict_dicts(verdicts: Iterable[CostVerdict]) -> list[dict[str, object]]:
    """JSON-ready verdict records (stable order)."""
    return [v.to_dict() for v in sorted(verdicts)]
