"""specperf: static hot-path cost analysis with phase-cost contracts.

The third member of the analysis family.  speclint checks protocol
*syntax* per module; specflow checks protocol *state* across the call
graph; specperf checks protocol *cost*: which functions execute inside
which phase of the speculative iteration (send / receive / speculate /
compute / verify / correct), and whether their per-iteration work
matches what the calibrated performance model (Eq. 3-9) budgets for
that phase.

Three layers:

* :mod:`repro.analysis.perf.attribution` — assigns every function a
  set of protocol phases by seeding well-known protocol entry points
  and propagating caller → callee over the specflow call graph, plus a
  symbolic per-call cost summary (allocations, copies, sends, loop
  nesting);
* :mod:`repro.analysis.perf.rules` — the SPP201..SPP208 hot-path rule
  pack, each scoped to the phases where its cost pattern hurts;
* :mod:`repro.analysis.perf.contracts` — the differential half:
  replays a recorded :class:`~repro.trace.events.EventLog`, measures
  the share of iteration time each phase actually consumed, and marks
  static findings CONFIRMED / REFUTED / UNOBSERVED against the model's
  phase budget.

Entry point: ``repro perf-lint [paths] [--format text|json|sarif]
[--trace LOG]`` (exit codes shared with ``lint``/``analyze``/``mc``).
"""

from repro.analysis.perf.attribution import (
    Attribution,
    FunctionCosts,
    build_attribution,
)
from repro.analysis.perf.contracts import (
    PHASE_OF_RULE,
    CostVerdict,
    check_contracts,
    measure_phase_shares,
    model_phase_shares,
)
from repro.analysis.perf.specperf import (
    analyze_modules,
    analyze_paths,
    analyze_source,
    rule_catalogue,
)

__all__ = [
    "Attribution",
    "CostVerdict",
    "FunctionCosts",
    "PHASE_OF_RULE",
    "analyze_modules",
    "analyze_paths",
    "analyze_source",
    "build_attribution",
    "check_contracts",
    "measure_phase_shares",
    "model_phase_shares",
    "rule_catalogue",
]
