"""specperf driver: attribution + the SPP rule pack over many files.

Shaped exactly like :mod:`repro.analysis.specflow`: build every
module's CFGs, one shared call graph, the phase attribution, then run
the SPP201..SPP208 checkers per module.  Findings are ordinary
:class:`~repro.analysis.diagnostics.Diagnostic` records, so the shared
reporters, the SARIF writer, the fingerprint baselines and the
``# specperf: disable=...`` suppression directives all behave exactly
as they do for speclint/specflow.

Entry point: :func:`analyze_paths` (what ``repro perf-lint`` calls).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.cfg import CallGraph, ModuleGraphs
from repro.analysis.diagnostics import SPP_RULES, Diagnostic, Severity
from repro.analysis.linter import collect_suppressions, iter_python_files
from repro.analysis.perf.attribution import Attribution, build_attribution
from repro.analysis.perf.rules import RULE_CHECKERS


def _syntax_diag(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        code="SPP000",
        severity=Severity.ERROR,
        message=f"syntax error: {exc.msg}",
    )


def _suppressed(diag: Diagnostic, sources: dict[str, str]) -> bool:
    source = sources.get(diag.path)
    if source is None:
        return False
    per_line, file_wide = collect_suppressions(source)
    codes = per_line.get(diag.line, set()) | file_wide
    return bool(codes) and (diag.code.upper() in codes or "ALL" in codes)


def analyze_modules(
    modules: list[ModuleGraphs],
    select: Optional[Iterable[str]] = None,
    attribution: Optional[Attribution] = None,
) -> list[Diagnostic]:
    """Run every SPP rule over pre-built module graphs."""
    wanted = {c.upper() for c in select} if select is not None else None

    def on(code: str) -> bool:
        return wanted is None or code in wanted

    if attribution is None:
        attribution = build_attribution(CallGraph(modules))
    found: list[Diagnostic] = []
    for module in modules:
        for code, checker in sorted(RULE_CHECKERS.items()):
            if on(code):
                found.extend(checker(module, attribution))
    sources = {m.path: m.source for m in modules}
    # A node nested in several loops is visited once per enclosing
    # loop; identical findings collapse to one.
    return sorted({d for d in found if not _suppressed(d, sources)})


def analyze_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Analyse one source text (testing convenience)."""
    try:
        module = ModuleGraphs.from_source(source, path=path)
    except SyntaxError as exc:
        return [_syntax_diag(path, exc)]
    return analyze_modules([module], select=select)


def analyze_paths(
    paths: Sequence[str | Path],
    select: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Analyse every ``.py`` file under ``paths`` as one program.

    One shared call graph means the phase attribution is
    interprocedural: a helper defined in one file inherits the phase
    of its caller in another.  Unparseable files each yield an
    ``SPP000`` diagnostic instead of aborting the run.
    """
    modules: list[ModuleGraphs] = []
    syntax_errors: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            modules.append(ModuleGraphs.from_source(source, path=str(file_path)))
        except SyntaxError as exc:
            syntax_errors.append(_syntax_diag(str(file_path), exc))
    return sorted(syntax_errors + analyze_modules(modules, select=select))


def rule_catalogue() -> dict[str, str]:
    """``code -> summary`` for every registered SPP rule (docs/CLI)."""
    return {code: SPP_RULES[code].summary for code in sorted(SPP_RULES)}
