"""The SPP201..SPP208 hot-path cost rules.

Each rule flags one cost pattern *in the phase where it hurts* — the
phase attribution (:mod:`repro.analysis.perf.attribution`) scopes every
check, so an allocation in a test helper is silent while the same
allocation in the per-pair force kernel is a finding.

=======  ==========================================================
SPP201   per-message ``deepcopy`` on the send path, no fast path
SPP202   history container rebuilt inside a loop (O(msgs × history))
SPP203   array/container allocation in the innermost compute loop
SPP204   linear HistoryRing scan inside a message loop
SPP205   attribute chain re-resolved in the innermost compute loop
SPP206   unbounded trace/event buffer appended to in a hot loop
SPP207   freshly built mutable payload handed to send/broadcast
SPP208   loop-invariant ``payload_nbytes`` recomputed per message
=======  ==========================================================

Like the SPF pack these are *heuristic* (warnings) except where the
pattern is unambiguous (errors): name-based phase attribution can
over-approximate, and the messages say what to hoist or freeze rather
than pretending certainty.  Findings are plain ``Diagnostic`` records;
``# specperf: disable=SPP203`` suppressions work exactly as for
speclint/specflow.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from typing import Callable, Iterator, Optional

from repro.analysis.cfg import FunctionNode, ModuleGraphs
from repro.analysis.diagnostics import Diagnostic, Severity, register_spp_rule
from repro.analysis.perf.attribution import (
    PHASE_SEEDS,
    Attribution,
    call_name,
    walk_function,
)

#: Container names treated as per-iteration history / message state.
HISTORY_NAMES = frozenset(
    {"history", "events", "intervals", "messages", "chain", "buffer",
     "log", "pending"}
)

#: Attribute names treated as unbounded trace/event buffers (SPP206).
BUFFER_NAMES = frozenset(
    {"events", "intervals", "records", "log", "trace", "samples"}
)

#: numpy-style allocators + comprehension nodes flagged by SPP203.
ALLOC_CALL_NAMES = frozenset(
    {"zeros", "empty", "ones", "full", "array", "zeros_like", "empty_like",
     "ones_like", "full_like"}
)

LOOPS = (ast.For, ast.AsyncFor, ast.While)

register_spp_rule(
    "SPP201", "send-path-deepcopy", Severity.ERROR,
    "per-message deepcopy on the send path without an immutability "
    "fast path",
)
register_spp_rule(
    "SPP202", "history-rebuild-in-loop", Severity.WARNING,
    "history container rebuilt on every loop iteration "
    "(O(messages x history) scan)",
)
register_spp_rule(
    "SPP203", "alloc-in-compute-loop", Severity.WARNING,
    "array/container allocated inside the innermost compute loop",
)
register_spp_rule(
    "SPP204", "history-ring-scan", Severity.ERROR,
    "linear HistoryRing scan inside a per-message loop",
)
register_spp_rule(
    "SPP205", "attr-chain-in-kernel", Severity.WARNING,
    "attribute chain re-resolved on every innermost compute-loop "
    "iteration",
)
register_spp_rule(
    "SPP206", "unbounded-event-buffer", Severity.WARNING,
    "unbounded trace/event buffer appended to inside a hot loop",
)
register_spp_rule(
    "SPP207", "mutable-payload-send", Severity.WARNING,
    "freshly built mutable payload handed to send/broadcast "
    "(forces a deep copy)",
)
register_spp_rule(
    "SPP208", "loop-invariant-sizing", Severity.WARNING,
    "loop-invariant payload_nbytes recomputed on every message",
)


def _diag(
    path: str, node: ast.AST, code: str, severity: Severity, message: str
) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        severity=severity,
        message=message,
    )


def _walk_stmts(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    """Every AST node under ``stmts``, pruning nested function bodies."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _loops_of(func: FunctionNode) -> list[ast.stmt]:
    """All ``for``/``while`` loops of the function's own body."""
    return [n for n in walk_function(func) if isinstance(n, LOOPS)]


def _is_innermost(loop: ast.stmt) -> bool:
    """True when no further loop nests inside ``loop``'s body."""
    for node in _walk_stmts(loop.body):  # type: ignore[attr-defined]
        if node is not loop and isinstance(node, LOOPS):
            return False
    return True


def _chain_names(expr: ast.AST) -> set[str]:
    """Identifiers appearing in an attribute/subscript chain."""
    names: set[str] = set()
    cur: Optional[ast.AST] = expr
    while cur is not None:
        if isinstance(cur, ast.Attribute):
            names.add(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        elif isinstance(cur, ast.Name):
            names.add(cur.id)
            cur = None
        else:
            cur = None
    return names


def _import_roots(tree: ast.Module) -> set[str]:
    """Names bound by module-level imports (``np``, ``ast``, ...)."""
    roots: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                roots.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                roots.add(alias.asname or alias.name)
    return roots


def _function_items(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[tuple[str, FunctionNode, frozenset[str]]]:
    """(qualname, function node, attributed phases) per function."""
    for qual in sorted(module.cfgs):
        cfg = module.cfgs[qual]
        key = (module.path, qual)
        yield qual, cfg.func, attribution.phases_of(key)


# --------------------------------------------------------------------------
# SPP201: per-message deepcopy without an immutability fast path
# --------------------------------------------------------------------------


def check_spp201(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[Diagnostic]:
    for qual, func, phases in _function_items(module, attribution):
        if "send" not in phases:
            continue
        guarded = any(
            isinstance(node, ast.Call)
            and (name := call_name(node)) is not None
            and "immutable" in name.lower()
            for node in walk_function(func)
        )
        if guarded:
            continue
        for node in walk_function(func):
            if isinstance(node, ast.Call) and call_name(node) == "deepcopy":
                yield _diag(
                    module.path, node, "SPP201", Severity.ERROR,
                    f"send-path function '{qual}' deep-copies every "
                    "payload; probe immutability first (frozen Message, "
                    "tuples of scalars, bytes) so already-safe payloads "
                    "skip the copy",
                )


# --------------------------------------------------------------------------
# SPP202: history container rebuilt inside a loop
# --------------------------------------------------------------------------


def _history_name(expr: ast.AST) -> Optional[str]:
    """The history-ish identifier an expression reads, if any."""
    if isinstance(expr, ast.Name) and expr.id in HISTORY_NAMES:
        return expr.id
    if isinstance(expr, ast.Attribute) and expr.attr in HISTORY_NAMES:
        return expr.attr
    if isinstance(expr, ast.Subscript):
        return _history_name(expr.value)
    return None


def check_spp202(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[Diagnostic]:
    for qual, func, phases in _function_items(module, attribution):
        if not phases & {"spec", "recv", "check"}:
            continue
        for loop in _loops_of(func):
            for node in _walk_stmts(loop.body):  # type: ignore[attr-defined]
                rebuilt: Optional[str] = None
                if (
                    isinstance(node, ast.Call)
                    and call_name(node) in {"list", "sorted", "tuple"}
                    and node.args
                ):
                    rebuilt = _history_name(node.args[0])
                elif isinstance(node, ast.ListComp):
                    rebuilt = _history_name(node.generators[0].iter)
                if rebuilt is not None:
                    yield _diag(
                        module.path, node, "SPP202", Severity.WARNING,
                        f"'{qual}' rebuilds history container "
                        f"'{rebuilt}' on every loop iteration — "
                        "O(messages x history) per iteration; hoist the "
                        "rebuild or index incrementally",
                    )


# --------------------------------------------------------------------------
# SPP203: allocation in the innermost compute loop
# --------------------------------------------------------------------------


def check_spp203(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[Diagnostic]:
    for qual, func, phases in _function_items(module, attribution):
        if "compute" not in phases:
            continue
        for loop in _loops_of(func):
            if not _is_innermost(loop):
                continue
            for node in _walk_stmts(loop.body):  # type: ignore[attr-defined]
                flagged = (
                    isinstance(node, ast.Call)
                    and call_name(node) in ALLOC_CALL_NAMES
                ) or isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp))
                if flagged:
                    yield _diag(
                        module.path, node, "SPP203", Severity.WARNING,
                        f"'{qual}' allocates a fresh array/container in "
                        "its innermost compute loop (paid once per pair "
                        "per iteration); hoist the allocation and reuse "
                        "the storage",
                    )


# --------------------------------------------------------------------------
# SPP204: linear HistoryRing scan inside a per-message loop
# --------------------------------------------------------------------------

_RING_TOKENS = frozenset({"history", "ring"})


def check_spp204(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[Diagnostic]:
    for qual, func, phases in _function_items(module, attribution):
        if not phases & {"recv", "check"}:
            continue
        for loop in _loops_of(func):
            for node in _walk_stmts(loop.body):  # type: ignore[attr-defined]
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"lookup", "times", "values", "series"}
                ):
                    continue
                if _chain_names(node.func.value) & _RING_TOKENS:
                    yield _diag(
                        module.path, node, "SPP204", Severity.ERROR,
                        f"'{qual}' walks a HistoryRing inside a "
                        "per-message loop — O(messages x history) per "
                        "iteration; cache the lookup (the ring is "
                        "keyed by iteration) outside the loop",
                    )


# --------------------------------------------------------------------------
# SPP205: attribute chain re-resolved in the innermost compute loop
# --------------------------------------------------------------------------

#: Minimum loads of one chain in one innermost loop to report.
SPP205_THRESHOLD = 3


def _pure_chain(node: ast.Attribute) -> Optional[str]:
    """``a.b.c`` as a string when the chain roots at a plain name."""
    parts = [node.attr]
    cur = node.value
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _collect_chains(stmts: list[ast.stmt], roots: set[str]) -> Counter:
    counts: Counter = Counter()

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            chain = _pure_chain(node)
            if chain is not None:
                if chain.split(".", 1)[0] not in roots:
                    counts[chain] += 1
                return  # a pure chain's sub-chains are not re-counted
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in stmts:
        visit(stmt)
    return counts


def check_spp205(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[Diagnostic]:
    roots = _import_roots(module.tree)
    for qual, func, phases in _function_items(module, attribution):
        if "compute" not in phases:
            continue
        for loop in _loops_of(func):
            if not _is_innermost(loop):
                continue
            counts = _collect_chains(loop.body, roots)  # type: ignore[attr-defined]
            for chain, n in sorted(counts.items()):
                if n >= SPP205_THRESHOLD and chain.count(".") >= 2:
                    yield _diag(
                        module.path, loop, "SPP205", Severity.WARNING,
                        f"'{qual}' resolves '{chain}' {n} times in its "
                        "innermost compute loop; bind it to a local "
                        "before the loop",
                    )


# --------------------------------------------------------------------------
# SPP206: unbounded trace/event buffer appended to in a hot loop
# --------------------------------------------------------------------------


def _module_trims(source: str, name: str) -> bool:
    """Does the module ever shrink or bound buffer attribute ``name``?"""
    pattern = (
        rf"\.{name}\.pop\b|\.{name}\.clear\b|del\s+self\.{name}"
        rf"|\.{name}\s*=\s*.*\.{name}\[|maxlen"
    )
    return re.search(pattern, source) is not None


def check_spp206(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[Diagnostic]:
    for qual, func, phases in _function_items(module, attribution):
        key = (module.path, qual)
        if not phases and not attribution.is_hot(key):
            continue
        for loop in _loops_of(func):
            for node in _walk_stmts(loop.body):  # type: ignore[attr-defined]
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"append", "extend"}
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr in BUFFER_NAMES
                ):
                    continue
                buffer = node.func.value.attr
                if _module_trims(module.source, buffer):
                    continue
                yield _diag(
                    module.path, node, "SPP206", Severity.WARNING,
                    f"'{qual}' appends to unbounded buffer "
                    f"'{buffer}' inside a hot loop; memory and scan "
                    "cost grow with run length — bound it (ring "
                    "buffer / maxlen) or trim on consumption",
                )


# --------------------------------------------------------------------------
# SPP207: freshly built mutable payload handed to send/broadcast
# --------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)


def check_spp207(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[Diagnostic]:
    for qual, func, _phases in _function_items(module, attribution):
        for node in walk_function(func):
            if not (
                isinstance(node, ast.Call)
                and call_name(node) in PHASE_SEEDS["send"]
            ):
                continue
            for arg in node.args:
                if isinstance(arg, _MUTABLE_LITERALS):
                    yield _diag(
                        module.path, arg, "SPP207", Severity.WARNING,
                        f"'{qual}' sends a freshly built mutable "
                        "payload; isolation must deep-copy it — build "
                        "a tuple (or frozen structure) so the "
                        "immutability fast path applies",
                    )


# --------------------------------------------------------------------------
# SPP208: loop-invariant payload_nbytes recomputed per message
# --------------------------------------------------------------------------


def _loop_targets(loop: ast.stmt) -> set[str]:
    """Names bound by the loop header (``for`` targets; none for while)."""
    names: set[str] = set()
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        for node in ast.walk(loop.target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _assigned_in(stmts: list[ast.stmt]) -> set[str]:
    """Names assigned anywhere under ``stmts`` (loop-variant values)."""
    names: set[str] = set()
    for node in _walk_stmts(stmts):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def check_spp208(
    module: ModuleGraphs, attribution: Attribution
) -> Iterator[Diagnostic]:
    for qual, func, phases in _function_items(module, attribution):
        sends = any(
            isinstance(node, ast.Call)
            and call_name(node) in PHASE_SEEDS["send"]
            for node in walk_function(func)
        )
        if not sends and "send" not in phases:
            continue
        for loop in _loops_of(func):
            variant = _loop_targets(loop) | _assigned_in(loop.body)  # type: ignore[attr-defined]
            for node in _walk_stmts(loop.body):  # type: ignore[attr-defined]
                if not (
                    isinstance(node, ast.Call)
                    and call_name(node) == "payload_nbytes"
                ):
                    continue
                arg_names = {
                    n.id
                    for a in node.args
                    for n in ast.walk(a)
                    if isinstance(n, ast.Name)
                }
                if arg_names and not (arg_names & variant):
                    yield _diag(
                        module.path, node, "SPP208", Severity.WARNING,
                        f"'{qual}' recomputes payload_nbytes on a "
                        "loop-invariant payload for every message; "
                        "hoist the size computation out of the send "
                        "loop",
                    )


#: code -> checker, the pack the driver iterates.
RULE_CHECKERS: dict[
    str, Callable[[ModuleGraphs, Attribution], Iterator[Diagnostic]]
] = {
    "SPP201": check_spp201,
    "SPP202": check_spp202,
    "SPP203": check_spp203,
    "SPP204": check_spp204,
    "SPP205": check_spp205,
    "SPP206": check_spp206,
    "SPP207": check_spp207,
    "SPP208": check_spp208,
}
