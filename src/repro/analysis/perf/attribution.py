"""Phase attribution: which functions run inside which protocol phase.

The speculative iteration has six protocol phases (mirroring
:mod:`repro.trace.phases` and the Eq. 3-9 cost model): ``send``,
``recv``, ``spec``, ``compute``, ``check`` and ``correct``.  A cost
pattern is only a finding when it sits *inside* one of those phases —
an allocation in a test helper is free, the same allocation in the
per-pair force loop is paid N² times per iteration.

Attribution is a fixed point over the specflow call graph:

1. *seed* — functions whose terminal name is a well-known protocol
   entry point (``send``, ``speculate``, ``compute``, ...) start in
   that phase;
2. *propagate* — a callee inherits every phase of its callers
   (transitively): a helper called from the send path is on the send
   path.

Resolution inherits the call graph's name-based over-approximation,
with one extra guard: edges through *generic container-method names*
(``append``, ``extend``, ``get``, ...) are ignored, because ``x.append``
almost always targets a built-in list, not the analysed function that
happens to share the name.  Honest over-approximation, same ethos as
:mod:`repro.analysis.cfg`.

The same pass computes a symbolic per-call cost summary per function
(:class:`FunctionCosts`): allocation sites, copy sites, send sites and
maximum loop-nesting depth — the inputs several SPP rules and the JSON
report reuse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.analysis.cfg import CallGraph, FunctionNode

#: Protocol phases attributable to a function (superset of the measured
#: phases in :mod:`repro.trace.phases`: send+recv both surface as comm).
PROTOCOL_PHASES = ("send", "recv", "spec", "compute", "check", "correct")

#: Terminal function names seeding each phase.
PHASE_SEEDS: dict[str, frozenset[str]] = {
    "send": frozenset({"send", "broadcast", "isolate_payload"}),
    "recv": frozenset(
        {"recv", "try_recv", "record_arrival", "on_arrival", "_on_arrival",
         "deliver"}
    ),
    "spec": frozenset({"speculate", "extrapolate", "speculate_positions"}),
    "compute": frozenset(
        {"compute", "accelerations", "accelerations_from_sources",
         "compute_step"}
    ),
    "check": frozenset({"check", "verify"}),
    "correct": frozenset({"correct", "cascade", "_cascade"}),
}

#: Terminal names of protocol seats: per-rank programs and engine loops.
#: Functions reachable from a seat are *hot* (executed every iteration).
HOT_SEATS = frozenset(
    {"run", "worker_main", "_rank_program", "_run_protocol"}
)

#: Call edges through these terminal names are not followed: they are
#: overwhelmingly built-in container methods, and following them would
#: attribute e.g. every ``list.extend`` caller's phase to an analysed
#: function that happens to be called ``extend``.
GENERIC_NAMES = frozenset(
    {"append", "extend", "add", "pop", "clear", "update", "get", "items",
     "keys", "values", "copy", "sort", "index", "count", "insert",
     "remove", "join", "split", "strip", "read", "write", "close"}
)

#: Terminal callee names counted as array/container allocations.
ALLOCATION_NAMES = frozenset(
    {"zeros", "empty", "ones", "full", "array", "zeros_like", "empty_like",
     "ones_like", "full_like", "arange", "linspace"}
)

#: Terminal callee names counted as copies.
COPY_NAMES = frozenset({"deepcopy", "copy"})


def terminal_name(qualname: str) -> str:
    """Last dotted component of a qualname (``A.B.f`` → ``f``)."""
    return qualname.rsplit(".", 1)[-1]


def call_name(call: ast.Call) -> Optional[str]:
    """Terminal name of a call expression, if it has one."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def walk_function(func: FunctionNode):
    """All AST nodes of ``func``'s own body, pruning nested defs."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass(frozen=True)
class FunctionCosts:
    """Symbolic per-call cost summary of one function.

    Counts are *call sites*, not dynamic counts — the static analogue
    of "how much work can one call of this function do".
    """

    allocations: int
    copies: int
    sends: int
    max_loop_depth: int

    def to_dict(self) -> dict[str, int]:
        return {
            "allocations": self.allocations,
            "copies": self.copies,
            "sends": self.sends,
            "max_loop_depth": self.max_loop_depth,
        }


def _loop_depth(func: FunctionNode) -> int:
    """Maximum ``for``/``while`` nesting depth of the function body."""

    def depth(node: ast.AST, current: int) -> int:
        best = current
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            inc = 1 if isinstance(child, (ast.For, ast.AsyncFor, ast.While)) else 0
            best = max(best, depth(child, current + inc))
        return best

    return depth(func, 0)


def summarize_costs(func: FunctionNode) -> FunctionCosts:
    """Count allocation / copy / send call sites and loop nesting."""
    allocations = copies = sends = 0
    for node in walk_function(func):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name in ALLOCATION_NAMES:
            allocations += 1
        elif name in COPY_NAMES:
            copies += 1
        elif name in PHASE_SEEDS["send"]:
            sends += 1
    return FunctionCosts(
        allocations=allocations,
        copies=copies,
        sends=sends,
        max_loop_depth=_loop_depth(func),
    )


Key = tuple[str, str]  # (path, qualname), as in CallGraph


@dataclass
class Attribution:
    """Phase sets, hot flags and cost summaries for a whole program."""

    phases: dict[Key, frozenset[str]]
    hot: frozenset[Key]
    costs: dict[Key, FunctionCosts]
    callgraph: CallGraph

    def phases_of(self, key: Key) -> frozenset[str]:
        """Protocol phases attributed to one function (maybe empty)."""
        return self.phases.get(key, frozenset())

    def is_hot(self, key: Key) -> bool:
        """Is the function reachable from a protocol seat?"""
        return key in self.hot

    def to_dict(self) -> dict[str, dict[str, object]]:
        """JSON-ready attribution table (docs / debugging aid)."""
        table: dict[str, dict[str, object]] = {}
        for key in self.callgraph.functions():
            phases = self.phases_of(key)
            if not phases and not self.is_hot(key):
                continue
            table[f"{key[0]}::{key[1]}"] = {
                "phases": sorted(phases),
                "hot": self.is_hot(key),
                "costs": self.costs[key].to_dict(),
            }
        return table


def _filtered_callees(callgraph: CallGraph, key: Key) -> set[Key]:
    """Call-graph successors of ``key``, minus generic-name edges."""
    out: set[Key] = set()
    for _call, callee in callgraph.calls_in(*key):
        if terminal_name(callee[1]) in GENERIC_NAMES:
            continue
        out.add(callee)
    return out


def _propagate(
    callgraph: CallGraph, seeds: dict[Key, set[str]]
) -> dict[Key, frozenset[str]]:
    """Fixed point: callees inherit every phase of their callers."""
    phases: dict[Key, set[str]] = {k: set(v) for k, v in seeds.items()}
    work = list(seeds)
    while work:
        key = work.pop()
        mine = phases.get(key, set())
        if not mine:
            continue
        for callee in _filtered_callees(callgraph, key):
            have = phases.setdefault(callee, set())
            missing = mine - have
            if missing:
                have |= missing
                work.append(callee)
    return {k: frozenset(v) for k, v in phases.items() if v}


def build_attribution(callgraph: CallGraph) -> Attribution:
    """Seed, propagate and summarise costs over one program."""
    seeds: dict[Key, set[str]] = {}
    hot_seeds: list[Key] = []
    for key in callgraph.functions():
        name = terminal_name(key[1])
        for phase, names in PHASE_SEEDS.items():
            if name in names:
                seeds.setdefault(key, set()).add(phase)
        if name in HOT_SEATS:
            hot_seeds.append(key)

    phases = _propagate(callgraph, seeds)

    hot: set[Key] = set(hot_seeds)
    work = list(hot_seeds)
    while work:
        key = work.pop()
        for callee in _filtered_callees(callgraph, key):
            if callee not in hot:
                hot.add(callee)
                work.append(callee)

    costs: dict[Key, FunctionCosts] = {}
    for key in callgraph.functions():
        cfg = callgraph.cfg_of(key)
        assert cfg is not None  # functions() keys come from the modules
        costs[key] = summarize_costs(cfg.func)

    return Attribution(
        phases=phases, hot=frozenset(hot), costs=costs, callgraph=callgraph
    )
