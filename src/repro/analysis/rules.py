"""The speclint rules (SPL001..SPL008).

Each rule is a small, self-contained AST pass tuned to *this*
codebase's speculative-DES idioms (see ``docs/static_analysis.md`` for
the rationale, bad/good examples and the honest list of heuristics).

Shared conventions the rules key on:

* Virtual processors are bound to names ending in ``proc`` (``proc``,
  ``vp``, ``processor``); environments to names ending in ``env``.
* Generator-API methods (``compute``/``advance``/``recv``) only make
  progress when driven with ``yield from``.
* Message tags are ``(family, iteration)`` tuples whose family is a
  declared constant (``VARS``, ``BARRIER_IN``...), never a bare string.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath
from typing import Iterator, Optional

from repro.analysis.diagnostics import Diagnostic, Severity, register_rule

# --------------------------------------------------------------------------
# shared helpers
# --------------------------------------------------------------------------

#: Receiver names that denote a virtual processor.
PROC_NAMES = frozenset({"proc", "processor", "vp"})
#: Receiver names that denote a simulation environment.
ENV_NAMES = frozenset({"env", "environment"})
#: Processor methods that are generators (must be ``yield from``-ed).
GENERATOR_METHODS = frozenset({"compute", "advance", "recv"})
#: Blocking receive primitives (simulated and wall-clock backends).
BLOCKING_RECV_METHODS = frozenset({"recv", "take_blocking"})
#: Transport primitives whose ``tag=`` keyword speclint inspects.
TAGGED_METHODS = frozenset({"send", "recv", "try_recv", "probe", "broadcast"})
#: Payload-sending primitives inspected by the aliasing rule.
SEND_METHODS = frozenset({"send", "broadcast"})
#: numpy in-place array mutators.
ARRAY_MUTATORS = frozenset(
    {"fill", "sort", "resize", "put", "itemset", "partition", "setflags", "byteswap"}
)
#: ``random`` module-level functions (process-global RNG state).
RANDOM_MODULE_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "seed", "betavariate",
        "expovariate", "getrandbits", "triangular", "vonmisesvariate",
    }
)
#: Legacy ``numpy.random`` module-level API (global RNG state); the
#: injected ``numpy.random.default_rng`` / ``Generator`` is the allowed
#: replacement.
NUMPY_LEGACY_RANDOM = frozenset(
    {
        "rand", "randn", "random", "random_sample", "ranf", "sample",
        "randint", "random_integers", "seed", "uniform", "normal", "choice",
        "shuffle", "permutation", "standard_normal", "exponential", "poisson",
        "binomial", "get_state", "set_state", "RandomState",
    }
)
#: Handler-body calls that preserve the original traceback.
TRACEBACK_PRESERVERS = frozenset(
    {"format_exc", "print_exc", "format_exception", "exception", "print_exception"}
)


def build_parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Map each node to its syntactic parent."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def receiver_tail(expr: ast.expr) -> Optional[str]:
    """Terminal identifier of a receiver expression.

    ``proc`` -> "proc"; ``self.proc`` -> "proc"; ``cluster.env`` ->
    "env"; anything else -> None.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def is_proc_receiver(expr: ast.expr) -> bool:
    """Does ``expr`` look like a virtual-processor handle?"""
    tail = receiver_tail(expr)
    return tail is not None and (tail in PROC_NAMES or tail.endswith("_proc"))


def is_env_receiver(expr: ast.expr) -> bool:
    """Does ``expr`` look like a simulation environment handle?"""
    tail = receiver_tail(expr)
    return tail is not None and (tail in ENV_NAMES or tail.endswith("_env"))


def dotted_name(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string, or None for non-name chains."""
    parts: list[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_table(tree: ast.Module) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """(module aliases, from-imports) declared in the file.

    Returns ``({"np": "numpy", "time": "time"}, {"urandom": ("os",
    "urandom")})``-style tables.
    """
    modules: dict[str, str] = {}
    from_names: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                modules[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                from_names[alias.asname or alias.name] = (node.module, alias.name)
    return modules, from_names


def iter_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the module (any nesting)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_own_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def is_generator_function(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Does the function's own body contain a yield?"""
    for node in walk_own_body(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _diag(
    path: str, node: ast.AST, code: str, severity: Severity, message: str
) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        severity=severity,
        message=message,
    )


# --------------------------------------------------------------------------
# SPL001 — unawaited simulation call
# --------------------------------------------------------------------------


@register_rule(
    "SPL001",
    "unawaited-simulation-call",
    Severity.ERROR,
    "generator-API call (proc.compute/advance/recv) not driven with "
    "`yield from`, or an env.timeout event created and discarded",
)
def check_spl001(tree: ast.Module, path: str, source: str) -> Iterator[Diagnostic]:
    """A dropped ``yield from`` silently skips virtual time/blocking."""
    parents = build_parent_map(tree)
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        recv = node.func.value
        if attr in GENERATOR_METHODS and is_proc_receiver(recv):
            parent = parents.get(node)
            if not isinstance(parent, ast.YieldFrom):
                yield _diag(
                    path,
                    node,
                    "SPL001",
                    Severity.ERROR,
                    f"simulation call `{receiver_tail(recv)}.{attr}(...)` is a "
                    "generator and does nothing unless driven with `yield from`",
                )
        elif attr == "timeout" and is_env_receiver(recv):
            parent = parents.get(node)
            if isinstance(parent, ast.Expr):
                yield _diag(
                    path,
                    node,
                    "SPL001",
                    Severity.ERROR,
                    f"`{receiver_tail(recv)}.timeout(...)` creates an event that "
                    "is discarded; yield it (or drop the call)",
                )


# --------------------------------------------------------------------------
# SPL002 — blocking recv inside a speculative (fw >= 1) path
# --------------------------------------------------------------------------


def _fw_branch_kind(test: ast.expr) -> Optional[str]:
    """Classify a branch test on the forward window.

    Returns ``"spec"`` when the test implies fw >= 1, ``"blocking"``
    when it implies fw == 0, None when it does not mention fw.
    """

    def is_fw(expr: ast.expr) -> bool:
        tail = receiver_tail(expr)
        return tail is not None and (tail == "fw" or tail.endswith("_fw"))

    if is_fw(test):
        return "spec"
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not) and is_fw(test.operand):
        return "blocking"
    if isinstance(test, ast.Compare) and len(test.ops) == 1 and is_fw(test.left):
        op = test.ops[0]
        right = test.comparators[0]
        if not isinstance(right, ast.Constant) or not isinstance(right.value, (int, float)):
            return None
        bound = float(right.value)
        if isinstance(op, ast.Gt) and bound >= 0:
            return "spec"
        if isinstance(op, ast.GtE) and bound >= 1:
            return "spec"
        if isinstance(op, ast.NotEq) and bound == 0:
            return "spec"
        if isinstance(op, ast.Eq) and bound == 0:
            return "blocking"
        if isinstance(op, ast.Lt) and bound <= 1:
            return "blocking"
        if isinstance(op, ast.LtE) and bound <= 0:
            return "blocking"
    return None


@register_rule(
    "SPL002",
    "blocking-recv-in-speculative-path",
    Severity.ERROR,
    "blocking receive reachable inside an fw>=1 (speculative) branch; "
    "use try_recv/probe so the compute can run ahead",
)
def check_spl002(tree: ast.Module, path: str, source: str) -> Iterator[Diagnostic]:
    """Blocking in the speculative arm reintroduces delay propagation."""

    def blocking_recvs(nodes: list[ast.stmt]) -> Iterator[ast.Call]:
        for stmt in nodes:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in BLOCKING_RECV_METHODS
                ):
                    yield node

    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            kind = _fw_branch_kind(node.test)
            spec_arm: list[ast.stmt] = []
            if kind == "spec":
                spec_arm = node.body
            elif kind == "blocking":
                spec_arm = node.orelse
            for call in blocking_recvs(spec_arm):
                assert isinstance(call.func, ast.Attribute)
                yield _diag(
                    path,
                    call,
                    "SPL002",
                    Severity.ERROR,
                    f"blocking `{call.func.attr}(...)` inside a speculative "
                    "(fw >= 1) branch; use try_recv()/probe() and speculate "
                    "instead of waiting",
                )
        elif isinstance(node, ast.While) and _fw_branch_kind(node.test) == "spec":
            for call in blocking_recvs(node.body):
                assert isinstance(call.func, ast.Attribute)
                yield _diag(
                    path,
                    call,
                    "SPL002",
                    Severity.ERROR,
                    f"blocking `{call.func.attr}(...)` inside an fw >= 1 loop; "
                    "use try_recv()/probe()",
                )


# --------------------------------------------------------------------------
# SPL003 — nondeterminism in simulated components
# --------------------------------------------------------------------------


@register_rule(
    "SPL003",
    "nondeterministic-source",
    Severity.ERROR,
    "wall-clock or process-global RNG in simulated code; inject a "
    "numpy.random.Generator (default_rng) and use env.now for time",
)
def check_spl003(tree: ast.Module, path: str, source: str) -> Iterator[Diagnostic]:
    """time.time / random.* / os.urandom / legacy np.random break replay."""
    modules, from_names = import_table(tree)

    def flag(node: ast.AST, what: str) -> Diagnostic:
        return _diag(
            path,
            node,
            "SPL003",
            Severity.ERROR,
            f"nondeterministic source `{what}` in simulated code; use the "
            "injected numpy.random.Generator / virtual clock instead",
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            dotted = dotted_name(func)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            base = modules.get(head)
            if base is None:
                continue
            resolved = f"{base}.{rest}" if rest else base
            if resolved in ("time.time", "time.time_ns", "os.urandom"):
                yield flag(node, resolved)
            elif base == "random" and rest in RANDOM_MODULE_FUNCS:
                yield flag(node, f"random.{rest}")
            elif resolved.startswith("numpy.random."):
                leaf = resolved.rsplit(".", 1)[1]
                if leaf in NUMPY_LEGACY_RANDOM:
                    yield flag(node, f"numpy.random.{leaf}")
        elif isinstance(func, ast.Name):
            origin = from_names.get(func.id)
            if origin is None:
                continue
            mod, name = origin
            if (mod, name) in (("time", "time"), ("time", "time_ns"), ("os", "urandom")):
                yield flag(node, f"{mod}.{name}")
            elif mod == "random" and name in RANDOM_MODULE_FUNCS:
                yield flag(node, f"random.{name}")
            elif mod == "numpy.random" and name in NUMPY_LEGACY_RANDOM:
                yield flag(node, f"numpy.random.{name}")


# --------------------------------------------------------------------------
# SPL004 — message-tag discipline
# --------------------------------------------------------------------------


@register_rule(
    "SPL004",
    "message-tag-discipline",
    Severity.ERROR,
    "message tags must be (family, iteration) tuples whose family is a "
    "declared constant (e.g. VARS), not a bare string",
)
def check_spl004(tree: ast.Module, path: str, source: str) -> Iterator[Diagnostic]:
    """Bare-string tags collide across protocols and defeat routing."""
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in TAGGED_METHODS
        ):
            continue
        tag_kw = next((kw for kw in node.keywords if kw.arg == "tag"), None)
        if tag_kw is None:
            continue
        tag = tag_kw.value
        if isinstance(tag, ast.Constant):
            if tag.value is None:
                continue  # wildcard receive
            yield _diag(
                path,
                tag,
                "SPL004",
                Severity.ERROR,
                f"bare {type(tag.value).__name__} tag {tag.value!r}; use a "
                "(family, iteration) tuple with a declared family constant",
            )
        elif isinstance(tag, ast.Tuple):
            if len(tag.elts) != 2:
                yield _diag(
                    path,
                    tag,
                    "SPL004",
                    Severity.ERROR,
                    f"tag tuple has {len(tag.elts)} elements; the protocol "
                    "uses (family, iteration) pairs",
                )
            elif isinstance(tag.elts[0], ast.Constant):
                first = tag.elts[0]
                assert isinstance(first, ast.Constant)
                yield _diag(
                    path,
                    first,
                    "SPL004",
                    Severity.ERROR,
                    f"inline tag family {first.value!r}; declare a module-level "
                    "family constant (like VARS) and use it in the tuple",
                )


# --------------------------------------------------------------------------
# SPL005 — mutable-payload aliasing
# --------------------------------------------------------------------------


def _mutates_name(node: ast.AST, name: str) -> bool:
    """Does ``node`` mutate the object bound to ``name`` in place?"""
    if isinstance(node, ast.Assign):
        return any(
            isinstance(t, ast.Subscript)
            and isinstance(t.value, ast.Name)
            and t.value.id == name
            for t in node.targets
        )
    if isinstance(node, ast.AugAssign):
        target = node.target
        return (isinstance(target, ast.Name) and target.id == name) or (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id == name
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return (
            node.func.attr in ARRAY_MUTATORS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        )
    return False


def _nested_defs(func: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Function definitions nested (at any depth) inside ``func``."""
    for node in ast.walk(func):
        if node is not func and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            yield node


def _rebinds_param(func: ast.FunctionDef | ast.AsyncFunctionDef, name: str) -> bool:
    """Is ``name`` one of ``func``'s parameters (shadowing the closure)?"""
    args = func.args
    params = [
        *args.posonlyargs, *args.args, *args.kwonlyargs,
    ]
    if args.vararg is not None:
        params.append(args.vararg)
    if args.kwarg is not None:
        params.append(args.kwarg)
    return any(a.arg == name for a in params)


@register_rule(
    "SPL005",
    "mutable-payload-aliasing",
    Severity.WARNING,
    "array sent by reference is mutated later in the same function "
    "(or by a closure defined in it); the receiver may observe the "
    "mutation (send a copy)",
)
def check_spl005(tree: ast.Module, path: str, source: str) -> Iterator[Diagnostic]:
    """Zero-copy simulated sends alias sender memory; late writes race.

    Two mutation channels are checked: statements of the sending
    function *after* the send, and nested functions (closures) that
    capture the payload name — a callback mutating a captured array
    races with the receiver no matter where its ``def`` sits, because
    the call happens later.  Closures whose parameter list rebinds the
    name do not capture it and are exempt.
    """
    for func in iter_functions(tree):
        sends: list[tuple[str, ast.Call]] = []
        for node in walk_own_body(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SEND_METHODS
            ):
                continue
            payload: Optional[ast.expr] = None
            idx = 1 if node.func.attr == "send" else 0
            if len(node.args) > idx:
                payload = node.args[idx]
            else:
                kw = next((k for k in node.keywords if k.arg == "payload"), None)
                payload = kw.value if kw is not None else None
            if isinstance(payload, ast.Name):
                sends.append((payload.id, node))
        if not sends:
            continue
        for name, call in sends:
            flagged = False
            for node in walk_own_body(func):
                line = getattr(node, "lineno", 0)
                if line <= call.lineno:
                    continue
                if _mutates_name(node, name):
                    yield _diag(
                        path,
                        call,
                        "SPL005",
                        Severity.WARNING,
                        f"payload `{name}` is sent by reference but mutated at "
                        f"line {line}; send `{name}.copy()` (simulated sends "
                        "are zero-copy aliases)",
                    )
                    flagged = True
                    break
            if flagged:
                continue
            for nested in _nested_defs(func):
                if _rebinds_param(nested, name):
                    continue
                hit = next(
                    (n for n in ast.walk(nested) if _mutates_name(n, name)),
                    None,
                )
                if hit is not None:
                    yield _diag(
                        path,
                        call,
                        "SPL005",
                        Severity.WARNING,
                        f"payload `{name}` is sent by reference and mutated "
                        f"by nested function `{nested.name}` (line "
                        f"{getattr(hit, 'lineno', nested.lineno)}); the "
                        "closure runs after the send, so the receiver can "
                        f"observe the write — send `{name}.copy()`",
                    )
                    break


# --------------------------------------------------------------------------
# SPL006 — broad except swallowing Interrupt / SimulationError
# --------------------------------------------------------------------------


def _caught_names(type_expr: Optional[ast.expr]) -> set[str]:
    if type_expr is None:
        return set()
    exprs = type_expr.elts if isinstance(type_expr, ast.Tuple) else [type_expr]
    names: set[str] = set()
    for expr in exprs:
        tail = receiver_tail(expr)
        if tail is not None:
            names.add(tail)
    return names


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in walk_own_body(handler))


#: Builtins that *stringify* an exception rather than preserving it.
_STRINGIFIERS = frozenset({"type", "str", "repr", "format", "print"})


def _handler_preserves_traceback(handler: ast.ExceptHandler) -> bool:
    bound = handler.name
    for node in walk_own_body(handler):
        if isinstance(node, ast.Attribute):
            if node.attr in TRACEBACK_PRESERVERS or node.attr == "__traceback__":
                return True
        if bound is not None and isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in _STRINGIFIERS:
                continue  # str(exc)/type(exc) drop the traceback
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == bound:
                    return True
    return False


@register_rule(
    "SPL006",
    "broad-except-swallows-interrupt",
    Severity.ERROR,
    "bare/broad except in (or around) DES process bodies can swallow "
    "Interrupt/SimulationError or drop the original traceback",
)
def check_spl006(tree: ast.Module, path: str, source: str) -> Iterator[Diagnostic]:
    """Swallowed Interrupts deadlock cascades; lost tracebacks hide bugs."""
    for func in iter_functions(tree):
        in_generator = is_generator_function(func)
        for node in walk_own_body(func):
            if not isinstance(node, ast.Try):
                continue
            interrupt_handled = any(
                "Interrupt" in _caught_names(h.type) for h in node.handlers
            )
            for handler in node.handlers:
                if handler.type is None:
                    yield _diag(
                        path,
                        handler,
                        "SPL006",
                        Severity.ERROR,
                        "bare `except:` swallows Interrupt/SimulationError "
                        "(and KeyboardInterrupt); catch specific exceptions",
                    )
                    continue
                names = _caught_names(handler.type)
                if not names & {"Exception", "BaseException"}:
                    continue
                if _handler_reraises(handler):
                    continue
                if in_generator and not interrupt_handled:
                    yield _diag(
                        path,
                        handler,
                        "SPL006",
                        Severity.ERROR,
                        "broad except in a DES process body swallows "
                        "Interrupt/SimulationError; catch specific exceptions "
                        "or re-raise",
                    )
                elif not _handler_preserves_traceback(handler):
                    yield _diag(
                        path,
                        handler,
                        "SPL006",
                        Severity.ERROR,
                        "broad except discards the original traceback; "
                        "re-raise, pass the exception object on, or record "
                        "traceback.format_exc()",
                    )


# --------------------------------------------------------------------------
# SPL007 — sans-I/O purity of the protocol engine
# --------------------------------------------------------------------------

#: Engine-package modules that carry the sans-I/O contract by path.
SANS_IO_BASENAMES = frozenset({"core.py", "events.py", "ring.py"})
#: Marker comment declaring the sans-I/O contract for any other module.
_SANS_IO_MARKER = re.compile(r"#\s*speclint:\s*sans-io\b")
#: Modules a sans-I/O engine module must never import: clocks, RNG
#: state, sockets, processes, threads — everything a transport owns.
IMPURE_MODULES = frozenset(
    {
        "time", "random", "socket", "os", "multiprocessing", "threading",
        "subprocess", "select", "selectors", "signal", "asyncio", "queue",
        "socketserver", "ssl", "fcntl",
    }
)
#: Builtins that perform I/O (or break determinism) without an import.
IMPURE_BUILTINS = frozenset({"open", "input", "print", "breakpoint", "exec", "eval"})


def is_sans_io_module(path: str, source: str) -> bool:
    """Does this module carry the sans-I/O purity contract?

    True for the engine core modules by path (``engine/core.py``,
    ``engine/events.py``, ``engine/ring.py``) and for any module
    declaring ``# speclint: sans-io``.
    """
    posix = PurePosixPath(path.replace("\\", "/"))
    if posix.name in SANS_IO_BASENAMES and "engine" in posix.parts:
        return True
    return _SANS_IO_MARKER.search(source) is not None


def _under_type_checking(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """Is ``node`` inside an ``if TYPE_CHECKING:`` block?"""
    current: Optional[ast.AST] = parents.get(node)
    while current is not None:
        if isinstance(current, ast.If):
            for sub in ast.walk(current.test):
                if isinstance(sub, (ast.Name, ast.Attribute)):
                    if receiver_tail(sub) == "TYPE_CHECKING":
                        return True
        current = parents.get(current)
    return False


@register_rule(
    "SPL007",
    "sans-io-purity",
    Severity.ERROR,
    "sans-I/O engine module (engine core/events/ring, or any module "
    "marked `# speclint: sans-io`) imports a clock/RNG/socket/process "
    "module or calls an I/O builtin; all effects must be yielded to a "
    "transport",
)
def check_spl007(tree: ast.Module, path: str, source: str) -> Iterator[Diagnostic]:
    """The engine's whole contract is that transports own every side
    effect; one sneaked-in ``time.time()`` silently forks the DES,
    loopback and pipe behaviours apart."""
    if not is_sans_io_module(path, source):
        return
    parents = build_parent_map(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in IMPURE_MODULES and not _under_type_checking(node, parents):
                    yield _diag(
                        path,
                        node,
                        "SPL007",
                        Severity.ERROR,
                        f"sans-I/O engine module imports `{alias.name}`; "
                        "clocks, RNG, sockets and processes belong to "
                        "transports — express the need as a yielded effect",
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            top = node.module.split(".")[0]
            if top in IMPURE_MODULES and not _under_type_checking(node, parents):
                names = ", ".join(alias.name for alias in node.names)
                yield _diag(
                    path,
                    node,
                    "SPL007",
                    Severity.ERROR,
                    f"sans-I/O engine module imports `{names}` from "
                    f"`{node.module}`; clocks, RNG, sockets and processes "
                    "belong to transports — express the need as a yielded "
                    "effect",
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in IMPURE_BUILTINS:
                yield _diag(
                    path,
                    node,
                    "SPL007",
                    Severity.ERROR,
                    f"sans-I/O engine module calls `{node.func.id}(...)`; "
                    "I/O belongs in a transport (yield an effect, or move "
                    "this to the driver)",
                )


# --------------------------------------------------------------------------
# SPL008 — effect-alphabet exhaustiveness in transport dispatch
# --------------------------------------------------------------------------

#: Effects a transport must *act* on (Recv/TryRecv also need a response).
IO_EFFECTS = frozenset({"Send", "Recv", "TryRecv", "Charge"})
#: Pure notification effects; a catch-all branch may forward them.
NOTIFY_EFFECTS = frozenset(
    {
        "Speculated", "ComputeBegin", "Verified", "Corrected",
        "CascadeBegin", "CascadeStep", "CascadeEnd", "IterationDone",
        "WindowChanged", "FaultInjected", "Retransmit", "Degraded",
    }
)
#: The full effect alphabet of :mod:`repro.engine.events` (mirrored
#: here because a lint rule sees one file at a time; the test-suite
#: asserts this stays equal to the real ``Effect`` union).
EFFECT_ALPHABET = IO_EFFECTS | NOTIFY_EFFECTS


def _dispatch_names(test: ast.expr) -> set[str]:
    """Effect class names this branch test dispatches on.

    Recognises ``kind is Send`` / ``type(e) == Send`` comparisons and
    ``isinstance(e, (Send, Recv))`` calls.
    """
    names: set[str] = set()
    for node in ast.walk(test):
        if isinstance(node, ast.Compare):
            if all(isinstance(op, (ast.Is, ast.Eq)) for op in node.ops):
                for expr in [node.left, *node.comparators]:
                    tail = receiver_tail(expr)
                    if tail in EFFECT_ALPHABET:
                        names.add(tail)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "isinstance"
                and len(node.args) == 2
            ):
                second = node.args[1]
                exprs = second.elts if isinstance(second, ast.Tuple) else [second]
                for expr in exprs:
                    tail = receiver_tail(expr)
                    if tail in EFFECT_ALPHABET:
                        names.add(tail)
    return names


def _effect_chains(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.AST, set[str], bool]]:
    """Yield ``(head_node, dispatched_names, has_default)`` for every
    effect-dispatch chain (if/elif ladder or match statement) in the
    function's own body."""
    ifs = [n for n in walk_own_body(func) if isinstance(n, ast.If)]
    elif_nodes = {
        n.orelse[0]
        for n in ifs
        if len(n.orelse) == 1 and isinstance(n.orelse[0], ast.If)
    }
    for head in ifs:
        if head in elif_nodes:
            continue
        names: set[str] = set()
        node = head
        while True:
            names |= _dispatch_names(node.test)
            if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
                node = node.orelse[0]
            else:
                break
        if names:
            yield head, names, bool(node.orelse)
    for node in walk_own_body(func):
        if not isinstance(node, ast.Match):
            continue
        names = set()
        has_default = False
        for case in node.cases:
            pattern = case.pattern
            if isinstance(pattern, ast.MatchClass):
                tail = receiver_tail(pattern.cls)
                if tail in EFFECT_ALPHABET:
                    names.add(tail)
            elif isinstance(pattern, ast.MatchAs) and pattern.pattern is None:
                has_default = True
        if names:
            yield node, names, has_default


@register_rule(
    "SPL008",
    "effect-alphabet-exhaustiveness",
    Severity.ERROR,
    "transport effect-dispatch chain does not cover the whole effect "
    "alphabet (Send/Recv/TryRecv/Charge plus a default branch for "
    "notifications); unhandled effects are silently dropped",
)
def check_spl008(tree: ast.Module, path: str, source: str) -> Iterator[Diagnostic]:
    """An effect the interpreter skips never reaches the medium: a
    dropped ``Charge`` corrupts timing, a dropped ``TryRecv`` hangs a
    rank waiting for a response that never comes."""
    for func in iter_functions(tree):
        for head, names, has_default in _effect_chains(func):
            if "Send" not in names or len(names & IO_EFFECTS) < 2:
                # Every real interpreter routes Send; chains without a
                # Send branch (park-signature inspectors, notification
                # observers) are allowed to be partial.
                continue
            missing_io = sorted(IO_EFFECTS - names)
            if missing_io:
                yield _diag(
                    path,
                    head,
                    "SPL008",
                    Severity.ERROR,
                    f"effect dispatch in `{func.name}` never handles "
                    f"{', '.join(missing_io)}; every I/O effect the engine "
                    "can yield needs a branch (see repro.engine.events)",
                )
            if not has_default:
                missing_notify = sorted(NOTIFY_EFFECTS - names)
                if missing_notify:
                    yield _diag(
                        path,
                        head,
                        "SPL008",
                        Severity.ERROR,
                        f"effect dispatch in `{func.name}` has no default "
                        "branch and never handles the notification "
                        f"effect(s) {', '.join(missing_notify)}; add an "
                        "`else`/`case _` forwarding to the observer",
                    )
