"""Runtime adaptation of the forward window (deprecated surface).

The paper tunes FW and BW offline: "FW and BW are tuned for a given
algorithm and computing platform to maximize performance"
(Section 3.2).  This extension tunes FW *online*, per processor.

The controller itself now lives in :class:`repro.policy.AimdWindow`,
seated **inside** :class:`~repro.engine.core.SpecEngine` — so it runs
on every backend (DES, loopback, real processes), not just the
simulator.  What remains here is the historical driver-level surface:

* :class:`AdaptivePolicy` — the parameter bundle (unchanged API);
* :class:`AdaptiveSpeculativeDriver` — a thin shim over
  :class:`~repro.core.driver.SpeculativeDriver` that constructs the
  :class:`~repro.policy.AimdWindow` and exposes the old
  ``fw_history`` / ``final_windows()`` views, now reconstructed from
  the engines' ``WindowChanged`` effects.

New code should pass ``window_policy=AimdWindow(...)`` to
:func:`~repro.core.driver.run_program`, ``run_loopback`` or
``MPRunner`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.driver import SpeculativeDriver
from repro.core.program import SyncIterativeProgram
from repro.policy import AimdWindow
from repro.vm import Cluster


@dataclass(frozen=True)
class AdaptivePolicy:
    """Controller parameters for :class:`AdaptiveSpeculativeDriver`.

    Attributes
    ----------
    epoch:
        Iterations between adaptation decisions.
    min_fw / max_fw:
        Window bounds (``min_fw = 0`` allows falling back to the
        blocking algorithm when speculation never pays).
    wait_fraction:
        Widen when epoch wait time exceeds this fraction of the epoch's
        wall span.
    reject_low / reject_high:
        Rejection-rate thresholds: widening requires the epoch rate
        below ``reject_low``; above ``reject_high`` forces a shrink.
    """

    epoch: int = 4
    min_fw: int = 0
    max_fw: int = 4
    wait_fraction: float = 0.05
    reject_low: float = 0.10
    reject_high: float = 0.35

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError("epoch must be >= 1")
        if not 0 <= self.min_fw <= self.max_fw:
            raise ValueError("need 0 <= min_fw <= max_fw")
        if not 0 <= self.wait_fraction:
            raise ValueError("wait_fraction must be >= 0")
        if not 0 <= self.reject_low <= self.reject_high <= 1:
            raise ValueError("need 0 <= reject_low <= reject_high <= 1")

    def window(self) -> AimdWindow:
        """The equivalent engine-seated :class:`AimdWindow` template."""
        return AimdWindow(
            epoch=self.epoch,
            min_fw=self.min_fw,
            max_fw=self.max_fw,
            wait_fraction=self.wait_fraction,
            reject_low=self.reject_low,
            reject_high=self.reject_high,
        )


class AdaptiveSpeculativeDriver(SpeculativeDriver):
    """A speculative driver that retunes each rank's FW at runtime.

    Thin compatibility shim: constructs an
    :class:`~repro.policy.AimdWindow` from ``policy`` and seats it in
    every rank's engine via the base driver; ``fw_history`` (the base
    driver collects it from ``WindowChanged`` effects) and
    :meth:`final_windows` keep their historical shapes.

    Parameters
    ----------
    program / cluster:
        As for :class:`~repro.core.driver.SpeculativeDriver`.
    fw:
        *Initial* forward window for every rank.
    policy:
        Adaptation parameters.
    cascade:
        Correction cascade policy (see the base driver).
    """

    def __init__(
        self,
        program: SyncIterativeProgram,
        cluster: Cluster,
        fw: int = 1,
        policy: AdaptivePolicy = AdaptivePolicy(),
        cascade: str = "none",
        sanitize: Optional[bool] = None,
    ) -> None:
        if not policy.min_fw <= fw <= policy.max_fw:
            raise ValueError("initial fw must lie within [min_fw, max_fw]")
        super().__init__(
            program, cluster, fw=fw, cascade=cascade, sanitize=sanitize,
            window_policy=policy.window(),
        )
        self.policy = policy

    def final_windows(self) -> list[int]:
        """The FW each rank ended the run with."""
        return [history[-1][1] for history in self.fw_history]
