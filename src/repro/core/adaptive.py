"""Runtime adaptation of the forward window.

The paper tunes FW and BW offline: "FW and BW are tuned for a given
algorithm and computing platform to maximize performance"
(Section 3.2).  This extension tunes FW *online*, per processor, from
two observable signals:

* **waiting time** — virtual seconds blocked in the forward-window
  wait during the last epoch.  Waiting means the window is too small
  to absorb current delays → widen it.
* **rejection rate** — fraction of checks rejected during the epoch.
  Deep windows speculate across larger gaps; when the error-growth
  (gap²) makes rejections expensive, shrink the window.

The controller is deliberately simple (AIMD-flavoured): widen by one
when the epoch's wait exceeds ``wait_fraction`` of the epoch span and
rejections are below ``reject_low``; shrink by one when rejections
exceed ``reject_high``.  Each rank adapts independently — slower ranks
or ranks behind congested paths settle on different windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.driver import SpeculativeDriver
from repro.core.program import SyncIterativeProgram
from repro.engine.core import SpecEngine
from repro.vm import Cluster, VirtualProcessor


@dataclass(frozen=True)
class AdaptivePolicy:
    """Controller parameters for :class:`AdaptiveSpeculativeDriver`.

    Attributes
    ----------
    epoch:
        Iterations between adaptation decisions.
    min_fw / max_fw:
        Window bounds (``min_fw = 0`` allows falling back to the
        blocking algorithm when speculation never pays).
    wait_fraction:
        Widen when epoch wait time exceeds this fraction of the epoch's
        wall span.
    reject_low / reject_high:
        Rejection-rate thresholds: widening requires the epoch rate
        below ``reject_low``; above ``reject_high`` forces a shrink.
    """

    epoch: int = 4
    min_fw: int = 0
    max_fw: int = 4
    wait_fraction: float = 0.05
    reject_low: float = 0.10
    reject_high: float = 0.35

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError("epoch must be >= 1")
        if not 0 <= self.min_fw <= self.max_fw:
            raise ValueError("need 0 <= min_fw <= max_fw")
        if not 0 <= self.wait_fraction:
            raise ValueError("wait_fraction must be >= 0")
        if not 0 <= self.reject_low <= self.reject_high <= 1:
            raise ValueError("need 0 <= reject_low <= reject_high <= 1")


class AdaptiveSpeculativeDriver(SpeculativeDriver):
    """A speculative driver that retunes each rank's FW at runtime.

    Parameters
    ----------
    program / cluster:
        As for :class:`~repro.core.driver.SpeculativeDriver`.
    fw:
        *Initial* forward window for every rank.
    policy:
        Adaptation parameters.
    cascade:
        Correction cascade policy (see the base driver).
    """

    def __init__(
        self,
        program: SyncIterativeProgram,
        cluster: Cluster,
        fw: int = 1,
        policy: AdaptivePolicy = AdaptivePolicy(),
        cascade: str = "none",
        sanitize: Optional[bool] = None,
    ) -> None:
        super().__init__(program, cluster, fw=fw, cascade=cascade, sanitize=sanitize)
        if not policy.min_fw <= fw <= policy.max_fw:
            raise ValueError("initial fw must lie within [min_fw, max_fw]")
        self.policy = policy
        #: Per-rank trajectory of (iteration, new_fw) decisions.
        self.fw_history: list[list[tuple[int, int]]] = [
            [(0, fw)] for _ in range(cluster.size)
        ]
        self._epoch_marks: list[dict] = [
            {"start_time": 0.0, "checks": 0, "rejects": 0} for _ in range(cluster.size)
        ]

    def _post_iteration(self, proc: VirtualProcessor, st: SpecEngine, t: int) -> None:
        pol = self.policy
        if (t + 1) % pol.epoch != 0:
            return
        j = proc.rank
        stats = self._stats[j]
        mark = self._epoch_marks[j]

        span = proc.env.now - mark["start_time"]
        checks = stats.checks - mark["checks"]
        rejects = stats.spec_rejected - mark["rejects"]
        reject_rate = rejects / checks if checks else 0.0
        wait = st.epoch_wait

        new_fw = st.fw
        if reject_rate > pol.reject_high and st.fw > pol.min_fw:
            new_fw = st.fw - 1
        elif (
            span > 0
            and wait > pol.wait_fraction * span
            and reject_rate < pol.reject_low
            and st.fw < pol.max_fw
        ):
            new_fw = st.fw + 1

        if new_fw != st.fw:
            st.fw = new_fw
            self.fw_history[j].append((t + 1, new_fw))

        # Reset the epoch window.
        st.epoch_wait = 0.0
        mark["start_time"] = proc.env.now
        mark["checks"] = stats.checks
        mark["rejects"] = stats.spec_rejected

    def final_windows(self) -> list[int]:
        """The FW each rank ended the run with."""
        return [history[-1][1] for history in self.fw_history]
