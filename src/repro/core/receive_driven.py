"""The receive-driven baseline of Fig. 7 (incremental compute, no speculation).

The paper's actual no-speculation N-body (Fig. 7) does not wait for
*all* messages before computing: it processes each arriving message
immediately ("receive a message; compute force due to X_k"), summing
partial results, and finalises the update once everything has arrived.
That overlaps communication with the part of the computation whose
inputs are already present — a weaker, speculation-free form of
latency hiding, and the natural baseline to separate *overlap from
reordering* from *overlap from speculation*.

Programs opt in by implementing :class:`IncrementalProgram`'s three
kernels (begin / absorb / finish); the N-body app does.  Programs
without incremental structure should keep using the blocking driver
(``run_program(..., fw=0)``), which implements Fig. 1.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Any, Generator

from repro.analysis.sanitizer import sanitizer_from_env
from repro.core.program import Block, SyncIterativeProgram
from repro.core.results import RunResult, SpecStats
from repro.engine.core import ReceiveDrivenEngine, topology
from repro.engine.des_transport import DESTransport

# Re-exported for backwards compatibility: the authoritative definition
# of the message-tag family moved into the engine's effect alphabet.
from repro.engine.events import VARS  # noqa: F401
from repro.vm import Cluster, VirtualProcessor


class IncrementalProgram(SyncIterativeProgram):
    """A program whose compute decomposes over source blocks.

    The decomposition must satisfy::

        compute(rank, inputs, t) ==
            finish(rank,
                   absorb(rank, ... absorb(rank, begin(rank, own, t),
                                           k1, inputs[k1], t) ..., t),
                   own, t)

    for any absorption order — partial results are order-independent
    (e.g. force accumulation).
    """

    @abstractmethod
    def begin(self, rank: int, own: Block, t: int) -> Any:
        """Start an accumulator from the rank's own block (may include
        the own-block contribution, e.g. intra-block forces)."""

    @abstractmethod
    def absorb(self, rank: int, acc: Any, k: int, block: Block, t: int) -> Any:
        """Fold one remote block's contribution into the accumulator."""

    @abstractmethod
    def finish(self, rank: int, acc: Any, own: Block, t: int) -> Block:
        """Turn the completed accumulator into the next own block."""

    def begin_ops(self, rank: int) -> float:
        """Operations for :meth:`begin` (own-block part of the work)."""
        n_own = self._block_size(rank)
        total = self.compute_ops(rank)
        return total * n_own / max(self._total_size(), 1)

    def absorb_ops(self, rank: int, k: int) -> float:
        """Operations for absorbing block ``k``."""
        total = self.compute_ops(rank)
        return total * self._block_size(k) / max(self._total_size(), 1)

    def finish_ops(self, rank: int) -> float:
        """Operations for :meth:`finish` (the final state update)."""
        return 0.0

    def _total_size(self) -> int:
        return sum(self._block_size(k) for k in range(self.nprocs))


class ReceiveDrivenDriver:
    """Runs an :class:`IncrementalProgram` with Fig. 7 semantics.

    Per iteration: broadcast the own block, start the accumulator from
    local state, then absorb each message *as it arrives* (any order);
    when all expected blocks are in, finish the update and move on.

    The protocol itself is :class:`repro.engine.ReceiveDrivenEngine`;
    this driver builds one per rank and interprets its effects on the
    simulator through :class:`~repro.engine.des_transport.DESTransport`.
    """

    def __init__(self, program: IncrementalProgram, cluster: Cluster) -> None:
        if not isinstance(program, IncrementalProgram):
            raise TypeError("ReceiveDrivenDriver needs an IncrementalProgram")
        if cluster.size != program.nprocs:
            raise ValueError(
                f"cluster has {cluster.size} processors but program wants {program.nprocs}"
            )
        self.program = program
        self.cluster = cluster
        self._stats = [SpecStats(rank=r) for r in range(cluster.size)]
        self._needed, self._audience = topology(program)

    def run(self) -> RunResult:
        """Execute to completion; returns the measurements."""
        if self.cluster.env.sanitizer is None:
            # DES-level invariants only (no speculation happens here).
            self.cluster.env.sanitizer = sanitizer_from_env()
        finals = self.cluster.run(self._rank_program)
        for stats, proc in zip(self._stats, self.cluster.processors):
            stats.messages_sent = proc.sent_count
            stats.messages_received = proc.recv_count
        return RunResult(
            makespan=self.cluster.env.now,
            final_blocks={r: b for r, b in enumerate(finals)},
            traces=self.cluster.traces(),
            stats=self._stats,
            fw=0,
            iterations=self.program.iterations,
            capacities=self.cluster.capacities(),
        )

    def _rank_program(self, proc: VirtualProcessor) -> Generator:
        """One rank: a :class:`ReceiveDrivenEngine` over the simulator."""
        j = proc.rank
        engine = ReceiveDrivenEngine(
            self.program, j, self._needed[j], self._audience[j],
            stats=self._stats[j],
        )
        transport = DESTransport(proc, event_log=self.cluster.event_log)
        final = yield from transport.drive(engine)
        return final
