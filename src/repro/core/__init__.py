"""Speculative computation for synchronous iterative algorithms.

This package is the paper's primary contribution, implemented as a
reusable framework:

* :mod:`repro.core.speculators` — speculation functions x*_k(t) built
  from the backward window of past received values (zero-order hold,
  linear / constant-velocity, polynomial, weighted history).
* :mod:`repro.core.checkers` — generic error metrics comparing
  speculated against actual values.
* :mod:`repro.core.program` — the application interface: an
  application supplies its compute / speculate / check / correct
  kernels plus an operation-count cost model.
* :mod:`repro.core.driver` — the synchronous-iterative drivers:
  ``FW = 0`` reproduces the blocking algorithm of Fig. 1 / Fig. 7, and
  ``FW >= 1`` the speculative algorithm of Fig. 3 with forward-window
  pipelining (Fig. 4) and cascade recomputation on rejected
  speculations.
* :mod:`repro.core.results` — run results, speculation statistics and
  speedup calculations.
"""

from repro.core.adaptive import AdaptivePolicy, AdaptiveSpeculativeDriver
from repro.core.checkers import (
    ErrorMetric,
    MaxAbsoluteError,
    MaxRelativeError,
    RmsError,
)
from repro.core.driver import SpeculativeDriver, run_program
from repro.core.program import SyncIterativeProgram
from repro.core.receive_driven import IncrementalProgram, ReceiveDrivenDriver
from repro.core.results import RunResult, SpecStats, speedup, speedup_max
from repro.core.speculators import (
    DampedLinear,
    LinearExtrapolation,
    PolynomialExtrapolation,
    Speculator,
    WeightedHistory,
    ZeroOrderHold,
)

__all__ = [
    "AdaptivePolicy",
    "AdaptiveSpeculativeDriver",
    "DampedLinear",
    "ErrorMetric",
    "IncrementalProgram",
    "LinearExtrapolation",
    "MaxAbsoluteError",
    "MaxRelativeError",
    "PolynomialExtrapolation",
    "ReceiveDrivenDriver",
    "RmsError",
    "RunResult",
    "SpecStats",
    "Speculator",
    "SpeculativeDriver",
    "SyncIterativeProgram",
    "WeightedHistory",
    "ZeroOrderHold",
    "run_program",
    "speedup",
    "speedup_max",
]
