"""Run results, speculation statistics, and speedup helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.trace import PhaseBreakdown, PhaseTrace, merge_breakdowns


@dataclass
class SpecStats:
    """Per-processor speculation counters for one run.

    Attributes
    ----------
    spec_made:
        Speculated blocks used as compute inputs (includes cascade
        re-speculations).
    spec_accepted / spec_rejected:
        Outcomes of the error checks (``accepted + rejected == checks``).
    checks:
        Speculated blocks verified against the received actual value.
    recomputes:
        Block-iterations recomputed or corrected after a rejection
        (cascade recomputations count once per redone iteration).
    iterations:
        Iterations executed by this rank.
    tainted_sends:
        Blocks broadcast while at least one earlier speculation was
        still unverified (only possible with a forward window > 1).
    messages_sent / messages_received:
        Message counters.
    retransmits:
        Retransmission requests issued by the engine's resilience layer
        (sequence gaps detected; zero on fault-free transports).
    dups_suppressed:
        Duplicate sequenced arrivals discarded before the protocol core
        saw them (zero on fault-free transports).
    """

    rank: int = 0
    spec_made: int = 0
    spec_accepted: int = 0
    spec_rejected: int = 0
    checks: int = 0
    recomputes: int = 0
    iterations: int = 0
    tainted_sends: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    retransmits: int = 0
    dups_suppressed: int = 0

    @property
    def rejection_rate(self) -> float:
        """Fraction of checked speculations rejected (0 if none checked)."""
        return self.spec_rejected / self.checks if self.checks else 0.0


@dataclass
class RunResult:
    """Everything measured from one simulated run.

    Attributes
    ----------
    makespan:
        Virtual time from start to the last processor finishing.
    final_blocks:
        Mapping rank → final block (X_j at the last iteration).
    traces:
        Per-rank :class:`~repro.trace.PhaseTrace`.
    stats:
        Per-rank :class:`SpecStats`.
    fw:
        Forward window the run used (0 = no speculation).
    iterations:
        Iterations executed.
    capacities:
        Processor capacities M_i of the cluster that ran.
    window_history:
        Per-rank ``(iteration, fw)`` trajectories (seeded with the
        initial window; extended by WindowChanged effects when a
        window policy is seated).  Empty for legacy call sites.
    """

    makespan: float
    final_blocks: dict[int, Any]
    traces: list[PhaseTrace]
    stats: list[SpecStats]
    fw: int
    iterations: int
    capacities: list[float] = field(default_factory=list)
    window_history: list[list[tuple[int, int]]] = field(default_factory=list)

    def final_windows(self) -> list[int]:
        """The FW each rank ended the run with (see ``window_history``)."""
        return [history[-1][1] for history in self.window_history]

    @property
    def nprocs(self) -> int:
        """Number of processors in the run."""
        return len(self.traces)

    @property
    def time_per_iteration(self) -> float:
        """Average virtual time per iteration (the model's t_total)."""
        return self.makespan / self.iterations

    def breakdown(self, how: str = "max") -> PhaseBreakdown:
        """Cluster-level phase breakdown (see :func:`merge_breakdowns`)."""
        return merge_breakdowns([t.breakdown() for t in self.traces], how=how)

    def per_iteration_breakdown(self, how: str = "max") -> PhaseBreakdown:
        """Phase breakdown normalised per iteration (Table-2 shape)."""
        return self.breakdown(how=how).scaled(1.0 / self.iterations)

    def steady_breakdown(self, how: str = "max", skip: int = 1) -> PhaseBreakdown:
        """Per-iteration breakdown excluding the first ``skip`` warm-up
        iterations.

        Iteration 0 never communicates (X(0) is known everywhere from
        the initial read), so whole-run averages understate the
        steady-state communication time by a factor (T−1)/T; this view
        matches the paper's per-iteration Table 2 numbers.
        """
        if not 0 <= skip < self.iterations:
            raise ValueError("skip must be in [0, iterations)")
        span = self.iterations - skip
        breakdowns = []
        for trace in self.traces:
            sub = type(trace)(trace.rank)
            sub.intervals = [
                iv
                for iv in trace.intervals
                if iv.iteration is None or iv.iteration >= skip
            ]
            breakdowns.append(sub.breakdown())
        return merge_breakdowns(breakdowns, how=how).scaled(1.0 / span)

    @property
    def recompute_fraction(self) -> float:
        """Corrections per checked speculation (cascades included).

        ``Σ recomputes / Σ checks``: 0 when every speculation was
        accepted; can exceed the rejection rate when forward-window
        cascades redo several iterations per rejection.
        """
        checks = sum(s.checks for s in self.stats)
        if checks == 0:
            return 0.0
        return sum(s.recomputes for s in self.stats) / checks

    def measured_k(self, skip: int = 1) -> float:
        """The model's k, measured: correction time over compute time.

        Eq. 8's penalty term is ``k · N_i · f_comp / M_i`` — i.e. k is
        the recomputation cost as a fraction of a full compute phase —
        so the measured analogue is the steady-state ratio of the
        ``correct`` phase to the ``compute`` phase.
        """
        b = self.steady_breakdown(skip=skip) if self.iterations > skip else self.breakdown()
        comp = b["compute"]
        if comp == 0:
            return 0.0
        return b["correct"] / comp

    @property
    def rejection_rate(self) -> float:
        """Cluster-wide fraction of checked speculations rejected."""
        checks = sum(s.checks for s in self.stats)
        if checks == 0:
            return 0.0
        return sum(s.spec_rejected for s in self.stats) / checks

    def summary(self) -> dict:
        """Plain-data summary (JSON-serialisable) of the run.

        Contains the headline timings, the steady per-iteration phase
        breakdown, and aggregated speculation statistics — everything a
        results pipeline typically wants, none of the block payloads.
        """
        steady = (
            self.steady_breakdown() if self.iterations > 1 else self.per_iteration_breakdown()
        )
        return {
            "nprocs": self.nprocs,
            "fw": self.fw,
            "iterations": self.iterations,
            "makespan": self.makespan,
            "time_per_iteration": self.time_per_iteration,
            "steady_phase_seconds": {k: v for k, v in steady.totals.items()},
            "rejection_rate": self.rejection_rate,
            "recompute_fraction": self.recompute_fraction,
            "measured_k": self.measured_k() if self.iterations > 1 else 0.0,
            "tainted_sends": sum(s.tainted_sends for s in self.stats),
            "messages_sent": sum(s.messages_sent for s in self.stats),
            "capacities": list(self.capacities),
        }

    def __repr__(self) -> str:
        return (
            f"<RunResult p={self.nprocs} FW={self.fw} makespan={self.makespan:.6g} "
            f"k={self.recompute_fraction:.3%}>"
        )


def speedup(serial_time: float, parallel_time: float) -> float:
    """The paper's speedup: execution time on P1 over time on {P1..Pp}."""
    if serial_time <= 0 or parallel_time <= 0:
        raise ValueError("times must be positive")
    return serial_time / parallel_time


def speedup_max(capacities: Sequence[float]) -> float:
    """Maximum attainable speedup: Σ M_i / M_1 (capacities fastest-first)."""
    caps = list(capacities)
    if not caps:
        raise ValueError("need at least one capacity")
    if any(c <= 0 for c in caps):
        raise ValueError("capacities must be positive")
    return sum(caps) / caps[0]
