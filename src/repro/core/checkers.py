"""Generic error metrics for speculated-vs-actual comparison.

The acceptance rule of the paper (Section 3.1) is::

    error = compare(X_k(t), X*_k(t))
    if error > threshold: correct / recompute

``compare`` is application-specific (the N-body app implements the
pairwise Eq. 11 metric); these generic metrics serve array-valued
applications that lack domain structure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class ErrorMetric(ABC):
    """Scalar discrepancy between a speculated and an actual block."""

    @abstractmethod
    def error(self, speculated: np.ndarray, actual: np.ndarray) -> float:
        """Non-negative scalar error; 0 means the speculation was exact."""

    @staticmethod
    def _validate(speculated: np.ndarray, actual: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        s = np.asarray(speculated, dtype=float)
        a = np.asarray(actual, dtype=float)
        if s.shape != a.shape:
            raise ValueError(f"shape mismatch: {s.shape} vs {a.shape}")
        return s, a


class MaxAbsoluteError(ErrorMetric):
    """max |x* - x| over all variables in the block."""

    def error(self, speculated, actual):
        s, a = self._validate(speculated, actual)
        if s.size == 0:
            return 0.0
        return float(np.max(np.abs(s - a)))


class MaxRelativeError(ErrorMetric):
    """max |x* - x| / (|x| + eps): scale-free per-variable error.

    ``eps`` guards against division by zero for near-zero actual
    values.
    """

    def __init__(self, eps: float = 1e-12) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = eps

    def error(self, speculated, actual):
        s, a = self._validate(speculated, actual)
        if s.size == 0:
            return 0.0
        return float(np.max(np.abs(s - a) / (np.abs(a) + self.eps)))


class RmsError(ErrorMetric):
    """Root-mean-square of (x* - x) over the block."""

    def error(self, speculated, actual):
        s, a = self._validate(speculated, actual)
        if s.size == 0:
            return 0.0
        return float(np.sqrt(np.mean((s - a) ** 2)))
