"""Synchronous-iterative drivers: blocking (Fig. 1/7) and speculative (Fig. 3/4).

One driver, parameterised by the forward window FW:

* ``fw = 0`` — the classical blocking algorithm: every processor
  receives all X_k(t) before computing X_j(t+1) (Fig. 1; for N-body,
  Fig. 7).
* ``fw >= 1`` — the speculative algorithm: missing inputs are
  speculated, computation proceeds, and stragglers are verified when
  they arrive (Fig. 3).  ``fw`` bounds how many iterations the
  processor may run ahead of its oldest unverified iteration
  (Section 3.2's forward window, Fig. 4).

Verification and correction semantics
-------------------------------------
When the actual X_k(t) arrives for a speculated input, the processor
pays the check cost and evaluates the application's error metric.  If
the error exceeds the threshold θ:

* iteration t is repaired via the application's ``correct`` hook
  (full recomputation by default, or an incremental fix-up); and
* any iterations already computed *after* t (only possible with
  fw > 1) are recomputed in order — a *cascade* — because their own
  chain consumed the rejected value; still-missing remote inputs are
  re-speculated from the now-improved history.

Corrections are **local**, as in the paper: blocks already broadcast
from speculative state are not re-sent (counted as ``tainted_sends``);
synchronous iterative algorithms self-correct because full state is
re-exchanged every iteration and errors below θ are tolerated by
construction.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.analysis.sanitizer import ProtocolSanitizer, sanitizer_from_env
from repro.core.program import Block, SyncIterativeProgram
from repro.core.results import RunResult, SpecStats
from repro.vm import Cluster, VirtualProcessor

#: Message-tag family used by the drivers.
VARS = "vars"


class _RankState:
    """Per-rank bookkeeping for one run (internal)."""

    def __init__(
        self,
        rank: int,
        program: SyncIterativeProgram,
        hist_cap: int,
        needed: frozenset[int],
    ) -> None:
        p = program.nprocs
        self.rank = rank
        #: Ranks whose blocks this rank's compute reads.
        self.needed = needed
        #: Own chain: chain[t] = X_rank(t); seeded with the initial block.
        self.chain: dict[int, Block] = {0: program.initial_block(rank)}
        #: Received (or initial) remote blocks: (k, t) -> block.
        self.actual: dict[tuple[int, int], Block] = {}
        #: Speculated values currently standing in for missing inputs.
        self.spec_used: dict[tuple[int, int], Block] = {}
        #: Exact inputs used to compute chain[t+1] (for corrections).
        self.inputs_used: dict[int, dict[int, Block]] = {}
        #: Bounded history of actuals per remote rank: deque of (t, block).
        self.history: dict[int, deque] = {}
        #: Remaining messages expected for iteration t (t >= 1).
        self.missing: dict[int, int] = {}
        #: Largest v such that iterations 0..v are fully received.
        self.verified_upto = 0
        #: Next iteration to compute (chain[frontier] is the newest block).
        self.frontier = 0
        #: Current forward window for this rank (drivers may adapt it).
        self.fw = 0
        #: Virtual seconds spent blocked in window waits this epoch.
        self.epoch_wait = 0.0
        for k in needed:
            block0 = program.initial_block(k)
            self.actual[(k, 0)] = block0
            self.history[k] = deque([(0, block0)], maxlen=hist_cap)
        if not needed:
            # No remote inputs exist; every iteration is vacuously
            # verified, so the windows never block.
            self.verified_upto = program.iterations

    def record_arrival(self, k: int, t: int, block: Block, expected: int) -> None:
        """Store an actual block and advance the verified horizon."""
        self.actual[(k, t)] = block
        hist = self.history[k]
        if hist and hist[-1][0] >= t:
            raise RuntimeError(
                f"out-of-order arrival from rank {k}: got t={t} after t={hist[-1][0]}"
            )
        hist.append((t, block))
        self.missing[t] = self.missing.get(t, expected) - 1
        while self.missing.get(self.verified_upto + 1, expected) == 0:
            self.verified_upto += 1

    def history_for(self, k: int) -> tuple[list[int], list[Block]]:
        """(times, values) of the known actuals from rank ``k``."""
        times = [t for t, _ in self.history[k]]
        values = [b for _, b in self.history[k]]
        return times, values

    def prune(self) -> None:
        """Drop bookkeeping no correction can ever need again.

        Iterations strictly below both ``verified_upto`` (complete:
        every message arrived, every check ran) and ``frontier`` (we
        are past them locally) can never be read again — their inputs
        and stale actuals are dead weight.
        """
        horizon = min(self.verified_upto, self.frontier)
        for t in [t for t in self.inputs_used if t < horizon]:
            del self.inputs_used[t]
        for key in [key for key in self.actual if key[1] < horizon]:
            del self.actual[key]
        for t in [t for t in self.missing if t < horizon]:
            del self.missing[t]
        for t in [t for t in self.chain if t < horizon - 1]:
            del self.chain[t]


class SpeculativeDriver:
    """Runs a :class:`SyncIterativeProgram` on a :class:`Cluster`.

    Parameters
    ----------
    program:
        The application (numerics + cost model).
    cluster:
        The virtual machine; ``cluster.size`` must equal
        ``program.nprocs``.
    fw:
        Forward window; 0 disables speculation entirely.
    cascade:
        What to do with iterations computed *after* a rejected one
        (reachable only when fw >= 2):

        * ``"recompute"`` (default) — redo them in order from the
          corrected state, re-speculating still-missing inputs.
          Rigorous: with θ = 0 the local chain always equals what a
          blocking run would have produced from the same inputs.
        * ``"none"`` — correct only the iteration whose message just
          arrived, as the paper's implementation does ("the resultant
          force is recomputed"); downstream iterations keep their
          slightly stale own-state, bounded by θ, and are repaired
          implicitly as fresher messages arrive.  Far cheaper under
          deep forward windows.
    sanitize:
        Run under the :class:`~repro.analysis.sanitizer.ProtocolSanitizer`,
        which asserts DES and forward-window invariants as the
        simulation executes.  ``None`` (default) defers to the
        ``REPRO_SANITIZE`` environment variable.
    """

    def __init__(
        self,
        program: SyncIterativeProgram,
        cluster: Cluster,
        fw: int = 1,
        cascade: str = "recompute",
        sanitize: Optional[bool] = None,
    ) -> None:
        if fw < 0:
            raise ValueError("fw must be >= 0")
        if cascade not in ("recompute", "none"):
            raise ValueError(f"unknown cascade policy {cascade!r}")
        self.cascade = cascade
        if cluster.size != program.nprocs:
            raise ValueError(
                f"cluster has {cluster.size} processors but program wants {program.nprocs}"
            )
        self.program = program
        self.cluster = cluster
        self.fw = fw
        if sanitize is None:
            self.sanitizer: Optional[ProtocolSanitizer] = sanitizer_from_env()
        else:
            self.sanitizer = ProtocolSanitizer() if sanitize else None
        hist_cap = max(getattr(program.speculator, "backward_window", 1), 2) + 2
        self._hist_cap = hist_cap
        self._stats = [SpecStats(rank=r) for r in range(cluster.size)]
        #: needed[j]: ranks whose blocks j reads (validated once here).
        self._needed = []
        for j in range(cluster.size):
            needed = frozenset(program.needed(j))
            if j in needed or not needed <= set(range(cluster.size)):
                raise ValueError(f"invalid needed set for rank {j}: {sorted(needed)}")
            self._needed.append(needed)
        #: audience[j]: ranks that read j's block (who j must send to).
        self._audience = [
            [k for k in range(cluster.size) if j in self._needed[k]]
            for j in range(cluster.size)
        ]

    # ------------------------------------------------------------------ run
    def run(self) -> RunResult:
        """Execute the program to completion; returns the measurements."""
        if self.sanitizer is not None:
            self.cluster.env.sanitizer = self.sanitizer
        finals = self.cluster.run(self._rank_program)
        if self.sanitizer is not None:
            self.sanitizer.on_run_end()
        for stats, proc in zip(self._stats, self.cluster.processors):
            stats.messages_sent = proc.sent_count
            stats.messages_received = proc.recv_count
        return RunResult(
            makespan=self.cluster.env.now,
            final_blocks={r: b for r, b in enumerate(finals)},
            traces=self.cluster.traces(),
            stats=self._stats,
            fw=self.fw,
            iterations=self.program.iterations,
            capacities=self.cluster.capacities(),
        )

    # ---------------------------------------------------------- per-rank code
    def _rank_program(self, proc: VirtualProcessor) -> Generator:
        prog = self.program
        j = proc.rank
        T = prog.iterations
        st = _RankState(j, prog, self._hist_cap, self._needed[j])
        st.fw = self.fw
        stats = self._stats[j]
        san = self.sanitizer

        for t in range(T):
            # 1. Opportunistically absorb whatever has already arrived.
            yield from self._drain(proc, st)

            # 2a. Pre-send window: Fig. 3 sends X_j(t) only after the
            #     previous iteration's trailing verification loop, so any
            #     correction of X_j(t) lands *before* it goes on the wire.
            #     (With fw >= 2 the processor is allowed to run further
            #     ahead and sends may be tainted — counted below.)
            pre_horizon = self._pre_send_horizon(st, t)
            while st.verified_upto < pre_horizon:
                wait_start = proc.env.now
                msg = yield from proc.recv(phase="comm", iteration=t)
                st.epoch_wait += proc.env.now - wait_start
                yield from self._process_message(proc, st, msg)

            # 2b. Broadcast X_j(t) (iteration 0 is known everywhere from
            #     the initial read; no message needed).
            if t > 0 and self._audience[j]:
                if any(key[1] < t for key in st.spec_used):
                    stats.tainted_sends += 1
                for dst in self._audience[j]:
                    proc.send(
                        dst, st.chain[t], tag=(VARS, t), nbytes=prog.block_nbytes(j)
                    )
                pack = prog.send_ops(j) * len(self._audience[j])
                if pack > 0:
                    # Sender-side software cost (PVM pack); serial with
                    # the sender's own progress, like the real stack.
                    yield from proc.compute(pack, phase="comm", iteration=t)

            # 2c. Post-send window: with fw = 0 this is the blocking
            #     receive of Fig. 1 — all X_k(t) must arrive before the
            #     compute phase; with fw >= 1 it is a no-op beyond 2a.
            while not self._window_ok(st, t):
                wait_start = proc.env.now
                msg = yield from proc.recv(phase="comm", iteration=t)
                st.epoch_wait += proc.env.now - wait_start
                yield from self._process_message(proc, st, msg)

            # 3. Assemble inputs for iteration t, speculating what is missing.
            inputs: dict[int, Block] = {j: st.chain[t]}
            for k in sorted(st.needed):
                known = st.actual.get((k, t))
                if known is not None:
                    inputs[k] = known
                else:
                    times, values = st.history_for(k)
                    spec = prog.speculate(j, k, times, values, t)
                    yield from proc.compute(
                        prog.speculate_ops(j, k), phase="spec", iteration=t
                    )
                    st.spec_used[(k, t)] = spec
                    inputs[k] = spec
                    stats.spec_made += 1
                    if san is not None:
                        san.on_speculate(j, k, t)
                    if self.cluster.event_log is not None:
                        self.cluster.event_log.record(
                            "speculate", j, proc.env.now, peer=k,
                            family=VARS, iteration=t,
                        )
            st.inputs_used[t] = inputs

            # 4. Compute X_j(t+1).
            if san is not None:
                san.on_compute_begin(j, t, st.verified_upto, st.fw)
            if self.cluster.event_log is not None:
                self.cluster.event_log.record(
                    "compute", j, proc.env.now, iteration=t
                )
            new_block = prog.compute(j, inputs, t)
            yield from proc.compute(prog.compute_ops(j), phase="compute", iteration=t)
            st.chain[t + 1] = new_block
            st.frontier = t + 1
            stats.iterations += 1
            st.prune()
            self._post_iteration(proc, st, t)

        # 6. Final verification: wait out all stragglers so every
        #    speculation is checked and corrected before reporting.
        while st.verified_upto < T - 1:
            msg = yield from proc.recv(phase="comm", iteration=T - 1)
            yield from self._process_message(proc, st, msg)

        return st.chain[T]

    def _pre_send_horizon(self, st: _RankState, t: int) -> int:
        """Oldest iteration that must be verified before X_j(t) is sent.

        Fig. 3 sends X_j(t) only once the trailing verification loop has
        caught up to ``t - max(fw, 1)``, so corrections land before the
        block goes on the wire.  Factored out (together with
        :meth:`_window_ok`) so tests can sabotage the gates and prove
        the runtime sanitizer catches the resulting window violations.
        """
        return t - max(st.fw, 1)

    def _window_ok(self, st: _RankState, t: int) -> bool:
        """May iteration ``t`` start given the rank's forward window?"""
        if st.fw == 0:
            return st.verified_upto >= t
        return st.verified_upto >= t - st.fw

    def _post_iteration(self, proc: VirtualProcessor, st: _RankState, t: int) -> None:
        """Hook called after each completed iteration (adaptive drivers
        override this to retune the rank's window)."""

    # ------------------------------------------------------------- messages
    def _drain(self, proc: VirtualProcessor, st: _RankState) -> Generator:
        """Process every message already waiting in the mailbox."""
        while True:
            msg = proc.try_recv()
            if msg is None:
                return
            yield from self._process_message(proc, st, msg)

    def _process_message(self, proc: VirtualProcessor, st: _RankState, msg) -> Generator:
        """Store an arrival; verify (and maybe correct) a past speculation."""
        prog = self.program
        j = proc.rank
        stats = self._stats[j]
        kind, t = msg.tag
        if kind != VARS:  # pragma: no cover - no other traffic exists
            raise RuntimeError(f"unexpected message tag {msg.tag!r}")
        k = msg.src
        if k not in st.needed:  # pragma: no cover - audience routing prevents this
            return
        actual = msg.payload
        st.record_arrival(k, t, actual, expected=len(st.needed))

        spec = st.spec_used.pop((k, t), None)
        if spec is None:
            return  # arrived before we needed it: no speculation to verify

        if self.sanitizer is not None:
            self.sanitizer.on_verify(j, k, t)
        if self.cluster.event_log is not None:
            self.cluster.event_log.record(
                "verify", j, proc.env.now, peer=k, family=VARS, iteration=t
            )
        yield from proc.compute(prog.check_ops(j, k), phase="check", iteration=t)
        stats.checks += 1
        own = st.chain[t]
        error = prog.check(j, k, spec, actual, own)
        if error <= prog.threshold:
            stats.spec_accepted += 1
            return
        stats.spec_rejected += 1
        yield from self._cascade_recompute(proc, st, k, t, spec, actual)

    def _cascade_recompute(
        self,
        proc: VirtualProcessor,
        st: _RankState,
        k: int,
        t: int,
        spec: Block,
        actual: Block,
    ) -> Generator:
        """Repair iteration ``t`` and recompute everything after it."""
        prog = self.program
        j = proc.rank
        stats = self._stats[j]
        san = self.sanitizer
        if san is not None:
            san.on_cascade_begin(j, t)

        # Repair iteration t itself via the (possibly incremental)
        # application correction hook.
        inputs = st.inputs_used[t]
        corrected, ops = prog.correct(
            j, st.chain[t + 1], inputs, k, spec, actual, t
        )
        inputs[k] = actual
        yield from proc.compute(ops, phase="correct", iteration=t)
        st.chain[t + 1] = corrected
        stats.recomputes += 1
        if self.cluster.event_log is not None:
            self.cluster.event_log.record(
                "correct", j, proc.env.now, peer=k, family=VARS, iteration=t
            )

        if self.cascade == "none":
            if san is not None:
                san.on_cascade_end(j)
            return

        # Cascade: iterations t+1 .. frontier-1 consumed the old chain.
        for t2 in range(t + 1, st.frontier):
            if san is not None:
                san.on_cascade_step(j, t2)
            if self.cluster.event_log is not None:
                self.cluster.event_log.record(
                    "correct", j, proc.env.now, peer=k, family=VARS, iteration=t2
                )
            inputs2 = st.inputs_used[t2]
            inputs2[j] = st.chain[t2]
            for k2 in sorted(st.needed):
                if (k2, t2) in st.spec_used:
                    times, values = st.history_for(k2)
                    respec = prog.speculate(j, k2, times, values, t2)
                    yield from proc.compute(
                        prog.speculate_ops(j, k2), phase="correct", iteration=t2
                    )
                    st.spec_used[(k2, t2)] = respec
                    inputs2[k2] = respec
                    stats.spec_made += 1
                    if san is not None:
                        san.on_speculate(j, k2, t2)
            new_block = prog.compute(j, inputs2, t2)
            yield from proc.compute(
                prog.compute_ops(j), phase="correct", iteration=t2
            )
            st.chain[t2 + 1] = new_block
            stats.recomputes += 1
        if san is not None:
            san.on_cascade_end(j)


def run_program(
    program: SyncIterativeProgram,
    cluster: Cluster,
    fw: int = 1,
    cascade: str = "recompute",
    sanitize: Optional[bool] = None,
) -> RunResult:
    """Convenience wrapper: build a driver and run it."""
    return SpeculativeDriver(
        program, cluster, fw=fw, cascade=cascade, sanitize=sanitize
    ).run()
