"""Synchronous-iterative drivers: blocking (Fig. 1/7) and speculative (Fig. 3/4).

One driver, parameterised by the forward window FW:

* ``fw = 0`` — the classical blocking algorithm: every processor
  receives all X_k(t) before computing X_j(t+1) (Fig. 1; for N-body,
  Fig. 7).
* ``fw >= 1`` — the speculative algorithm: missing inputs are
  speculated, computation proceeds, and stragglers are verified when
  they arrive (Fig. 3).  ``fw`` bounds how many iterations the
  processor may run ahead of its oldest unverified iteration
  (Section 3.2's forward window, Fig. 4).

The protocol itself lives in :class:`repro.engine.SpecEngine` — a
sans-I/O state machine shared with the loopback and multiprocessing
backends.  This driver owns only what is DES-specific: building one
engine per rank, interpreting its effects against the rank's
:class:`~repro.vm.processor.VirtualProcessor` through
:class:`~repro.engine.des_transport.DESTransport`, and collecting the
run's measurements.

Verification and correction semantics
-------------------------------------
When the actual X_k(t) arrives for a speculated input, the processor
pays the check cost and evaluates the application's error metric.  If
the error exceeds the threshold θ:

* iteration t is repaired via the application's ``correct`` hook
  (full recomputation by default, or an incremental fix-up); and
* any iterations already computed *after* t (only possible with
  fw > 1) are recomputed in order — a *cascade* — because their own
  chain consumed the rejected value; still-missing remote inputs are
  re-speculated from the now-improved history.

Corrections are **local**, as in the paper: blocks already broadcast
from speculative state are not re-sent (counted as ``tainted_sends``);
synchronous iterative algorithms self-correct because full state is
re-exchanged every iteration and errors below θ are tolerated by
construction.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.analysis.sanitizer import ProtocolSanitizer, sanitizer_from_env
from repro.core.program import SyncIterativeProgram
from repro.core.results import RunResult, SpecStats
from repro.engine.core import (
    SpecEngine,
    default_hist_cap,
    default_pre_send_horizon,
    default_window_ok,
    topology,
)
from repro.engine.des_transport import DESTransport

# Re-exported for backwards compatibility: the authoritative definition
# of the message-tag family moved into the engine's effect alphabet.
from repro.engine.events import VARS  # noqa: F401
from repro.faults import FaultPlan, wrap_engine
from repro.policy import CascadePolicy, WindowPolicy
from repro.vm import Cluster, VirtualProcessor


class SpeculativeDriver:
    """Runs a :class:`SyncIterativeProgram` on a :class:`Cluster`.

    Parameters
    ----------
    program:
        The application (numerics + cost model).
    cluster:
        The virtual machine; ``cluster.size`` must equal
        ``program.nprocs``.
    fw:
        Forward window; 0 disables speculation entirely.
    cascade:
        What to do with iterations computed *after* a rejected one
        (reachable only when fw >= 2):

        * ``"recompute"`` (default) — redo them in order from the
          corrected state, re-speculating still-missing inputs.
          Rigorous: with θ = 0 the local chain always equals what a
          blocking run would have produced from the same inputs.
        * ``"none"`` — correct only the iteration whose message just
          arrived, as the paper's implementation does ("the resultant
          force is recomputed"); downstream iterations keep their
          slightly stale own-state, bounded by θ, and are repaired
          implicitly as fresher messages arrive.  Far cheaper under
          deep forward windows.
    sanitize:
        Run under the :class:`~repro.analysis.sanitizer.ProtocolSanitizer`,
        which asserts DES and forward-window invariants as the
        simulation executes.  ``None`` (default) defers to the
        ``REPRO_SANITIZE`` environment variable.
    window_policy:
        Optional :class:`~repro.policy.WindowPolicy` template seated
        inside every rank's engine; each rank spawns a private copy
        and adapts independently.  ``fw`` is then the initial window;
        decisions land in :attr:`fw_history` (and in
        ``RunResult.window_history``).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; each rank's engine
        is wrapped in the fault middleware
        (:func:`~repro.faults.wrap_engine`), injecting the plan's
        seeded drops/duplicates/delays/reorders on the receive path
        with retransmit backoff paid in *virtual* time.
    """

    def __init__(
        self,
        program: SyncIterativeProgram,
        cluster: Cluster,
        fw: int = 1,
        cascade: "CascadePolicy | str" = CascadePolicy.RECOMPUTE,
        sanitize: Optional[bool] = None,
        window_policy: Optional[WindowPolicy] = None,
        fault_plan: Optional["FaultPlan"] = None,
        hist_cap: Optional[int] = None,
    ) -> None:
        if fw < 0:
            raise ValueError("fw must be >= 0")
        self.cascade = CascadePolicy.coerce(cascade)
        if cluster.size != program.nprocs:
            raise ValueError(
                f"cluster has {cluster.size} processors but program wants {program.nprocs}"
            )
        self.program = program
        self.cluster = cluster
        self.fw = fw
        if sanitize is None:
            self.sanitizer: Optional[ProtocolSanitizer] = sanitizer_from_env()
        else:
            self.sanitizer = ProtocolSanitizer() if sanitize else None
        self._hist_cap = (
            hist_cap if hist_cap is not None else default_hist_cap(program)
        )
        self._stats = [SpecStats(rank=r) for r in range(cluster.size)]
        #: needed[j] / audience[j]: validated dependency topology.
        self._needed, self._audience = topology(program)
        #: Template window policy; each engine spawns a private copy.
        self.window_policy = window_policy
        #: Optional fault plan wrapped around every rank's engine.
        self.fault_plan = fault_plan
        #: Per-rank injector receipts, filled as rank programs build.
        self.fault_summaries: list = []
        #: Per-rank (iteration, fw) trajectory, seeded with the initial
        #: window; grown from the engines' WindowChanged effects.
        self.fw_history: list[list[tuple[int, int]]] = [
            [(0, fw)] for _ in range(cluster.size)
        ]

    # ------------------------------------------------------------------ run
    def run(self) -> RunResult:
        """Execute the program to completion; returns the measurements."""
        if self.sanitizer is not None:
            self.cluster.env.sanitizer = self.sanitizer
        finals = self.cluster.run(self._rank_program)
        if self.sanitizer is not None:
            self.sanitizer.on_run_end()
        for stats, proc in zip(self._stats, self.cluster.processors):
            stats.messages_sent = proc.sent_count
            stats.messages_received = proc.recv_count
        return RunResult(
            makespan=self.cluster.env.now,
            final_blocks={r: b for r, b in enumerate(finals)},
            traces=self.cluster.traces(),
            stats=self._stats,
            fw=self.fw,
            iterations=self.program.iterations,
            capacities=self.cluster.capacities(),
            window_history=self.fw_history,
        )

    # ---------------------------------------------------------- per-rank code
    def _rank_program(self, proc: VirtualProcessor) -> Generator:
        """One rank: a :class:`SpecEngine` driven over the simulator."""
        j = proc.rank
        engine = self._make_engine(j)
        if self.fault_plan is not None:
            # charge_poll: DES recvs have no timeout, so retransmit
            # backoff is paid as TryRecv + Charge polls in virtual time.
            engine = wrap_engine(engine, self.fault_plan, charge_poll=True)
            self.fault_summaries.append(engine.injector.summary)
        transport = DESTransport(
            proc,
            sanitizer=self.sanitizer,
            event_log=self.cluster.event_log,
            on_iteration=lambda t: self._post_iteration(proc, engine, t),
            on_window=lambda eff: self.fw_history[j].append(
                (eff.iteration, eff.new_fw)
            ),
        )
        final = yield from transport.drive(engine)
        return final

    def _make_engine(self, rank: int) -> SpecEngine:
        """Build rank ``rank``'s protocol state machine."""
        retry_kwargs = (
            {}
            if self.fault_plan is None
            else {
                "max_retries": self.fault_plan.max_retries,
                "retry_backoff": self.fault_plan.retry_backoff,
            }
        )
        return SpecEngine(
            self.program,
            rank,
            self._needed[rank],
            self._audience[rank],
            fw=self.fw,
            cascade=self.cascade,
            hist_cap=self._hist_cap,
            stats=self._stats[rank],
            # Bound methods so subclasses (and the sanitizer tests,
            # which deliberately sabotage the gates) keep overriding
            # the forward-window policy at the driver level.
            pre_send_horizon=self._pre_send_horizon,
            window_ok=self._window_ok,
            policy=self.window_policy,
            sanitizer=self.sanitizer,
            **retry_kwargs,
        )

    # ----------------------------------------------------------- extension
    def _pre_send_horizon(self, st: SpecEngine, t: int) -> int:
        """Oldest iteration that must be verified before X_j(t) is sent.

        Delegates to the engine's default gate; factored out (together
        with :meth:`_window_ok`) so tests can sabotage the gates and
        prove the runtime sanitizer catches the resulting window
        violations.
        """
        return default_pre_send_horizon(st, t)

    def _window_ok(self, st: SpecEngine, t: int) -> bool:
        """May iteration ``t`` start given the rank's forward window?"""
        return default_window_ok(st, t)

    def _post_iteration(self, proc: VirtualProcessor, st: SpecEngine, t: int) -> None:
        """Hook called after each completed iteration (adaptive drivers
        override this to retune the rank's window)."""


def run_program(
    program: SyncIterativeProgram,
    cluster: Cluster,
    fw: int = 1,
    cascade: "CascadePolicy | str" = CascadePolicy.RECOMPUTE,
    sanitize: Optional[bool] = None,
    window_policy: Optional[WindowPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    hist_cap: Optional[int] = None,
) -> RunResult:
    """Convenience wrapper: build a driver and run it.

    Prefer :func:`repro.api.run` for new code — it runs the same
    configuration on any backend and returns one report type.
    """
    return SpeculativeDriver(
        program, cluster, fw=fw, cascade=cascade, sanitize=sanitize,
        window_policy=window_policy, fault_plan=fault_plan,
        hist_cap=hist_cap,
    ).run()
