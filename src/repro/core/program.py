"""The application interface for synchronous iterative algorithms.

A :class:`SyncIterativeProgram` describes one application in the
paper's model (Section 2)::

    X(t+1) = F(X(t), X(t-1), ...)

partitioned into per-processor *blocks*.  The driver
(:mod:`repro.core.driver`) calls back into the program for:

* the real numerics (``compute``, ``speculate``, ``check``,
  ``correct``) — executed for every simulated processor so that
  speculation errors and recomputation rates *emerge from the
  application*, exactly as on the paper's testbed; and
* the cost model (``*_ops`` methods) — operation counts that the
  virtual processors convert to virtual time at their capacity M_i.

Blocks are opaque to the driver (usually numpy arrays, or small
structures of arrays like the N-body ``(positions, velocities)``
pair); the only requirements are that ``compute`` is a *pure function*
of its inputs (enabling recomputation) and blocks are never mutated in
place after being returned.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.core.checkers import ErrorMetric, MaxRelativeError
from repro.core.speculators import Speculator, ZeroOrderHold

#: Opaque per-processor state; typically numpy arrays.
Block = Any


class SyncIterativeProgram(ABC):
    """One synchronous iterative application + its cost model.

    Subclasses must implement the abstract methods; the speculation,
    checking and correction hooks have sensible defaults built from
    :attr:`speculator` / :attr:`error_metric` and full recomputation.

    Attributes
    ----------
    nprocs:
        Number of processor blocks the problem is partitioned into.
    iterations:
        Number of synchronous iterations to run.
    threshold:
        Acceptance threshold θ: a speculation with
        ``check(...) > threshold`` triggers correction.
    speculator:
        Default speculation function used by :meth:`speculate`.
    error_metric:
        Default metric used by :meth:`check`.
    """

    def __init__(
        self,
        nprocs: int,
        iterations: int,
        threshold: float = 0.01,
        speculator: Optional[Speculator] = None,
        error_metric: Optional[ErrorMetric] = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.nprocs = nprocs
        self.iterations = iterations
        self.threshold = threshold
        self.speculator = speculator if speculator is not None else ZeroOrderHold()
        self.error_metric = error_metric if error_metric is not None else MaxRelativeError()

    # ----------------------------------------------------------- numerics
    @abstractmethod
    def initial_block(self, rank: int) -> Block:
        """Block state at t = 0 (known to every processor — the
        pseudocode's "Read x_i(0) ∀i")."""

    @abstractmethod
    def compute(self, rank: int, inputs: Mapping[int, Block], t: int) -> Block:
        """Evaluate ``rank``'s block at t+1 from all blocks at t.

        ``inputs`` maps every rank (including ``rank`` itself) to its
        block at iteration ``t``; some remote entries may be
        *speculated* values.  Must be pure: no mutation of inputs, and
        identical inputs give identical outputs (the driver re-invokes
        it for corrections).
        """

    def speculate(
        self,
        rank: int,
        k: int,
        times: Sequence[int],
        values: Sequence[Block],
        target: int,
    ) -> Block:
        """Speculate processor ``k``'s block at iteration ``target``.

        Default: delegate to :attr:`speculator` (treating the block as
        an array).  Applications with structured blocks override this
        (e.g. N-body speculates positions from transmitted velocities,
        Eq. 10).
        """
        return self.speculator.extrapolate(times, values, target)

    def check(self, rank: int, k: int, speculated: Block, actual: Block, own: Block) -> float:
        """Error of a past speculation, as seen by ``rank``.

        ``own`` is the observing rank's block at the same iteration,
        allowing relational metrics like the paper's Eq. 11 (error
        relative to inter-particle distance).  Default: the generic
        :attr:`error_metric` on the raw arrays.
        """
        return self.error_metric.error(np.asarray(speculated), np.asarray(actual))

    def correct(
        self,
        rank: int,
        next_block: Block,
        inputs: Mapping[int, Block],
        k: int,
        speculated: Block,
        actual: Block,
        t: int,
    ) -> tuple[Block, float]:
        """Repair ``rank``'s block at t+1 after a rejected speculation.

        Parameters
        ----------
        next_block:
            The (tainted) X_rank(t+1) computed with the speculated input.
        inputs:
            The exact inputs used for that computation (``inputs[k]``
            is the rejected speculated value).
        k:
            The rank whose speculation failed.
        speculated / actual:
            The rejected and the true block of ``k`` at iteration ``t``.
        t:
            The iteration whose inputs were wrong.

        Returns
        -------
        ``(corrected_block, ops_spent)``.  The default performs a full
        recomputation with the actual value substituted — the paper's
        "or in some cases, recomputes its variables".  Applications
        can override with an incremental correction (the N-body app
        subtracts the speculated-pair forces and adds the actual-pair
        forces).
        """
        fixed = dict(inputs)
        fixed[k] = actual
        return self.compute(rank, fixed, t), self.compute_ops(rank)

    # ----------------------------------------------------------- topology
    def needed(self, rank: int) -> frozenset[int]:
        """Ranks whose blocks ``rank``'s compute actually reads.

        Default: all other ranks (the paper's dense model, where every
        variable may depend on every other).  Neighbor-coupled
        applications (e.g. strip-decomposed PDE solvers) override this
        so the driver neither waits on nor speculates blocks that are
        never read.
        """
        return frozenset(k for k in range(self.nprocs) if k != rank)

    # --------------------------------------------------------- cost model
    @abstractmethod
    def compute_ops(self, rank: int) -> float:
        """Operations for one ``compute`` call on ``rank`` (N_i · f_comp)."""

    @abstractmethod
    def block_nbytes(self, rank: int) -> int:
        """Wire size of ``rank``'s block message."""

    def speculate_ops(self, rank: int, k: int) -> float:
        """Operations to speculate ``k``'s block (N_k · f_spec).

        Default: 12 operations per scalar in the block (the paper's
        N-body speculation cost: 12 flops per particle position).
        """
        return 12.0 * self._block_size(k)

    def check_ops(self, rank: int, k: int) -> float:
        """Operations to check ``k``'s block (N_k · f_check).

        Default: 24 operations per scalar (the paper's N-body checking
        cost: 24 flops per particle).
        """
        return 24.0 * self._block_size(k)

    def send_ops(self, rank: int) -> float:
        """Sender CPU operations per outgoing message (PVM pack cost).

        Real message-passing systems charge the sender for packing and
        kernel crossings; PVM's per-message software cost was
        substantial on the paper's testbed.  Default 0 (free sends, the
        idealised model); platforms wanting fidelity override this or
        wrap the program.
        """
        return 0.0

    def _block_size(self, k: int) -> int:
        """Number of scalars in ``k``'s initial block (cost-model helper)."""
        block = self.initial_block(k)
        if isinstance(block, np.ndarray):
            return int(block.size)
        if isinstance(block, (tuple, list)):
            return int(sum(np.asarray(b).size for b in block))
        return 1

    # ---------------------------------------------------------- reporting
    def gather(self, blocks: Mapping[int, Block]) -> Any:
        """Assemble per-rank final blocks into a global result.

        Default: return the mapping unchanged; applications usually
        concatenate arrays back into problem order.
        """
        return dict(blocks)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} p={self.nprocs} T={self.iterations} "
            f"theta={self.threshold}>"
        )
