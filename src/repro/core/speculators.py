"""Speculation functions: extrapolate a remote block from its history.

The paper (Section 3.1) defines the speculated value as a function of
the last BW received values — the *backward window*::

    x*_i(t) = w_1 x_i(t-1) + w_2 x_i(t-2) + ...

All speculators here operate on whole *blocks* (numpy arrays holding a
processor's variables) and receive ``(times, values)`` pairs rather
than assuming consecutive samples, because under a forward window > 1
the history can have gaps (an intermediate message may still be in
flight).

A speculator degrades gracefully: with fewer history points than its
backward window it uses what is available, bottoming out at a
zero-order hold of the single most recent value.  The driver guarantees
at least one point (every processor knows X(0)).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np


class Speculator(ABC):
    """Extrapolates a block's value at a future time from its history."""

    #: Number of past values the speculator would like (the paper's BW).
    backward_window: int = 1

    @abstractmethod
    def extrapolate(
        self,
        times: Sequence[float],
        values: Sequence[np.ndarray],
        target: float,
    ) -> np.ndarray:
        """Speculate the block value at time ``target``.

        Parameters
        ----------
        times:
            Strictly increasing iteration indices of the known values.
        values:
            Block values at those times (same length as ``times``);
            the last entry is the most recent.
        target:
            The iteration index to speculate (``> times[-1]``).

        Returns
        -------
        A *new* array (never aliasing an input) with the speculated value.
        """

    @staticmethod
    def _validate(times: Sequence[float], values: Sequence[np.ndarray], target: float) -> None:
        if len(times) != len(values):
            raise ValueError("times and values must have equal length")
        if not times:
            raise ValueError("speculation needs at least one history point")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("times must be strictly increasing")
        if target <= times[-1]:
            raise ValueError(
                f"target {target} is not in the future of last sample {times[-1]}"
            )


class ZeroOrderHold(Speculator):
    """x*(t) = x(t_last): hold the most recent value (BW = 1).

    The cheapest possible speculation; exact whenever variables are
    constant between iterations.
    """

    backward_window = 1

    def extrapolate(self, times, values, target):
        self._validate(times, values, target)
        return np.array(values[-1], copy=True)


class LinearExtrapolation(Speculator):
    """First-order extrapolation from the last two samples (BW = 2).

    ``x*(t) = x(t1) + (x(t1) - x(t0)) / (t1 - t0) * (t - t1)``

    This is the discrete analogue of the paper's constant-velocity
    speculation (Eq. 10) when the velocity is estimated from history
    rather than transmitted.  With one point it degrades to a hold.
    """

    backward_window = 2

    def extrapolate(self, times, values, target):
        self._validate(times, values, target)
        if len(values) == 1:
            return np.array(values[-1], copy=True)
        t0, t1 = times[-2], times[-1]
        v0, v1 = np.asarray(values[-2]), np.asarray(values[-1])
        slope = (v1 - v0) / (t1 - t0)
        return v1 + slope * (target - t1)


class PolynomialExtrapolation(Speculator):
    """Order-``order`` Lagrange extrapolation over the last order+1 samples.

    Higher orders track smooth trajectories more closely but amplify
    noise — the accuracy/complexity trade-off the paper attributes to
    larger backward windows.  Degrades to the highest order the
    available history supports.
    """

    def __init__(self, order: int = 2) -> None:
        if order < 0:
            raise ValueError("order must be >= 0")
        self.order = order
        self.backward_window = order + 1

    def extrapolate(self, times, values, target):
        self._validate(times, values, target)
        k = min(self.backward_window, len(values))
        ts = np.asarray(times[-k:], dtype=float)
        vs = [np.asarray(v) for v in values[-k:]]
        # Lagrange basis evaluated at the target time.
        result = np.zeros_like(vs[0], dtype=float)
        for i in range(k):
            weight = 1.0
            for j in range(k):
                if i != j:
                    weight *= (target - ts[j]) / (ts[i] - ts[j])
            result = result + weight * vs[i]
        return result

    def __repr__(self) -> str:
        return f"PolynomialExtrapolation(order={self.order})"


class DampedLinear(Speculator):
    """Linear extrapolation with a damped trend (BW = 2).

    ``x*(t) = x(t1) + λ · slope · (t − t1)`` with λ ∈ [0, 1]:
    λ = 1 is plain linear extrapolation, λ = 0 a zero-order hold.
    Damping trades a little bias on clean trends for robustness when
    the history is noisy (jittery measurements, oscillatory dynamics) —
    the same bias/variance dial as exponential smoothing.
    """

    backward_window = 2

    def __init__(self, damping: float = 0.7) -> None:
        if not 0.0 <= damping <= 1.0:
            raise ValueError("damping must be in [0, 1]")
        self.damping = damping

    def extrapolate(self, times, values, target):
        self._validate(times, values, target)
        if len(values) == 1:
            return np.array(values[-1], copy=True)
        t0, t1 = times[-2], times[-1]
        v0, v1 = np.asarray(values[-2]), np.asarray(values[-1])
        slope = (v1 - v0) / (t1 - t0)
        return v1 + self.damping * slope * (target - t1)

    def __repr__(self) -> str:
        return f"DampedLinear(damping={self.damping})"


class WeightedHistory(Speculator):
    """The paper's explicit form: x*(t) = Σ w_m · x(t_last-m+1).

    ``weights[0]`` multiplies the most recent value.  Assumes
    (approximately) uniformly spaced history; with fewer samples than
    weights, the weights are truncated and renormalised so they still
    sum to the original total.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if len(weights) == 0:
            raise ValueError("need at least one weight")
        self.weights = tuple(float(w) for w in weights)
        self.backward_window = len(self.weights)

    def extrapolate(self, times, values, target):
        self._validate(times, values, target)
        k = min(len(self.weights), len(values))
        used = np.asarray(self.weights[:k], dtype=float)
        full = sum(self.weights)
        if used.sum() != 0 and full != 0:
            used = used * (full / used.sum())
        result = np.zeros_like(np.asarray(values[-1]), dtype=float)
        for m in range(k):
            result = result + used[m] * np.asarray(values[-1 - m])
        return result

    def __repr__(self) -> str:
        return f"WeightedHistory({list(self.weights)})"
