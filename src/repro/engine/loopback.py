"""Loopback transport: the whole protocol in one process, no clock.

The cheapest possible medium — per-rank FIFO queues and a
deterministic round-robin scheduler — useful for

* unit tests of protocol *logic* (what is sent, speculated, verified,
  corrected) without dragging in the DES kernel or real processes;
* toys and teaching: ``run_loopback(program, fw=1)`` runs the full
  speculative protocol on any :class:`SyncIterativeProgram` in
  microseconds;
* differential testing: loopback, DES and pipe backends drive the
  *same* :class:`~repro.engine.core.SpecEngine`, so their speculation
  counters and final numerics must agree wherever timing does not
  feed back into the numerics.

Delivery is immediate (messages become receivable the moment they are
sent) and per-pair FIFO.  The round-robin schedule itself produces
speculative executions: a rank scheduled ahead of its peers reaches
iteration ``t`` before their ``X(t)`` was sent, speculates, runs on,
and verifies when the scheduler hands the peers their turn — the
protocol's full speculate/verify/correct path, deterministically,
with no clocks.  Charges accumulate into per-rank ``phase_ops``
tallies (the loopback's "time").
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Any, Deque, Dict, Optional, Tuple

from repro.analysis.sanitizer import ProtocolSanitizer, sanitizer_from_env
from repro.core.results import SpecStats
from repro.engine.core import ReceiveDrivenEngine, SpecEngine, topology
from repro.engine.events import (
    Arrival,
    CascadeBegin,
    CascadeEnd,
    CascadeStep,
    Charge,
    ComputeBegin,
    Corrected,
    Degraded,
    FaultInjected,
    IterationDone,
    Recv,
    Retransmit,
    Send,
    Speculated,
    TryRecv,
    Verified,
    WindowChanged,
)
from repro.faults.middleware import wrap_engine
from repro.faults.plan import FaultPlan
from repro.policy import WindowPolicy


class LoopbackDeadlock(RuntimeError):
    """Every unfinished rank is blocked on a receive no queued or
    future message can satisfy."""


#: One queued message: (src, seq, family, iteration, payload).
_QueuedMessage = Tuple[int, int, str, int, Any]


class LoopbackRunner:
    """Runs one engine per rank over in-process FIFO queues.

    Parameters
    ----------
    engines:
        rank -> engine (``SpecEngine`` or ``ReceiveDrivenEngine``);
        every ``Send.dst`` must name another engine in the mapping.
    event_log:
        Optional :class:`~repro.trace.events.EventLog`; protocol
        events are recorded with the scheduler's step counter as the
        logical clock, ready for ``repro analyze --trace`` replay.
    sanitize:
        Run under the :class:`~repro.analysis.sanitizer.ProtocolSanitizer`
        (the same runtime seat the DES and pipe backends use); ``None``
        (default) defers to the ``REPRO_SANITIZE`` environment variable.
    """

    def __init__(
        self,
        engines: Dict[int, Any],
        event_log: Any = None,
        sanitize: Optional[bool] = None,
    ) -> None:
        if not engines:
            raise ValueError("need at least one engine")
        self.engines = dict(engines)
        self.event_log = event_log
        if sanitize is None:
            self.sanitizer: Optional[ProtocolSanitizer] = sanitizer_from_env()
        else:
            self.sanitizer = ProtocolSanitizer() if sanitize else None
        self.queues: Dict[int, Deque[_QueuedMessage]] = {
            rank: deque() for rank in self.engines
        }
        #: rank -> {phase: ops} accumulated from Charge effects.
        self.phase_ops: Dict[int, Dict[str, float]] = {
            rank: {} for rank in self.engines
        }
        #: rank -> [(iteration, new_fw)] window-policy decisions.
        self.window_history: Dict[int, list[Tuple[int, int]]] = {
            rank: [] for rank in self.engines
        }
        self._step = 0
        #: Scheduler sweeps completed — the loopback's coarse clock
        #: (responds to ``IterationDone``; also the unit of
        #: ``Arrival.waited`` for ranks parked on a blocking receive).
        self._rounds = 0
        self._parked_at: Dict[int, int] = {}
        #: rank -> round at which a parked Recv's ``timeout`` expires
        #: (the rank then resumes with None so the engine's retransmit
        #: timer can escalate; fault-free engines never set one).
        self._parked_deadline: Dict[int, int] = {}

    @property
    def rounds(self) -> int:
        """Scheduler sweeps completed — the loopback's coarse clock."""
        return self._rounds

    # -------------------------------------------------------------- running
    def run(self) -> Dict[int, Any]:
        """Execute every rank to completion; rank -> final block."""
        gens = {rank: engine.run() for rank, engine in self.engines.items()}
        response: Dict[int, Optional[Arrival | float]] = {
            rank: None for rank in gens
        }
        blocked: Dict[int, Recv] = {}
        finals: Dict[int, Any] = {}

        while len(finals) < len(gens):
            progress = False
            self._rounds += 1
            for rank in sorted(gens):
                if rank in finals:
                    continue
                if rank in blocked:
                    arrival = self._match(rank, blocked[rank])
                    if arrival is None:
                        deadline = self._parked_deadline.get(rank)
                        if deadline is None or self._rounds < deadline:
                            continue  # still blocked
                        # Bounded park expired: resume with None.
                        self._parked_at.pop(rank, None)
                        self._parked_deadline.pop(rank, None)
                        response[rank] = None
                        del blocked[rank]
                        progress = True
                    else:
                        waited = float(self._rounds - self._parked_at.pop(rank))
                        self._parked_deadline.pop(rank, None)
                        response[rank] = replace(arrival, waited=waited)
                        del blocked[rank]
                        progress = True
                # Step this rank until it blocks or finishes.
                while True:
                    try:
                        effect = gens[rank].send(response[rank])
                    except StopIteration as stop:
                        finals[rank] = stop.value
                        progress = True
                        break
                    response[rank] = None
                    progress = True
                    kind = type(effect)
                    if kind is Send:
                        self._deliver(rank, effect)
                    elif kind is TryRecv:
                        response[rank] = self._match_wildcard(rank)
                    elif kind is Recv:
                        arrival = self._match(rank, effect)
                        if arrival is None:
                            blocked[rank] = effect
                            self._parked_at[rank] = self._rounds
                            if effect.timeout is not None:
                                self._parked_deadline[rank] = (
                                    self._rounds
                                    + max(1, int(effect.timeout))
                                )
                            break
                        response[rank] = arrival
                    elif kind is Charge:
                        tally = self.phase_ops[rank]
                        tally[effect.phase] = tally.get(effect.phase, 0.0) + effect.ops
                    else:
                        response[rank] = self._observe(rank, effect)
            if not progress:
                if self._parked_deadline:
                    # A bounded park is still counting down: advancing
                    # the round clock toward its deadline *is* progress.
                    continue
                waiting = {
                    rank: (eff.match, eff.iteration)
                    for rank, eff in sorted(blocked.items())
                }
                raise LoopbackDeadlock(
                    f"no rank can make progress; blocked receives: {waiting}"
                )
        if self.sanitizer is not None:
            self.sanitizer.on_run_end()
        return finals

    # ------------------------------------------------------------ messaging
    def _deliver(self, src: int, effect: Send) -> None:
        if effect.dst not in self.queues:
            raise ValueError(f"send to unknown rank {effect.dst}")
        self._observe_message("send", src, peer=effect.dst,
                              family=effect.family, iteration=effect.iteration)
        self.queues[effect.dst].append(
            (src, effect.seq, effect.family, effect.iteration, effect.payload)
        )

    def _match_wildcard(self, rank: int) -> Optional[Arrival]:
        queue = self.queues[rank]
        if not queue:
            return None
        src, seq, family, iteration, payload = queue.popleft()
        if self.sanitizer is not None:
            self.sanitizer.on_delivery(rank, src, seq)
        self._observe_message("recv", rank, peer=src,
                              family=family, iteration=iteration)
        return Arrival(src=src, iteration=iteration, payload=payload, seq=seq)

    def _match(self, rank: int, effect: Recv) -> Optional[Arrival]:
        if effect.match is None:
            return self._match_wildcard(rank)
        queue = self.queues[rank]
        want_family, want_iteration = effect.match
        for i, (src, seq, family, iteration, payload) in enumerate(queue):
            if family == want_family and iteration == want_iteration:
                del queue[i]
                if self.sanitizer is not None:
                    self.sanitizer.on_delivery(rank, src, seq)
                self._observe_message("recv", rank, peer=src,
                                      family=family, iteration=iteration)
                return Arrival(src=src, iteration=iteration, payload=payload,
                               seq=seq)
        return None

    # ------------------------------------------------------------ observers
    def _tick(self) -> float:
        self._step += 1
        return float(self._step)

    def _observe_message(
        self, kind: str, rank: int, peer: int, family: str, iteration: int
    ) -> None:
        if self.event_log is not None:
            self.event_log.record(
                kind, rank, self._tick(), peer=peer,
                family=family, iteration=iteration,
            )

    def _observe(self, rank: int, effect: Any) -> Optional[float]:
        """Fan one protocol event out to the sanitizer and event log
        (the loopback seat of ``DESTransport._notify``).

        Returns the sweep count for ``IterationDone`` — the loopback's
        clock for the engine-seated window policy."""
        log = self.event_log
        san = self.sanitizer
        kind = type(effect)
        if kind is Speculated:
            if san is not None:
                san.on_speculate(rank, effect.peer, effect.iteration)
            if log is not None and not effect.in_cascade:
                log.record("speculate", rank, self._tick(), peer=effect.peer,
                           family="vars", iteration=effect.iteration)
        elif kind is ComputeBegin:
            if san is not None:
                san.on_compute_begin(
                    rank, effect.iteration, effect.verified_upto, effect.fw
                )
            if log is not None:
                log.record("compute", rank, self._tick(),
                           iteration=effect.iteration)
        elif kind is Verified:
            if san is not None:
                san.on_verify(rank, effect.peer, effect.iteration)
            if log is not None:
                log.record("verify", rank, self._tick(), peer=effect.peer,
                           family="vars", iteration=effect.iteration)
        elif kind is Corrected:
            if log is not None:
                log.record("correct", rank, self._tick(), peer=effect.peer,
                           family="vars", iteration=effect.iteration)
        elif kind is CascadeBegin:
            if san is not None:
                san.on_cascade_begin(rank, effect.iteration)
        elif kind is CascadeStep:
            if san is not None:
                san.on_cascade_step(rank, effect.iteration)
        elif kind is CascadeEnd:
            if san is not None:
                san.on_cascade_end(rank)
        elif kind is IterationDone:
            return float(self._rounds)
        elif kind is WindowChanged:
            if san is not None:
                san.on_window_changed(
                    rank, effect.iteration, effect.old_fw, effect.new_fw,
                    effect.min_fw, effect.max_fw,
                )
            if log is not None:
                log.record("window", rank, self._tick(),
                           peer=effect.new_fw, iteration=effect.iteration)
            self.window_history[rank].append((effect.iteration, effect.new_fw))
        elif kind is FaultInjected:
            if log is not None:
                log.record("fault", rank, self._tick(), peer=effect.src,
                           family="vars", iteration=effect.iteration)
        elif kind is Retransmit:
            if san is not None:
                san.on_retransmit(rank, effect.peer, effect.seq,
                                  effect.attempt, effect.max_attempts)
            if log is not None:
                log.record("retransmit", rank, self._tick(),
                           peer=effect.peer, family="vars",
                           iteration=effect.seq)
        elif kind is Degraded:
            if log is not None:
                log.record("degraded", rank, self._tick(),
                           peer=int(effect.active),
                           iteration=effect.iteration)
        return None


def run_loopback(
    program: Any,
    fw: int = 1,
    cascade: str = "recompute",
    receive_driven: bool = False,
    event_log: Any = None,
    sanitize: Optional[bool] = None,
    window_policy: Optional[WindowPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    hist_cap: Optional[int] = None,
) -> Tuple[Dict[int, Any], list[SpecStats], LoopbackRunner]:
    """Run ``program`` on the loopback transport.

    Prefer :func:`repro.api.run` for new code; this remains the
    loopback backend primitive it delegates to.

    Returns ``(final_blocks, stats, runner)`` — the per-rank final
    blocks, the speculation counters, and the runner (whose
    ``phase_ops`` tallies, ``window_history`` and queues tests may
    inspect).  With a ``fault_plan``, each engine is wrapped in the
    :mod:`repro.faults` receive-path seam (speculative engines only).
    """
    needed, audience = topology(program)
    stats = [SpecStats(rank=r) for r in range(program.nprocs)]
    engines: Dict[int, Any] = {}
    for rank in range(program.nprocs):
        if receive_driven:
            engines[rank] = ReceiveDrivenEngine(
                program, rank, needed[rank], audience[rank], stats=stats[rank]
            )
        else:
            engines[rank] = wrap_engine(
                SpecEngine(
                    program, rank, needed[rank], audience[rank],
                    fw=fw, cascade=cascade, stats=stats[rank],
                    policy=window_policy, hist_cap=hist_cap,
                    max_retries=(
                        fault_plan.max_retries if fault_plan is not None else 4
                    ),
                    retry_backoff=(
                        fault_plan.retry_backoff
                        if fault_plan is not None else 1.0
                    ),
                ),
                fault_plan,
            )
    runner = LoopbackRunner(engines, event_log=event_log, sanitize=sanitize)
    if runner.sanitizer is not None:
        # Same sanitizer instance in the engines' buffer-occupancy seat
        # (ReceiveDrivenEngine has no such seat and keeps its shape).
        for engine in engines.values():
            if hasattr(engine, "sanitizer"):
                engine.sanitizer = runner.sanitizer
    finals = runner.run()
    return finals, stats, runner
