"""DES transport: the engine on a simulated cluster.

Interprets the engine's effects against a
:class:`~repro.vm.processor.VirtualProcessor`:

* ``Send`` → ``proc.send(dst, payload, tag=(family, iteration))`` —
  the network model delivers through ``repro.netsim``;
* ``Recv`` / ``TryRecv`` → ``proc.recv`` / ``proc.try_recv`` (blocked
  spans are traced as the effect's phase and reported back as
  ``Arrival.waited`` virtual seconds — the adaptive controller's
  signal);
* ``Charge`` → ``proc.compute(ops, phase, iteration)`` — virtual time
  at the processor's capacity (times any background load);
* protocol events → the runtime
  :class:`~repro.analysis.sanitizer.ProtocolSanitizer` hooks and the
  cluster's :class:`~repro.trace.events.EventLog`.

Because ``recv``/``compute`` are simulator coroutines, the interpreter
loop here is itself a generator: drivers ``yield from
DESTransport(proc, ...).drive(engine)`` inside their per-rank
programs.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.engine.events import (
    Arrival,
    CascadeBegin,
    CascadeEnd,
    CascadeStep,
    Charge,
    ComputeBegin,
    Corrected,
    Degraded,
    FaultInjected,
    IterationDone,
    Recv,
    Retransmit,
    Send,
    Speculated,
    TryRecv,
    Verified,
    WindowChanged,
)
from repro.engine.transport import TransportError
from repro.vm.processor import VirtualProcessor


class DESTransport:
    """One rank's bridge between a sans-I/O engine and the simulator.

    Parameters
    ----------
    proc:
        The rank's virtual processor.
    sanitizer:
        Optional runtime protocol sanitizer; engine events feed its
        speculate/compute/verify/cascade hooks.
    event_log:
        Optional trace-event recorder (send/recv are recorded by the
        processor itself; the engine's speculate/compute/verify/
        correct events are recorded here).
    on_iteration:
        Optional ``t -> None`` hook fired after each completed
        iteration (progress callbacks; adaptation itself now lives in
        the engine-seated :class:`~repro.policy.WindowPolicy`).
    on_window:
        Optional ``WindowChanged -> None`` hook fired when the seated
        policy moves this rank's window (drivers collect
        ``fw_history`` here).
    """

    def __init__(
        self,
        proc: VirtualProcessor,
        sanitizer: Any = None,
        event_log: Any = None,
        on_iteration: Optional[Callable[[int], None]] = None,
        on_window: Optional[Callable[[WindowChanged], None]] = None,
    ) -> None:
        self.proc = proc
        self.sanitizer = sanitizer
        self.event_log = event_log
        self.on_iteration = on_iteration
        self.on_window = on_window
        #: Per-source arrival counter standing in for the wire seq:
        #: the DES network is per-pair FIFO by construction, so the
        #: k-th arrival from ``src`` carries ``Send.seq == k``.
        self._arrival_seq: dict[int, int] = {}

    # ------------------------------------------------------------- the loop
    def drive(self, engine: Any) -> Generator:
        """Interpret ``engine`` to completion (a DES rank program body).

        Use as ``final = yield from transport.drive(engine)``.
        """
        proc = self.proc
        gen = engine.run()
        response: Optional[Arrival] = None
        while True:
            try:
                effect = gen.send(response)
            except StopIteration as stop:
                return stop.value
            response = None
            kind = type(effect)
            if kind is Send:
                proc.send(
                    effect.dst,
                    effect.payload,
                    tag=(effect.family, effect.iteration),
                    nbytes=effect.nbytes,
                )
            elif kind is Charge:
                yield from proc.compute(
                    effect.ops, phase=effect.phase, iteration=effect.iteration
                )
            elif kind is Recv:
                start = proc.env.now
                msg = yield from proc.recv(
                    tag=effect.match, phase=effect.phase,
                    iteration=effect.iteration,
                )
                response = self._arrival(msg, waited=proc.env.now - start)
            elif kind is TryRecv:
                msg = proc.try_recv()
                response = self._arrival(msg) if msg is not None else None
            else:
                response = self._notify(effect)

    # ------------------------------------------------------------- plumbing
    def _arrival(self, msg: Any, waited: float = 0.0) -> Arrival:
        tag = msg.tag
        if not (isinstance(tag, tuple) and len(tag) == 2):  # pragma: no cover
            raise TransportError(f"unexpected message tag {tag!r}")
        family, iteration = tag
        if not isinstance(iteration, int):  # pragma: no cover - defensive
            raise TransportError(f"unexpected message tag {tag!r}")
        seq = self._arrival_seq.get(msg.src, 0)
        self._arrival_seq[msg.src] = seq + 1
        return Arrival(
            src=msg.src, iteration=iteration, payload=msg.payload,
            waited=waited, seq=seq,
        )

    def _notify(self, effect: Any) -> Optional[float]:
        """Fan one protocol event out to the sanitizer and event log.

        Returns the virtual clock for ``IterationDone`` (the seated
        window policy's timebase); None for every other event.
        """
        proc = self.proc
        san = self.sanitizer
        log = self.event_log
        rank = proc.rank
        now = proc.env.now
        kind = type(effect)
        if kind is Speculated:
            if san is not None:
                san.on_speculate(rank, effect.peer, effect.iteration)
            if log is not None and not effect.in_cascade:
                log.record(
                    "speculate", rank, now, peer=effect.peer,
                    family="vars", iteration=effect.iteration,
                )
        elif kind is ComputeBegin:
            if san is not None:
                san.on_compute_begin(
                    rank, effect.iteration, effect.verified_upto, effect.fw
                )
            if log is not None:
                log.record("compute", rank, now, iteration=effect.iteration)
        elif kind is Verified:
            if san is not None:
                san.on_verify(rank, effect.peer, effect.iteration)
            if log is not None:
                log.record(
                    "verify", rank, now, peer=effect.peer,
                    family="vars", iteration=effect.iteration,
                )
        elif kind is Corrected:
            if log is not None:
                log.record(
                    "correct", rank, now, peer=effect.peer,
                    family="vars", iteration=effect.iteration,
                )
        elif kind is CascadeBegin:
            if san is not None:
                san.on_cascade_begin(rank, effect.iteration)
        elif kind is CascadeStep:
            if san is not None:
                san.on_cascade_step(rank, effect.iteration)
        elif kind is CascadeEnd:
            if san is not None:
                san.on_cascade_end(rank)
        elif kind is IterationDone:
            if self.on_iteration is not None:
                self.on_iteration(effect.iteration)
            return now
        elif kind is WindowChanged:
            if san is not None:
                san.on_window_changed(
                    rank, effect.iteration, effect.old_fw, effect.new_fw,
                    effect.min_fw, effect.max_fw,
                )
            if log is not None:
                log.record(
                    "window", rank, now, peer=effect.new_fw,
                    iteration=effect.iteration,
                )
            if self.on_window is not None:
                self.on_window(effect)
        elif kind is FaultInjected:
            if log is not None:
                log.record(
                    "fault", rank, now, peer=effect.src,
                    family="vars", iteration=effect.iteration,
                )
        elif kind is Retransmit:
            if san is not None:
                san.on_retransmit(rank, effect.peer, effect.seq,
                                  effect.attempt, effect.max_attempts)
            if log is not None:
                log.record(
                    "retransmit", rank, now, peer=effect.peer,
                    family="vars", iteration=effect.seq,
                )
        elif kind is Degraded:
            if log is not None:
                log.record(
                    "degraded", rank, now, peer=int(effect.active),
                    iteration=effect.iteration,
                )
        return None
