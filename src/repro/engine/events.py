"""The sans-I/O engine's effect alphabet.

The :class:`~repro.engine.core.SpecEngine` never performs I/O, never
reads a clock and never charges time.  Instead its ``run()`` generator
*yields* small immutable effect objects and receives the outcome back
via ``generator.send(...)``.  A transport (DES, loopback, pipes)
interprets each effect against its medium and resumes the engine.

Two groups:

**I/O + cost effects** — require transport work (and, for
:class:`Recv` / :class:`TryRecv`, a response):

=============  =============================================
:class:`Send`      hand one protocol message to the transport
:class:`Recv`      block until a protocol message is available
:class:`TryRecv`   non-blocking arrival check
:class:`Charge`    account ``ops`` of compute to a phase
=============  =============================================

**Protocol events** — pure notifications (speculate / compute /
verify / correct / cascade); transports forward them to observers
(the runtime :class:`~repro.analysis.sanitizer.ProtocolSanitizer`,
the :class:`~repro.trace.events.EventLog` consumed by specflow's
trace replay).  Because every backend drives the same engine, all
observers hook one code path.

Message identity is ``(family, iteration)`` plus a per-destination
``seq`` stamped by the engine.  Sequenced sends are what fixes the
SPF111 race: a transport that honours ``seq`` (the pipe transport
does, the DES network is per-pair FIFO by construction) can never
deliver two same-family messages to a wildcard receive in an order
the protocol did not produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

#: Message-tag family used by the speculative protocol's variable
#: exchange (the single authoritative definition; drivers re-export it).
VARS = "vars"


# --------------------------------------------------------------------------
# I/O + cost effects
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Send:
    """Hand one protocol message to the transport (asynchronous)."""

    dst: int
    payload: Any
    iteration: int
    nbytes: int
    #: Per-destination monotonic sequence number (0, 1, 2, ... within
    #: one src -> dst conversation).  Transports that can reorder
    #: deliveries use it to restore protocol order at the receiver.
    seq: int
    family: str = VARS


@dataclass(frozen=True)
class Recv:
    """Block until a protocol message is available; respond with
    an :class:`Arrival`.

    ``match`` of None is the wildcard receive (any family/iteration);
    a ``(family, iteration)`` pair restricts matching (used by the
    receive-driven baseline, which consumes exactly iteration ``t``).

    ``timeout`` (transport clock units) bounds the park: a transport
    that supports timeouts responds with ``None`` once it expires with
    nothing delivered.  The engine only sets it while a sequence gap
    is outstanding, so fault-free runs never see a ``None`` response
    and transports without timeout support stay correct.
    """

    phase: str
    iteration: int
    match: Optional[Tuple[str, int]] = None
    timeout: Optional[float] = None


@dataclass(frozen=True)
class TryRecv:
    """Non-blocking receive; respond with an :class:`Arrival` or None."""


@dataclass(frozen=True)
class Charge:
    """Account ``ops`` operations of compute work to ``phase``.

    The DES transport converts ops to virtual seconds at the
    processor's capacity; the pipe transport attributes the *real*
    wall time since the previous effect boundary (the numerics just
    executed inside the engine) to the phase.
    """

    ops: float
    phase: str
    iteration: int


@dataclass(frozen=True)
class Arrival:
    """Response to :class:`Recv` / :class:`TryRecv`.

    ``waited`` is how long the receive blocked (virtual seconds under
    DES, wall seconds on pipes); the engine accumulates it into the
    adaptive controller's epoch-wait signal.

    ``seq`` echoes the per-(src, dst) ``Send.seq`` the message carried
    on the wire, when the transport knows it (-1 otherwise).  Sequenced
    arrivals arm the engine's resilience layer: duplicates are
    suppressed, and out-of-order arrivals are parked until the gap is
    retransmitted.  All fault-free transports deliver in seq order, so
    the bookkeeping is inert outside fault injection.
    """

    src: int
    iteration: int
    payload: Any
    waited: float = 0.0
    seq: int = -1


# --------------------------------------------------------------------------
# Protocol events (observer notifications; no response)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Speculated:
    """A missing input was predicted from the peer's history ring."""

    peer: int
    iteration: int
    #: Re-speculations inside a correction cascade notify the
    #: sanitizer but are not separate trace events (the enclosing
    #: ``correct`` event already covers the step) — mirrors the
    #: original drivers' recording discipline.
    in_cascade: bool = False


@dataclass(frozen=True)
class ComputeBegin:
    """One iteration's compute step is entered (forward-window probe)."""

    iteration: int
    verified_upto: int
    fw: int


@dataclass(frozen=True)
class Verified:
    """A speculated input is about to be checked against the actual."""

    peer: int
    iteration: int


@dataclass(frozen=True)
class Corrected:
    """A rejected speculation was repaired at ``iteration``."""

    peer: int
    iteration: int


@dataclass(frozen=True)
class CascadeBegin:
    """A correction cascade opens at ``iteration``."""

    iteration: int


@dataclass(frozen=True)
class CascadeStep:
    """The cascade recomputes ``iteration`` (strictly ascending)."""

    iteration: int


@dataclass(frozen=True)
class CascadeEnd:
    """The correction cascade closed."""


@dataclass(frozen=True)
class IterationDone:
    """Iteration ``iteration`` completed.

    The transport may respond with its clock reading (virtual seconds
    under DES, wall seconds on pipes, the step count on loopback);
    the engine feeds it to the seated
    :class:`~repro.policy.WindowPolicy`.  A ``None`` response makes
    the engine fall back to the iteration count as the clock.
    """

    iteration: int


@dataclass(frozen=True)
class WindowChanged:
    """The seated window policy moved this rank's FW.

    Emitted only when ``new_fw != old_fw`` (so fixed-window runs stay
    byte-identical); ``iteration`` is the first iteration the new
    window governs (the decision fired after ``iteration - 1``
    completed).  Bounds ride along so observers can check the
    ``window-policy-bound`` invariant without knowing the policy.
    """

    iteration: int
    old_fw: int
    new_fw: int
    min_fw: int
    max_fw: int


@dataclass(frozen=True)
class FaultInjected:
    """The fault layer perturbed one message on this rank's receive
    path (chaos runs only).

    ``kind`` is one of ``"drop"``, ``"duplicate"``, ``"delay"``,
    ``"reorder"`` — the :class:`~repro.faults.FaultPlan` edge fault
    that fired.  Emitted *by the fault layer*, not the engine, but
    part of the effect alphabet so every transport's observer seat
    (sanitizer, EventLog) sees faults through the same dispatch path
    as protocol events.
    """

    kind: str
    src: int
    seq: int
    iteration: int


@dataclass(frozen=True)
class Retransmit:
    """The engine detected a sequence gap and requests retransmission
    of ``(peer -> self, seq)``.

    ``attempt`` counts requests for this gap (1-based) and
    ``max_attempts`` is the engine's retry budget; an attempt beyond
    the budget is the ``retransmit-bounded`` violation.  ``backoff``
    is the exponential wait (transport clock units) before the next
    escalation.  The fault layer services the request from its
    retained-loss buffer; fault-free runs never emit this.
    """

    peer: int
    seq: int
    attempt: int
    max_attempts: int
    backoff: float


@dataclass(frozen=True)
class Degraded:
    """The seated :class:`~repro.policy.DegradedWindow` flipped its
    loss-degradation state.

    ``active`` True means the policy is collapsing FW toward 0 under
    persistent loss; False announces recovery (control handed back to
    the wrapped policy).  ``losses`` is the cumulative retransmit
    count the decision was based on.
    """

    iteration: int
    active: bool
    losses: int


#: Every effect the engine may yield (for transports that dispatch).
Effect = (
    Send,
    Recv,
    TryRecv,
    Charge,
    Speculated,
    ComputeBegin,
    Verified,
    Corrected,
    CascadeBegin,
    CascadeStep,
    CascadeEnd,
    IterationDone,
    WindowChanged,
    FaultInjected,
    Retransmit,
    Degraded,
)
