"""A sans-I/O speculative-protocol engine with pluggable transports.

The package splits the paper's protocol (Fig. 3) from its media:

* :mod:`repro.engine.core` — :class:`SpecEngine` and
  :class:`ReceiveDrivenEngine`, pure generator state machines that
  *yield* effects (:mod:`repro.engine.events`) and never touch a
  socket, a pipe, or the simulator;
* :mod:`repro.engine.transport` — the :class:`Transport` seam and the
  shared synchronous interpreter :func:`drive`;
* :mod:`repro.engine.des_transport` — effects on the discrete event
  simulator (``repro.vm`` over ``repro.netsim``);
* :mod:`repro.engine.loopback` — in-process FIFO queues with a
  deterministic scheduler, for tests and toys;
* :mod:`repro.engine.pipes` — real ``multiprocessing`` pipes with
  injected latency; sequenced, FIFO-restored delivery (the SPF111
  fix) and no busy-wait blocking.

Every protocol implementation in the repo — the DES drivers
(:mod:`repro.core.driver`, :mod:`repro.core.receive_driven`,
:mod:`repro.core.adaptive`) and the multiprocessing backend
(:mod:`repro.parallel.worker`) — runs the engines in this package;
speculate/verify/correct logic exists exactly once.
"""

from __future__ import annotations

from repro.engine.core import (
    ReceiveDrivenEngine,
    SpecEngine,
    default_hist_cap,
    topology,
)
from repro.engine.des_transport import DESTransport
from repro.engine.events import (
    VARS,
    Arrival,
    CascadeBegin,
    CascadeEnd,
    CascadeStep,
    Charge,
    ComputeBegin,
    Corrected,
    Effect,
    IterationDone,
    Recv,
    Send,
    Speculated,
    TryRecv,
    Verified,
)
from repro.engine.loopback import LoopbackDeadlock, LoopbackRunner, run_loopback
from repro.engine.pipes import PipeTransport, close_mesh, full_mesh
from repro.engine.ring import HistoryRing, OutOfOrderArrival
from repro.engine.transport import Transport, TransportError, drive

__all__ = [
    "VARS",
    "Arrival",
    "CascadeBegin",
    "CascadeEnd",
    "CascadeStep",
    "Charge",
    "ComputeBegin",
    "Corrected",
    "DESTransport",
    "Effect",
    "HistoryRing",
    "IterationDone",
    "LoopbackDeadlock",
    "LoopbackRunner",
    "OutOfOrderArrival",
    "PipeTransport",
    "ReceiveDrivenEngine",
    "Recv",
    "Send",
    "SpecEngine",
    "Speculated",
    "Transport",
    "TransportError",
    "TryRecv",
    "Verified",
    "close_mesh",
    "default_hist_cap",
    "drive",
    "full_mesh",
    "run_loopback",
    "topology",
]
