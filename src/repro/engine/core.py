"""The sans-I/O speculative protocol engine.

One state machine owns the paper's protocol (Fig. 3: send →
receive-what-arrived → speculate → compute → verify → correct, with
the FW/BW windows of Section 3.2) for *every* backend.  The engine:

* keeps per-peer :class:`~repro.engine.ring.HistoryRing` backward
  windows, the own-state chain, the speculation ledger and the
  verified horizon;
* stamps every outgoing message with a per-destination sequence
  number, so transports can (and the pipe transport does) enforce
  protocol order at the receiver — the fix for the SPF111
  unordered-sends race;
* calls the application's pure numerics (``compute`` / ``speculate``
  / ``check`` / ``correct``) itself, but expresses *everything with a
  cost or a side effect* as a yielded effect
  (:mod:`repro.engine.events`) interpreted by a transport.

``SpecEngine.run()`` is a generator over effects::

    gen = engine.run()
    response = None
    while True:
        try:
            effect = gen.send(response)
        except StopIteration as stop:
            final_block = stop.value
            break
        response = transport.handle(effect)   # Arrival / None

The DES transport turns effects into ``VirtualProcessor`` calls, the
pipe transport into real ``multiprocessing`` I/O, and the loopback
transport into in-process queues — three media, one protocol.

:class:`ReceiveDrivenEngine` expresses the paper's Fig. 7 baseline
(incremental compute, no speculation) over the same effect alphabet,
so the receive-driven driver shares the transports and observers too.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Generator, Optional, Sequence, Tuple

from repro.analysis.taint.annotations import commits
from repro.core.program import Block, SyncIterativeProgram
from repro.core.results import SpecStats
from repro.engine.events import (
    VARS,
    Arrival,
    CascadeBegin,
    CascadeEnd,
    CascadeStep,
    Charge,
    ComputeBegin,
    Corrected,
    Degraded,
    IterationDone,
    Recv,
    Retransmit,
    Send,
    Speculated,
    TryRecv,
    Verified,
    WindowChanged,
)
from repro.engine.ring import HistoryRing
from repro.policy import CascadePolicy, WindowPolicy


class RetransmitExhausted(RuntimeError):
    """A sequence gap survived the engine's full retry budget.

    Raised *after* the final over-budget :class:`Retransmit` effect is
    yielded, so the sanitizer seat (``retransmit-bounded``) observes
    the violation before the rank dies.
    """


def default_hist_cap(program: SyncIterativeProgram) -> int:
    """Backward-window ring capacity for ``program``'s speculator."""
    return max(getattr(program.speculator, "backward_window", 1), 2) + 2


def topology(
    program: SyncIterativeProgram,
) -> Tuple[list[FrozenSet[int]], list[list[int]]]:
    """Validated ``(needed, audience)`` lists for every rank.

    ``needed[j]`` is the set of ranks whose blocks ``j`` reads;
    ``audience[j]`` the ranks that read ``j`` (who ``j`` must send
    to).  Raises on self-dependencies or out-of-range ranks.
    """
    p = program.nprocs
    needed: list[FrozenSet[int]] = []
    for j in range(p):
        deps = frozenset(program.needed(j))
        if j in deps or not deps <= set(range(p)):
            raise ValueError(f"invalid needed set for rank {j}: {sorted(deps)}")
        needed.append(deps)
    audience = [[k for k in range(p) if j in needed[k]] for j in range(p)]
    return needed, audience


#: Signature of the overridable forward-window gates: ``(engine, t)``.
HorizonFn = Callable[["SpecEngine", int], int]
WindowFn = Callable[["SpecEngine", int], bool]


def default_pre_send_horizon(engine: "SpecEngine", t: int) -> int:
    """Oldest iteration that must be verified before X_j(t) is sent.

    Fig. 3 sends X_j(t) only once the trailing verification loop has
    caught up to ``t - max(fw, 1)``, so corrections land before the
    block goes on the wire.  A module function (not just a method) so
    drivers can delegate to it and tests can sabotage the gates to
    prove the runtime sanitizer catches window violations.
    """
    return t - max(engine.fw, 1)


def default_window_ok(engine: "SpecEngine", t: int) -> bool:
    """May iteration ``t`` start given the rank's forward window?"""
    if engine.fw == 0:
        return engine.verified_upto >= t
    return engine.verified_upto >= t - engine.fw


class SpecEngine:
    """Sans-I/O speculative protocol state machine for one rank.

    Parameters
    ----------
    program:
        The application (numerics + cost model); kernels are called
        directly, costs are yielded as :class:`~repro.engine.events.Charge`.
    rank:
        This engine's rank.
    needed / audience:
        The rank's dependency topology (see :func:`topology`).
    fw:
        Forward window; 0 reproduces the blocking algorithm of Fig. 1.
        With a seated ``policy`` this is the *initial* window and must
        lie within the policy's bounds.
    cascade:
        ``"recompute"`` (redo iterations after a rejected one) or
        ``"none"`` (the paper's local correction); coerced to
        :class:`~repro.policy.CascadePolicy`.
    hist_cap:
        Backward-window ring capacity (default from the speculator).
    stats:
        Mutable counter sink; one :class:`SpecStats` per rank.
    pre_send_horizon / window_ok:
        Overridable forward-window gates (drivers pass bound methods;
        tests sabotage them to exercise the runtime sanitizer).  Both
        gates read ``engine.fw`` live, so they track the *current*
        window under an adapting policy.
    policy:
        Optional :class:`~repro.policy.WindowPolicy` consulted at every
        ``IterationDone`` with the transport-supplied clock; a changed
        window is announced as a ``WindowChanged`` effect.  The engine
        spawns a private instance, so one template may seed all ranks.
    sanitizer:
        Optional :class:`~repro.analysis.sanitizer.ProtocolSanitizer`
        whose buffer-occupancy hooks (``buffer-occupancy-bounded``) are
        fed on every arrival: history-ring occupancy vs capacity and
        the run-ahead backlog vs the FW-derived inbox bound.
    max_retries / retry_backoff:
        Resilience budget for sequenced arrivals (``Arrival.seq >= 0``):
        a detected sequence gap is announced as a :class:`Retransmit`
        effect and escalated with exponential backoff (base
        ``retry_backoff`` transport clock units) at most ``max_retries``
        times before the engine gives up with
        :class:`RetransmitExhausted`.  Inert on fault-free transports,
        which always deliver in seq order.
    """

    def __init__(
        self,
        program: SyncIterativeProgram,
        rank: int,
        needed: FrozenSet[int],
        audience: Sequence[int],
        fw: int = 1,
        cascade: "CascadePolicy | str" = CascadePolicy.RECOMPUTE,
        hist_cap: Optional[int] = None,
        stats: Optional[SpecStats] = None,
        pre_send_horizon: Optional[HorizonFn] = None,
        window_ok: Optional[WindowFn] = None,
        policy: Optional[WindowPolicy] = None,
        sanitizer: Optional[object] = None,
        max_retries: int = 4,
        retry_backoff: float = 1.0,
    ) -> None:
        if fw < 0:
            raise ValueError("fw must be >= 0")
        if policy is not None and not policy.min_fw <= fw <= policy.max_fw:
            raise ValueError("initial fw must lie within [min_fw, max_fw]")
        self.program = program
        self.rank = rank
        self.needed = frozenset(needed)
        self.audience = list(audience)
        self.fw = fw
        self.cascade = CascadePolicy.coerce(cascade)
        self.policy = policy.spawn() if policy is not None else None
        self.sanitizer = sanitizer
        self.hist_cap = hist_cap if hist_cap is not None else default_hist_cap(program)
        self.stats = stats if stats is not None else SpecStats(rank=rank)
        self._pre_send_horizon = pre_send_horizon
        self._window_ok = window_ok

        # ------------------------------------------------ protocol state
        #: Own chain: chain[t] = X_rank(t); seeded with the initial block.
        self.chain: Dict[int, Block] = {0: program.initial_block(rank)}
        #: Received (or initial) remote blocks: (k, t) -> block.
        self.actual: Dict[Tuple[int, int], Block] = {}
        #: Speculated values currently standing in for missing inputs.
        self.spec_used: Dict[Tuple[int, int], Block] = {}
        #: Exact inputs used to compute chain[t+1] (for corrections).
        self.inputs_used: Dict[int, Dict[int, Block]] = {}
        #: Backward-window rings of received actuals, per remote rank.
        self.history: Dict[int, HistoryRing] = {}
        #: Remaining messages expected for iteration t (t >= 1).
        self.missing: Dict[int, int] = {}
        #: Largest v such that iterations 0..v are fully received.
        self.verified_upto = 0
        #: Next iteration to compute (chain[frontier] is the newest block).
        self.frontier = 0
        #: Virtual/wall seconds spent blocked in window waits this epoch
        #: (the adaptive controller's widening signal).
        self.epoch_wait = 0.0
        #: Per-destination send sequence numbers (protocol-order stamps).
        self._send_seq: Dict[int, int] = {dst: 0 for dst in self.audience}
        # ---------------------------------------------- resilience state
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if retry_backoff <= 0:
            raise ValueError("retry_backoff must be > 0")
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Next expected arrival seq per source (sequenced arrivals only).
        self._recv_next: Dict[int, int] = {}
        #: Out-of-order arrivals parked until their gap heals; bounded by
        #: the inbox bound (each stashed seq is a distinct in-flight
        #: iteration, itself window-bounded at the sender).
        self._recv_stash: Dict[int, Dict[int, Arrival]] = {}
        #: Open gaps: src -> (missing seq, attempt, ticks since request).
        self._gaps: Dict[int, list] = {}
        self._last_degraded = False
        for k in self.needed:
            block0 = program.initial_block(k)
            self.actual[(k, 0)] = block0
            self.history[k] = HistoryRing(self.hist_cap, initial=(0, block0))
        if not self.needed:
            # No remote inputs exist; every iteration is vacuously
            # verified, so the windows never block.
            self.verified_upto = program.iterations

    # ------------------------------------------------------------ windows
    def pre_send_horizon(self, t: int) -> int:
        """Oldest iteration that must be verified before X_j(t) is sent."""
        gate = self._pre_send_horizon or default_pre_send_horizon
        return gate(self, t)

    def window_ok(self, t: int) -> bool:
        """May iteration ``t`` start given the rank's forward window?"""
        gate = self._window_ok or default_window_ok
        return gate(self, t)

    # ---------------------------------------------------------- bookkeeping
    # @commits: the block stored here is the *actual* arrival from the
    # transport, never a speculation — storing it into the history ring
    # and advancing the verified horizon is the protocol's confirmation
    # step itself, so spectaint treats values entering here as committed.
    @commits
    def record_arrival(self, k: int, t: int, block: Block) -> None:
        """Store an actual block and advance the verified horizon."""
        expected = len(self.needed)
        self.actual[(k, t)] = block
        self.history[k].append(t, block)
        self.missing[t] = self.missing.get(t, expected) - 1
        while self.missing.get(self.verified_upto + 1, expected) == 0:
            self.verified_upto += 1
        if self.sanitizer is not None:
            ring = self.history[k]
            self.sanitizer.on_ring_occupancy(
                self.rank, k, len(ring), ring.capacity
            )
            # Run-ahead backlog: iterations arrived beyond the verified
            # horizon.  Bounded by the *policy ceiling* (not the live fw)
            # because peers under an adaptive policy may legitimately
            # run a wider window than this rank's current one.
            fw_bound = (
                self.policy.max_fw if self.policy is not None else self.fw
            )
            self.sanitizer.on_inbox_depth(
                self.rank,
                k,
                t - self.verified_upto,
                fw_bound + max(fw_bound, 1),
            )

    def prune(self) -> None:
        """Drop bookkeeping no correction can ever need again."""
        horizon = min(self.verified_upto, self.frontier)
        for t in [t for t in self.inputs_used if t < horizon]:
            del self.inputs_used[t]
        for key in [key for key in self.actual if key[1] < horizon]:
            del self.actual[key]
        for t in [t for t in self.missing if t < horizon]:
            del self.missing[t]
        for t in [t for t in self.chain if t < horizon - 1]:
            del self.chain[t]

    def next_seq(self, dst: int) -> int:
        """Stamp (and advance) the send sequence number for ``dst``."""
        seq = self._send_seq.setdefault(dst, 0)
        self._send_seq[dst] = seq + 1
        return seq

    # ------------------------------------------------------------ protocol
    def run(self) -> Generator:
        """The full protocol for this rank, as an effect generator.

        Yields :mod:`repro.engine.events` effects; ``Recv``/``TryRecv``
        expect an :class:`Arrival` (or None) sent back.  Returns the
        rank's final block.
        """
        prog = self.program
        j = self.rank
        T = prog.iterations
        stats = self.stats

        for t in range(T):
            # 1. Opportunistically absorb whatever has already arrived.
            while True:
                arrival = yield TryRecv()
                if arrival is None:
                    break
                yield from self._on_arrival(arrival)

            # 2a. Pre-send window: Fig. 3 sends X_j(t) only after the
            #     previous iteration's trailing verification loop, so any
            #     correction of X_j(t) lands *before* it goes on the wire.
            while self.verified_upto < self.pre_send_horizon(t):
                arrival = yield Recv(
                    phase="comm", iteration=t, timeout=self._recv_timeout()
                )
                if arrival is None:
                    yield from self._on_recv_timeout()
                    continue
                self.epoch_wait += arrival.waited
                yield from self._on_arrival(arrival)

            # 2b. Broadcast X_j(t) (iteration 0 is known everywhere from
            #     the initial read; no message needed).
            if t > 0 and self.audience:
                if any(key[1] < t for key in self.spec_used):
                    stats.tainted_sends += 1
                nbytes = prog.block_nbytes(j)
                for dst in self.audience:
                    yield Send(
                        dst=dst,
                        payload=self.chain[t],
                        iteration=t,
                        nbytes=nbytes,
                        seq=self.next_seq(dst),
                    )
                pack = prog.send_ops(j) * len(self.audience)
                if pack > 0:
                    # Sender-side software cost (PVM pack); serial with
                    # the sender's own progress, like the real stack.
                    yield Charge(pack, phase="comm", iteration=t)

            # 2c. Post-send window: with fw = 0 this is the blocking
            #     receive of Fig. 1; with fw >= 1 a no-op beyond 2a.
            while not self.window_ok(t):
                arrival = yield Recv(
                    phase="comm", iteration=t, timeout=self._recv_timeout()
                )
                if arrival is None:
                    yield from self._on_recv_timeout()
                    continue
                self.epoch_wait += arrival.waited
                yield from self._on_arrival(arrival)

            # 3. Assemble inputs, speculating what is missing.
            inputs: Dict[int, Block] = {j: self.chain[t]}
            for k in sorted(self.needed):
                known = self.actual.get((k, t))
                if known is not None:
                    inputs[k] = known
                else:
                    times, values = self.history[k].series()
                    spec = prog.speculate(j, k, times, values, t)
                    yield Charge(
                        prog.speculate_ops(j, k), phase="spec", iteration=t
                    )
                    self.spec_used[(k, t)] = spec
                    inputs[k] = spec
                    stats.spec_made += 1
                    yield Speculated(peer=k, iteration=t)
            self.inputs_used[t] = inputs

            # 4. Compute X_j(t+1).
            yield ComputeBegin(
                iteration=t, verified_upto=self.verified_upto, fw=self.fw
            )
            new_block = prog.compute(j, inputs, t)
            yield Charge(prog.compute_ops(j), phase="compute", iteration=t)
            self.chain[t + 1] = new_block
            self.frontier = t + 1
            stats.iterations += 1
            self.prune()
            # The transport may respond with its clock (virtual, wall
            # or step time); the seated policy retunes the window on it.
            now = yield IterationDone(iteration=t)
            if self.policy is not None:
                yield from self._retune(t, now)

        # 5. Final verification: wait out all stragglers so every
        #    speculation is checked and corrected before reporting.
        while self.verified_upto < T - 1:
            arrival = yield Recv(
                phase="comm", iteration=T - 1, timeout=self._recv_timeout()
            )
            if arrival is None:
                yield from self._on_recv_timeout()
                continue
            yield from self._on_arrival(arrival)

        return self.chain[T]

    # -------------------------------------------------------------- policy
    def _retune(self, t: int, now: Optional[float]) -> Generator:
        """Consult the seated window policy after iteration ``t``.

        ``now`` is the transport's response to ``IterationDone``; a
        transport with no clock (the model checker) responds None and
        the iteration count stands in — a pure function of protocol
        state, so fingerprint dedup stays sound.
        """
        policy = self.policy
        assert policy is not None
        clock = float(t + 1) if now is None else float(now)
        observe_losses = getattr(policy, "observe_losses", None)
        if observe_losses is not None:
            observe_losses(self.stats.retransmits)
        new_fw = policy.on_iteration(
            t,
            fw=self.fw,
            epoch_wait=self.epoch_wait,
            checks=self.stats.checks,
            rejects=self.stats.spec_rejected,
            now=clock,
        )
        if new_fw != self.fw:
            old_fw = self.fw
            self.fw = new_fw
            yield WindowChanged(
                iteration=t + 1,
                old_fw=old_fw,
                new_fw=new_fw,
                min_fw=policy.min_fw,
                max_fw=policy.max_fw,
            )
        degraded = getattr(policy, "degraded", None)
        if degraded is not None and bool(degraded) != self._last_degraded:
            self._last_degraded = bool(degraded)
            yield Degraded(
                iteration=t + 1,
                active=self._last_degraded,
                losses=self.stats.retransmits,
            )

    # ----------------------------------------------------------- resilience
    def _backoff(self, attempt: int) -> float:
        """Exponential escalation wait before request ``attempt + 1``."""
        return self.retry_backoff * (2 ** (attempt - 1))

    def _recv_timeout(self) -> Optional[float]:
        """Park bound for blocking receives: one backoff quantum while
        any sequence gap is outstanding, unbounded otherwise."""
        return self.retry_backoff if self._gaps else None

    def _emit_retransmit(self, src: int, seq: int, attempt: int) -> Generator:
        self.stats.retransmits += 1
        yield Retransmit(
            peer=src,
            seq=seq,
            attempt=attempt,
            max_attempts=self.max_retries,
            backoff=self._backoff(attempt),
        )
        if attempt > self.max_retries:
            raise RetransmitExhausted(
                f"rank {self.rank}: message seq {seq} from rank {src} still "
                f"missing after {self.max_retries} retransmit requests"
            )

    def _gap_tick(self, src: int) -> Generator:
        """Open (or escalate, with exponential backoff) ``src``'s gap."""
        missing = self._recv_next.get(src, 0)
        gap = self._gaps.get(src)
        if gap is None or gap[0] != missing:
            self._gaps[src] = [missing, 1, 0]
            yield from self._emit_retransmit(src, missing, 1)
            return
        gap[2] += 1
        if gap[2] >= self._backoff(gap[1]):
            gap[1] += 1
            gap[2] = 0
            yield from self._emit_retransmit(src, missing, gap[1])

    def _on_recv_timeout(self) -> Generator:
        """A bounded receive expired: escalate every open gap."""
        timeout = self._recv_timeout()
        if timeout is not None:
            self.epoch_wait += timeout
        for src in sorted(self._gaps):
            yield from self._gap_tick(src)

    # ------------------------------------------------------------- arrivals
    def _on_arrival(self, arrival: Arrival) -> Generator:
        """Route one arrival through the resilience layer.

        Unsequenced arrivals (``seq < 0``, e.g. the DES wire before
        stamping) pass straight through.  Sequenced ones are suppressed
        as duplicates, parked on a gap, or accepted in order — parked
        successors are replayed the moment the gap heals, so the
        protocol core below only ever sees the fault-free order.
        """
        k = arrival.src
        if k not in self.needed:  # pragma: no cover - audience routing
            return
        if arrival.seq < 0:
            yield from self._accept(arrival)
            return
        expected = self._recv_next.get(k, 0)
        if arrival.seq < expected:
            self.stats.dups_suppressed += 1
            return
        if arrival.seq > expected:
            self._recv_stash.setdefault(k, {})[arrival.seq] = arrival
            yield from self._gap_tick(k)
            return
        self._recv_next[k] = expected + 1
        yield from self._accept(arrival)
        stash = self._recv_stash.get(k)
        while stash:
            parked = stash.pop(self._recv_next[k], None)
            if parked is None:
                break
            self._recv_next[k] += 1
            yield from self._accept(parked)
        if k in self._gaps:
            if not stash:
                healed = self._gaps.pop(k)
                self._recv_stash.pop(k, None)
                if self.sanitizer is not None:
                    self.sanitizer.on_gap_healed(self.rank, k, healed[0])
            else:
                # The old gap healed but a later seq is still missing:
                # open the follow-up gap with a fresh retry budget.
                yield from self._gap_tick(k)

    def _accept(self, arrival: Arrival) -> Generator:
        """Store an in-order arrival; verify (maybe correct) a speculation."""
        prog = self.program
        j = self.rank
        stats = self.stats
        k, t = arrival.src, arrival.iteration
        actual = arrival.payload
        self.record_arrival(k, t, actual)

        spec = self.spec_used.pop((k, t), None)
        if spec is None:
            return  # arrived before we needed it: nothing to verify

        yield Verified(peer=k, iteration=t)
        stats.checks += 1
        own = self.chain[t]
        # The check numerics run before their Charge so wall-clock
        # transports attribute the real check time to the right phase;
        # under DES the virtual timeline is identical either way (no
        # effect separates the two).
        error = prog.check(j, k, spec, actual, own)
        yield Charge(prog.check_ops(j, k), phase="check", iteration=t)
        if error <= prog.threshold:
            stats.spec_accepted += 1
            return
        stats.spec_rejected += 1
        yield from self._cascade(k, t, spec, actual)

    def _cascade(
        self, k: int, t: int, spec: Block, actual: Block
    ) -> Generator:
        """Repair iteration ``t``; recompute everything after it."""
        prog = self.program
        j = self.rank
        stats = self.stats
        yield CascadeBegin(iteration=t)

        # Repair iteration t itself via the (possibly incremental)
        # application correction hook.
        inputs = self.inputs_used[t]
        corrected, ops = prog.correct(
            j, self.chain[t + 1], inputs, k, spec, actual, t
        )
        inputs[k] = actual
        yield Charge(ops, phase="correct", iteration=t)
        self.chain[t + 1] = corrected
        stats.recomputes += 1
        yield Corrected(peer=k, iteration=t)

        if self.cascade == "none":
            yield CascadeEnd()
            return

        # Cascade: iterations t+1 .. frontier-1 consumed the old chain.
        for t2 in range(t + 1, self.frontier):
            yield CascadeStep(iteration=t2)
            yield Corrected(peer=k, iteration=t2)
            inputs2 = self.inputs_used[t2]
            inputs2[j] = self.chain[t2]
            for k2 in sorted(self.needed):
                if (k2, t2) in self.spec_used:
                    # The ring may grow mid-cascade (arrivals interleave
                    # with the Charge yields), so it is re-read per step.
                    times, values = self.history[k2].series()  # specperf: disable=SPP204
                    respec = prog.speculate(j, k2, times, values, t2)
                    yield Charge(
                        prog.speculate_ops(j, k2), phase="correct", iteration=t2
                    )
                    self.spec_used[(k2, t2)] = respec
                    inputs2[k2] = respec
                    stats.spec_made += 1
                    yield Speculated(peer=k2, iteration=t2, in_cascade=True)
            new_block = prog.compute(j, inputs2, t2)
            yield Charge(prog.compute_ops(j), phase="correct", iteration=t2)
            self.chain[t2 + 1] = new_block
            stats.recomputes += 1
        yield CascadeEnd()


class ReceiveDrivenEngine:
    """The Fig. 7 baseline (incremental compute, no speculation) over
    the same effect alphabet and transports as :class:`SpecEngine`.

    Per iteration: broadcast the own block, start the accumulator from
    local state, then absorb each message *as it arrives* (any order);
    when all expected blocks are in, finish the update and move on.
    """

    def __init__(
        self,
        program: Any,  # IncrementalProgram (avoids a core import cycle)
        rank: int,
        needed: FrozenSet[int],
        audience: Sequence[int],
        stats: Optional[SpecStats] = None,
    ) -> None:
        # Duck-typed (an isinstance against IncrementalProgram would
        # cycle the import graph): the three kernels are the contract.
        for kernel in ("begin", "absorb", "finish"):
            if not callable(getattr(program, kernel, None)):
                raise TypeError(
                    "ReceiveDrivenEngine needs an IncrementalProgram "
                    f"(missing {kernel!r})"
                )
        self.program = program
        self.rank = rank
        self.needed = frozenset(needed)
        self.audience = list(audience)
        self.stats = stats if stats is not None else SpecStats(rank=rank)
        self._send_seq: Dict[int, int] = {dst: 0 for dst in self.audience}

    def next_seq(self, dst: int) -> int:
        """Stamp (and advance) the send sequence number for ``dst``."""
        seq = self._send_seq.setdefault(dst, 0)
        self._send_seq[dst] = seq + 1
        return seq

    def run(self) -> Generator:
        """The receive-driven protocol as an effect generator."""
        prog = self.program
        j = self.rank
        T = prog.iterations
        stats = self.stats
        needed = sorted(self.needed)

        own = prog.initial_block(j)
        #: Blocks known for iteration 0 (the initial read).
        initial = {k: prog.initial_block(k) for k in needed}

        for t in range(T):
            if t > 0 and self.audience:
                nbytes = prog.block_nbytes(j)
                for dst in self.audience:
                    yield Send(
                        dst=dst,
                        payload=own,
                        iteration=t,
                        nbytes=nbytes,
                        seq=self.next_seq(dst),
                    )
                pack = prog.send_ops(j) * len(self.audience)
                if pack > 0:
                    yield Charge(pack, phase="comm", iteration=t)

            acc = prog.begin(j, own, t)
            yield Charge(prog.begin_ops(j), phase="compute", iteration=t)

            remaining = set(needed)
            while remaining:
                if t == 0:
                    k = remaining.pop()
                    block = initial[k]
                else:
                    arrival = yield Recv(
                        phase="comm", iteration=t, match=(VARS, t)
                    )
                    k = arrival.src
                    if k not in remaining:  # pragma: no cover - tags prevent
                        raise RuntimeError(f"duplicate block from rank {k}")
                    remaining.discard(k)
                    block = arrival.payload
                acc = prog.absorb(j, acc, k, block, t)
                yield Charge(
                    prog.absorb_ops(j, k), phase="compute", iteration=t
                )

            own = prog.finish(j, acc, own, t)
            yield Charge(prog.finish_ops(j), phase="compute", iteration=t)
            stats.iterations += 1
            yield IterationDone(iteration=t)

        return own
