"""Pipe transport: the engine on real OS processes.

Interprets the engine's effects against
:class:`multiprocessing.connection.Connection` pipes, with injected
per-message latency standing in for the paper's slow Ethernet.

Delivery-time gating, no busy-wait
----------------------------------
Injected latency is enforced at the *receiver*: each wire message
carries a ``deliver_at`` wall-clock stamp and does not count as
arrived until that instant passes — exactly how the simulator's delay
networks behave.  Blocking receives park in
:func:`multiprocessing.connection.wait` (``select`` under the hood)
until either new bytes arrive or the earliest pending stamp matures;
there is **no sleep-poll loop** (the old ``_Mailbox.take_blocking``
spun at 1e-4 s), so a blocked worker burns ~zero CPU — asserted by
``tests/test_engine_pipes.py``.

Sequenced, FIFO-restored delivery (the SPF111 fix)
--------------------------------------------------
Every message carries the engine's per-destination sequence number.
The receiver checks contiguity per peer (a gap or repeat raises
:class:`~repro.engine.transport.TransportError` instead of silently
mismatching conversations) and *floors each stamp at its
predecessor's*: jitter can no longer reorder one peer's ``vars``
stream in front of a wildcard receive, which was specflow's SPF111
race.  The channel behaves as FIFO-with-variable-delay, matching the
protocol's happens-before model.
"""

from __future__ import annotations

import time
from multiprocessing import connection
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.sanitizer import ProtocolSanitizer, sanitizer_from_env
from repro.engine.events import (
    VARS,
    Arrival,
    CascadeBegin,
    CascadeEnd,
    CascadeStep,
    Charge,
    ComputeBegin,
    Corrected,
    Degraded,
    FaultInjected,
    IterationDone,
    Recv,
    Retransmit,
    Send,
    Speculated,
    TryRecv,
    Verified,
    WindowChanged,
)
from repro.engine.transport import TransportError
from repro.trace.events import TraceEvent

#: One buffered in-box entry:
#: (effective_deliver_at, wire_seq, iteration, payload).
_Pending = Tuple[float, int, int, Any]


class PipeTransport:
    """One worker's bridge between a sans-I/O engine and real pipes.

    Parameters
    ----------
    rank:
        This worker's rank (event attribution).
    conns:
        peer rank -> duplex :class:`Connection`.
    latency / jitter:
        Injected one-way delay in wall seconds and the log-normal
        sigma multiplying it per message.
    rng:
        Seeded generator for the jitter stream (None = no jitter).
    record_events:
        Record protocol :class:`TraceEvent` s (times relative to
        :meth:`start`) for ``repro analyze --trace`` replay.
    sanitize:
        Run under the :class:`~repro.analysis.sanitizer.ProtocolSanitizer`
        (same runtime seat as the DES and loopback backends); ``None``
        (default) defers to the ``REPRO_SANITIZE`` environment variable.
    """

    def __init__(
        self,
        rank: int,
        conns: Mapping[int, Any],
        latency: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        record_events: bool = False,
        sanitize: Optional[bool] = None,
    ) -> None:
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be >= 0")
        self.rank = rank
        self._conns: Dict[int, Any] = dict(conns)
        self._src_by_conn = {id(conn): src for src, conn in self._conns.items()}
        self._wait_list: List[Any] = list(self._conns.values())
        self.latency = latency
        self.jitter = jitter
        self._rng = rng
        self.record_events = record_events
        if sanitize is None:
            self.sanitizer: Optional[ProtocolSanitizer] = sanitizer_from_env()
        else:
            self.sanitizer = ProtocolSanitizer() if sanitize else None
        #: Per-peer FIFO of gated messages, already sequence-checked.
        self._inbox: Dict[int, List[_Pending]] = {src: [] for src in self._conns}
        #: Next expected wire sequence number per peer.
        self._expected_seq: Dict[int, int] = {src: 0 for src in self._conns}
        #: FIFO floor: a message never becomes deliverable before its
        #: per-peer predecessor (kills jitter-induced reordering).
        self._deliver_floor: Dict[int, float] = {src: 0.0 for src in self._conns}
        self.events: List[TraceEvent] = []
        self._event_seq = 0
        self.phase_seconds: Dict[str, float] = {}
        #: (iteration, new_fw) decisions from the engine-seated window
        #: policy (always collected; the worker reports them upstream).
        self.window_events: List[Tuple[int, int]] = []
        self.t0 = time.monotonic()
        self._mark = self.t0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Re-stamp the protocol start (call right after the barrier)."""
        self.t0 = time.monotonic()
        self._mark = self.t0
        self._event_seq = 0
        self.events.clear()
        self.window_events.clear()

    @property
    def wall_seconds(self) -> float:
        """Wall time since :meth:`start`."""
        return time.monotonic() - self.t0

    def finish(self) -> None:
        """Protocol is over: run the sanitizer's end-of-run checks
        (outstanding speculations = an eventual-verification violation).
        Call after :func:`~repro.engine.transport.drive` returns."""
        if self.sanitizer is not None:
            self.sanitizer.on_run_end()

    # ------------------------------------------------------------- handlers
    def send(self, effect: Send) -> None:
        delay = self.latency
        if self.jitter > 0 and self._rng is not None:
            delay *= float(np.exp(self._rng.normal(0.0, self.jitter)))
        self._emit("send", peer=effect.dst, iteration=effect.iteration)
        conn = self._conns.get(effect.dst)
        if conn is None:
            raise TransportError(f"no pipe to rank {effect.dst}")
        conn.send((effect.seq, time.monotonic() + delay, effect.iteration,
                   effect.payload))

    def charge(self, effect: Charge) -> None:
        """Attribute the wall time since the last boundary to the phase.

        The numerics whose declared cost this is have just executed
        inside the engine, so the elapsed real time *is* the phase's
        cost on this backend; ``effect.ops`` is deliberately unused.
        """
        now = time.monotonic()
        self.phase_seconds[effect.phase] = (
            self.phase_seconds.get(effect.phase, 0.0) + (now - self._mark)
        )
        self._mark = now

    def try_recv(self, _effect: TryRecv) -> Optional[Arrival]:
        self._pump()
        return self._pop_deliverable(time.monotonic(), match=None)

    def recv(self, effect: Recv) -> Optional[Arrival]:
        entry = time.monotonic()
        deadline = None if effect.timeout is None else entry + effect.timeout
        while True:
            self._pump()
            now = time.monotonic()
            arrival = self._pop_deliverable(now, match=effect.match)
            if arrival is not None:
                end = time.monotonic()
                self.phase_seconds[effect.phase] = (
                    self.phase_seconds.get(effect.phase, 0.0) + (end - entry)
                )
                self._mark = end
                return Arrival(
                    src=arrival.src, iteration=arrival.iteration,
                    payload=arrival.payload, waited=end - entry,
                    seq=arrival.seq,
                )
            if deadline is not None and now >= deadline:
                # Bounded park expired empty (the engine's retransmit
                # timer under fault injection): attribute the wait and
                # let the engine escalate.
                self.phase_seconds[effect.phase] = (
                    self.phase_seconds.get(effect.phase, 0.0) + (now - entry)
                )
                self._mark = now
                return None
            # Park until new bytes arrive or the earliest gated message
            # matures.  No polling loop: `connection.wait` blocks in
            # select(); a pure latency wait is one sleep to a deadline.
            timeout = self._next_maturity(now)
            if deadline is not None:
                remaining = max(0.0, deadline - now)
                timeout = remaining if timeout is None else min(timeout, remaining)
            connection.wait(self._wait_list, timeout)

    def notify(self, effect: Any) -> Optional[float]:
        san = self.sanitizer
        kind = type(effect)
        if kind is Speculated:
            if san is not None:
                san.on_speculate(self.rank, effect.peer, effect.iteration)
            if not effect.in_cascade:
                self._emit("speculate", peer=effect.peer,
                           iteration=effect.iteration)
        elif kind is ComputeBegin:
            if san is not None:
                san.on_compute_begin(
                    self.rank, effect.iteration, effect.verified_upto,
                    effect.fw,
                )
            self._emit("compute", iteration=effect.iteration)
        elif kind is Verified:
            if san is not None:
                san.on_verify(self.rank, effect.peer, effect.iteration)
            self._emit("verify", peer=effect.peer, iteration=effect.iteration)
        elif kind is Corrected:
            self._emit("correct", peer=effect.peer, iteration=effect.iteration)
        elif kind is CascadeBegin:
            if san is not None:
                san.on_cascade_begin(self.rank, effect.iteration)
        elif kind is CascadeStep:
            if san is not None:
                san.on_cascade_step(self.rank, effect.iteration)
        elif kind is CascadeEnd:
            if san is not None:
                san.on_cascade_end(self.rank)
        elif kind is IterationDone:
            # Respond with the wall clock: the engine-seated window
            # policy adapts on real blocked-in-select seconds here.
            return self.wall_seconds
        elif kind is WindowChanged:
            if san is not None:
                san.on_window_changed(
                    self.rank, effect.iteration, effect.old_fw,
                    effect.new_fw, effect.min_fw, effect.max_fw,
                )
            self._emit("window", peer=effect.new_fw,
                       iteration=effect.iteration)
            self.window_events.append((effect.iteration, effect.new_fw))
        elif kind is FaultInjected:
            self._emit("fault", peer=effect.src, iteration=effect.iteration)
        elif kind is Retransmit:
            if san is not None:
                san.on_retransmit(self.rank, effect.peer, effect.seq,
                                  effect.attempt, effect.max_attempts)
            self._emit("retransmit", peer=effect.peer, iteration=effect.seq)
        elif kind is Degraded:
            self._emit("degraded", peer=int(effect.active),
                       iteration=effect.iteration)
        return None

    # ------------------------------------------------------------- internals
    def _pump(self) -> None:
        """Drain every pipe into the sequence-checked, gated inbox."""
        for src, conn in self._conns.items():
            while conn.poll():
                seq, deliver_at, iteration, payload = conn.recv()
                expected = self._expected_seq[src]
                if seq != expected:
                    raise TransportError(
                        f"rank {self.rank}: wire sequence break from rank "
                        f"{src}: got seq {seq}, expected {expected}"
                    )
                self._expected_seq[src] = expected + 1
                effective = max(deliver_at, self._deliver_floor[src])
                self._deliver_floor[src] = effective
                self._inbox[src].append((effective, seq, iteration, payload))

    def _pop_deliverable(
        self, now: float, match: Optional[Tuple[str, int]]
    ) -> Optional[Arrival]:
        """Oldest matured message, respecting per-peer FIFO order."""
        best_src: Optional[int] = None
        best_at = float("inf")
        for src in self._inbox:
            queue = self._inbox[src]
            if not queue:
                continue
            effective, _seq, iteration, _payload = queue[0]
            if effective > now:
                continue
            if match is not None and (VARS, iteration) != match:
                continue
            if effective < best_at or (effective == best_at
                                       and (best_src is None or src < best_src)):
                best_src, best_at = src, effective
        if best_src is None:
            return None
        _effective, seq, iteration, payload = self._inbox[best_src].pop(0)
        if self.sanitizer is not None:
            self.sanitizer.on_delivery(self.rank, best_src, seq)
        self._emit("recv", peer=best_src, iteration=iteration)
        return Arrival(src=best_src, iteration=iteration, payload=payload,
                       seq=seq)

    def _next_maturity(self, now: float) -> Optional[float]:
        """Seconds until the earliest gated message matures (None =
        nothing buffered; wait for bytes indefinitely)."""
        stamps = [queue[0][0] for queue in self._inbox.values() if queue]
        if not stamps:
            return None
        return max(0.0, min(stamps) - now)

    def _emit(
        self, kind: str, peer: Optional[int] = None,
        iteration: Optional[int] = None,
    ) -> None:
        if not self.record_events:
            return
        # Opt-in recording buffer living exactly one worker run; the
        # parent drains it into the run's (cappable) EventLog.
        self.events.append(  # specbound: disable=SPB406
            TraceEvent(
                rank=self.rank, seq=self._event_seq, kind=kind,
                time=time.monotonic() - self.t0,
                peer=peer, family=VARS, iteration=iteration,
            )
        )
        self._event_seq += 1


def full_mesh(ctx: Any, p: int) -> Dict[int, Dict[int, Any]]:
    """Duplex pipe mesh: ``mesh[i][j]`` is i's endpoint to j."""
    mesh: Dict[int, Dict[int, Any]] = {i: {} for i in range(p)}
    for i in range(p):
        for j in range(i + 1, p):
            a, b = ctx.Pipe(duplex=True)
            mesh[i][j] = a
            mesh[j][i] = b
    return mesh


def close_mesh(endpoints: Iterable[Any]) -> None:
    """Best-effort close of a set of pipe endpoints."""
    for conn in endpoints:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
