"""The transport seam: how a sans-I/O engine meets a medium.

A *transport* interprets the engine's effects against one messaging
medium.  Three implementations ship:

* :class:`~repro.engine.des_transport.DESTransport` — the discrete
  event simulator (``repro.vm`` clusters over ``repro.netsim``
  networks); effects become :class:`VirtualProcessor` calls, costs
  become virtual time.
* :class:`~repro.engine.loopback.LoopbackRunner` — in-process queues
  with a deterministic round-robin scheduler; for tests and toys.
* :class:`~repro.engine.pipes.PipeTransport` — real
  ``multiprocessing`` pipes with injected latency; costs become wall
  time.

:func:`drive` is the synchronous interpreter loop shared by the
wall-clock transports; the DES transport has its own generator-shaped
loop because its handlers must ``yield`` into the simulator.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

from repro.engine.events import Arrival, Charge, Recv, Send, TryRecv


class TransportError(RuntimeError):
    """A transport observed a protocol-impossible condition (sequence
    gap, wire corruption, unroutable message)."""


@runtime_checkable
class Transport(Protocol):
    """What a synchronous transport must implement for :func:`drive`."""

    def send(self, effect: Send) -> None:
        """Hand one protocol message to the medium (asynchronous)."""

    def recv(self, effect: Recv) -> Optional[Arrival]:
        """Block until a matching protocol message is available (or,
        when the effect carries a ``timeout``, until it expires — then
        respond None so the engine's retransmit timer can escalate)."""

    def try_recv(self, effect: TryRecv) -> Optional[Arrival]:
        """Non-blocking receive; None when nothing is deliverable."""

    def charge(self, effect: Charge) -> None:
        """Account compute cost to a phase (wall transports attribute
        the real time since the previous effect boundary)."""

    def notify(self, event: Any) -> Optional[float]:
        """Forward a protocol event to the medium's observers.

        May return a clock reading (wall/virtual/step seconds) that
        :func:`drive` sends back into the engine — the transport-time
        channel the seated window policy adapts on at
        ``IterationDone``.  Return None when the event needs no
        response.
        """


def drive(engine: Any, transport: Transport) -> Any:
    """Run ``engine`` to completion against a synchronous transport.

    Returns the engine's final block.  This is the whole sans-I/O
    pattern in eleven lines: the engine yields effects, the transport
    performs them, arrivals (and clock readings) flow back in.
    """
    gen = engine.run()
    response: Optional[Arrival | float] = None
    while True:
        try:
            effect = gen.send(response)
        except StopIteration as stop:
            return stop.value
        response = None
        kind = type(effect)
        if kind is Send:
            transport.send(effect)
        elif kind is Recv:
            response = transport.recv(effect)
        elif kind is TryRecv:
            response = transport.try_recv(effect)
        elif kind is Charge:
            transport.charge(effect)
        else:
            response = transport.notify(effect)
