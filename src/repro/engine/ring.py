"""The backward-window history ring.

Every backend keeps, per remote rank, the last BW received actuals —
the backward window the speculators extrapolate from (Section 3.2).
The trim logic used to be copy-pasted three times
(``del history[k][:-bw_cap]`` in the pipe worker, a bare ``deque`` in
the DES driver); :class:`HistoryRing` is the single implementation,
with the protocol's ordering invariant built in.

Invariants (property-tested in ``tests/test_engine_ring.py``):

* times are strictly increasing — an out-of-order append raises;
* at most ``capacity`` entries are retained, always the newest ones;
* ``times()``/``values()`` views are consistent and aligned.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional, Tuple


class OutOfOrderArrival(RuntimeError):
    """A history append went backwards in iteration time.

    The speculative protocol assumes per-pair FIFO delivery; a
    violation means the transport reordered a conversation (exactly
    the SPF111 failure mode) and speculation state is corrupt.
    """


class HistoryRing:
    """Bounded, strictly time-ordered ring of ``(t, value)`` samples."""

    __slots__ = ("_items",)

    def __init__(
        self,
        capacity: int,
        initial: Optional[Tuple[int, Any]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._items: Deque[Tuple[int, Any]] = deque(maxlen=capacity)
        if initial is not None:
            self._items.append((int(initial[0]), initial[1]))

    # ----------------------------------------------------------- mutation
    def append(self, t: int, value: Any) -> None:
        """Record the actual value of iteration ``t`` (strictly newer
        than everything already held)."""
        if self._items and self._items[-1][0] >= t:
            raise OutOfOrderArrival(
                f"history append out of order: got t={t} after "
                f"t={self._items[-1][0]}"
            )
        self._items.append((t, value))

    # ------------------------------------------------------------ queries
    @property
    def capacity(self) -> int:
        """Maximum retained samples (the backward window bound)."""
        assert self._items.maxlen is not None
        return self._items.maxlen

    def times(self) -> List[int]:
        """Iteration numbers of the held samples, oldest first."""
        return [t for t, _ in self._items]

    def values(self) -> List[Any]:
        """Sample values aligned with :meth:`times`."""
        return [v for _, v in self._items]

    def series(self) -> Tuple[List[int], List[Any]]:
        """``(times, values)`` — the speculator's input signature."""
        return self.times(), self.values()

    def latest_time(self) -> Optional[int]:
        """Newest held iteration, or None when empty."""
        return self._items[-1][0] if self._items else None

    def latest(self) -> Tuple[int, Any]:
        """Newest ``(t, value)``; raises IndexError when empty."""
        return self._items[-1]

    def lookup(self, t: int) -> Optional[Any]:
        """Value recorded for iteration ``t``, or None if trimmed/absent."""
        for held_t, value in reversed(self._items):
            if held_t == t:
                return value
            if held_t < t:
                return None
        return None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Tuple[int, Any]]:
        return iter(self._items)

    def __repr__(self) -> str:
        return (
            f"<HistoryRing cap={self.capacity} times={self.times()!r}>"
        )
