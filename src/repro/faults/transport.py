"""Transport-side fault seam: pipes (and any Transport) backend.

:class:`FaultyTransport` implements the
:class:`~repro.engine.transport.Transport` protocol by wrapping a real
transport (in production, :class:`~repro.engine.pipes.PipeTransport`).
Sends pass through untouched — injection happens on the receive path,
downstream of the inner transport's wire bookkeeping, so the pipe's
seq-contiguity check and the sanitizer's wire-level
``sequence-gap-freedom`` seat keep observing a clean wire.  What the
*engine* sees is the perturbed stream, and the engine's resilience
layer (gap stash + retransmit requests) is what heals it.

The injector clock here is wall seconds (``time.monotonic``), so a
plan's ``delay`` / ``retransmit_delay`` / ``sender_timeout`` are
seconds on this backend.  Straggler slowdown is applied by stretching
the wall time between effect boundaries (sleeping ``factor - 1``
times the elapsed compute) — the same signature a genuinely slow rank
would show the paper's timeline instruments.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import replace
from typing import Any, Deque, Optional

from repro.engine.events import (
    Arrival,
    Charge,
    IterationDone,
    Recv,
    Retransmit,
    Send,
    TryRecv,
)
from repro.faults.injector import FaultInjector, InjectedCrash
from repro.faults.plan import FaultPlan

#: How long one receive poll sleeps when nothing is deliverable but
#: the injector still holds messages (seconds).
_POLL_SECONDS = 0.002


class FaultyTransport:
    """Wrap any Transport, injecting a :class:`FaultPlan` (see module
    docstring).  Unknown attributes proxy to the inner transport, so
    drivers keep reading ``sanitizer`` / ``phase_seconds`` /
    ``events`` off the wrapper unchanged."""

    def __init__(self, inner: Any, plan: FaultPlan) -> None:
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "injector", FaultInjector(plan, inner.rank))
        object.__setattr__(self, "_pending", deque())
        object.__setattr__(self, "_t0", time.monotonic())
        object.__setattr__(self, "_charge_mark", time.monotonic())

    def __getattr__(self, name: str) -> Any:
        return getattr(object.__getattribute__(self, "inner"), name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in ("inner", "injector", "_pending", "_t0", "_charge_mark"):
            object.__setattr__(self, name, value)
        else:
            setattr(self.inner, name, value)

    # ----------------------------------------------------------------- clock
    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _pump(self) -> None:
        """Drain the inner transport and the injector's timers into
        the local pending queue, notifying injected faults."""
        pending: Deque[Arrival] = self._pending
        while True:
            arrival = self.inner.try_recv(TryRecv())
            if arrival is None:
                break
            deliver, events = self.injector.admit(arrival)
            for event in events:
                self.inner.notify(event)
            pending.extend(deliver)
        pending.extend(self.injector.tick(self._now()))

    # ------------------------------------------------------------- transport
    def send(self, effect: Send) -> None:
        self.inner.send(effect)

    def try_recv(self, _effect: TryRecv) -> Optional[Arrival]:
        self._pump()
        pending = self._pending
        return pending.popleft() if pending else None

    def recv(self, effect: Recv) -> Optional[Arrival]:
        deadline = (
            None if effect.timeout is None else self._now() + effect.timeout
        )
        while True:
            self._pump()
            pending = self._pending
            if pending:
                return pending.popleft()
            if deadline is not None and self._now() >= deadline:
                return None
            if self.injector.outstanding():
                # A held message will mature on our own timers: poll.
                time.sleep(_POLL_SECONDS)
                continue
            # Nothing held locally — park in the real transport, but
            # wake periodically so the injector's timers keep running.
            arrival = self.inner.recv(replace(effect, timeout=0.05))
            if arrival is None:
                continue
            deliver, events = self.injector.admit(arrival)
            for event in events:
                self.inner.notify(event)
            pending.extend(deliver)

    def charge(self, effect: Charge) -> None:
        slow = self.injector.slowdown_for(effect.iteration)
        if slow > 1.0:
            elapsed = time.monotonic() - self._charge_mark
            if elapsed > 0:
                time.sleep(elapsed * (slow - 1.0))
        self.inner.charge(effect)
        self._charge_mark = time.monotonic()

    def notify(self, effect: Any) -> Any:
        if type(effect) is Retransmit:
            self.injector.on_retransmit_request(effect.peer, effect.seq)
            return self.inner.notify(effect)
        if type(effect) is IterationDone:
            if self.injector.crash_due(effect.iteration):
                raise InjectedCrash(
                    f"rank {self.inner.rank}: planned crash at iteration "
                    f"{effect.iteration}"
                )
            self._charge_mark = time.monotonic()
        return self.inner.notify(effect)
