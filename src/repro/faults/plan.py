"""The declarative, seeded fault plan.

A :class:`FaultPlan` is data, not behaviour: which edges lose,
duplicate, delay or reorder messages (and at what rate), which ranks
straggle or crash, and over which iteration windows.  The runtime
decisions are made by :mod:`repro.faults.injector` as pure hashes of
``(seed, fault index, src, dst, seq)``, so a plan is exactly as
reproducible as the protocol run it perturbs — same plan, same seed,
same faults, on every backend.

Plans round-trip through plain dicts (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`) and JSON files (:meth:`FaultPlan.save` /
:meth:`FaultPlan.load`) for the ``repro chaos --plan`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Edge-fault kinds a plan may request.
EDGE_FAULT_KINDS = ("drop", "duplicate", "delay", "reorder")


@dataclass(frozen=True)
class TriggerWindow:
    """Half-open iteration interval ``[start, stop)`` a fault is armed
    in; ``stop`` of None means "until the run ends"."""

    start: int = 0
    stop: Optional[int] = None

    def contains(self, iteration: int) -> bool:
        if iteration < self.start:
            return False
        return self.stop is None or iteration < self.stop

    def to_dict(self) -> Dict[str, Any]:
        return {"start": self.start, "stop": self.stop}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TriggerWindow":
        return cls(start=int(data.get("start", 0)),
                   stop=None if data.get("stop") is None else int(data["stop"]))


@dataclass(frozen=True)
class EdgeFault:
    """One message-level fault on a (src -> dst) edge.

    ``src`` / ``dst`` of None are wildcards (any sender / any
    receiver).  ``rate`` is the per-message firing probability;
    ``delay`` is how many transport clock units a delayed message is
    held (ignored by the other kinds).
    """

    kind: str
    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None
    delay: float = 2.0
    window: TriggerWindow = field(default_factory=TriggerWindow)

    def __post_init__(self) -> None:
        if self.kind not in EDGE_FAULT_KINDS:
            raise ValueError(
                f"unknown edge-fault kind {self.kind!r}; "
                f"expected one of {EDGE_FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"edge-fault rate must be in [0, 1], got {self.rate}")
        if self.delay < 0:
            raise ValueError("edge-fault delay must be >= 0")

    def matches(self, src: int, dst: int, iteration: int) -> bool:
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return self.window.contains(iteration)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "rate": self.rate, "src": self.src,
            "dst": self.dst, "delay": self.delay, **self.window.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EdgeFault":
        return cls(
            kind=str(data["kind"]),
            rate=float(data["rate"]),
            src=None if data.get("src") is None else int(data["src"]),
            dst=None if data.get("dst") is None else int(data["dst"]),
            delay=float(data.get("delay", 2.0)),
            window=TriggerWindow.from_dict(data),
        )


@dataclass(frozen=True)
class RankFault:
    """One rank-level fault: straggle by ``slowdown`` inside the
    window, and/or crash when iteration ``crash_at`` completes."""

    rank: int
    slowdown: float = 1.0
    crash_at: Optional[int] = None
    window: TriggerWindow = field(default_factory=TriggerWindow)

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (a factor, not a rate)")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank, "slowdown": self.slowdown,
            "crash_at": self.crash_at, **self.window.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RankFault":
        return cls(
            rank=int(data["rank"]),
            slowdown=float(data.get("slowdown", 1.0)),
            crash_at=(None if data.get("crash_at") is None
                      else int(data["crash_at"])),
            window=TriggerWindow.from_dict(data),
        )


@dataclass(frozen=True)
class FaultPlan:
    """Everything the fault layer needs, as one frozen value.

    ``retransmit`` controls whether the layer services retransmission
    (both the engine's :class:`~repro.engine.events.Retransmit`
    requests and its own sender-timeout fallback); disabling it models
    a transport with no recovery, which the ``retransmit-bounded``
    invariant must flag.  ``retransmit_delay`` is how long a serviced
    retransmission travels; ``sender_timeout`` is how long the layer
    waits for an engine request before its modelled sender timer fires
    on its own (both in transport clock units: wall seconds on pipes,
    receive polls on loopback/DES).
    """

    seed: int = 0
    edges: Tuple[EdgeFault, ...] = ()
    ranks: Tuple[RankFault, ...] = ()
    max_retries: int = 4
    retry_backoff: float = 1.0
    retransmit: bool = True
    retransmit_delay: float = 1.0
    sender_timeout: float = 8.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges", tuple(self.edges))
        object.__setattr__(self, "ranks", tuple(self.ranks))
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.retry_backoff <= 0 or self.retransmit_delay < 0:
            raise ValueError("backoff/delay must be positive")

    # ------------------------------------------------------------- lookups
    def rank_faults_for(self, rank: int) -> Tuple[RankFault, ...]:
        return tuple(f for f in self.ranks if f.rank == rank)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
            "retransmit": self.retransmit,
            "retransmit_delay": self.retransmit_delay,
            "sender_timeout": self.sender_timeout,
            "edges": [f.to_dict() for f in self.edges],
            "ranks": [f.to_dict() for f in self.ranks],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            edges=tuple(EdgeFault.from_dict(e) for e in data.get("edges", ())),
            ranks=tuple(RankFault.from_dict(r) for r in data.get("ranks", ())),
            max_retries=int(data.get("max_retries", 4)),
            retry_backoff=float(data.get("retry_backoff", 1.0)),
            retransmit=bool(data.get("retransmit", True)),
            retransmit_delay=float(data.get("retransmit_delay", 1.0)),
            sender_timeout=float(data.get("sender_timeout", 8.0)),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


@dataclass
class FaultSummary:
    """What one rank's injector actually did — the chaos run's receipt."""

    rank: int
    injected: Dict[str, int] = field(default_factory=dict)
    retransmits_serviced: int = 0
    auto_retransmits: int = 0
    outstanding_losses: int = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "injected": dict(self.injected),
            "total_injected": self.total_injected,
            "retransmits_serviced": self.retransmits_serviced,
            "auto_retransmits": self.auto_retransmits,
            "outstanding_losses": self.outstanding_losses,
        }


def merge_summaries(summaries: "list[FaultSummary]") -> Dict[str, Any]:
    """Fleet-wide totals for the chaos CLI's recovery report."""
    injected: Dict[str, int] = {}
    for s in summaries:
        for kind, n in s.injected.items():
            injected[kind] = injected.get(kind, 0) + n
    return {
        "injected": injected,
        "total_injected": sum(injected.values()),
        "retransmits_serviced": sum(s.retransmits_serviced for s in summaries),
        "auto_retransmits": sum(s.auto_retransmits for s in summaries),
        "outstanding_losses": sum(s.outstanding_losses for s in summaries),
        "per_rank": [s.to_dict() for s in summaries],
    }
