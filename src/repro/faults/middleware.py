"""Engine-side fault seam for the loopback and DES backends.

:class:`FaultyEngine` wraps an engine's effect generator and injects
the plan between the transport and the engine: arrivals responding to
``Recv`` / ``TryRecv`` are filtered through the shared
:class:`~repro.faults.injector.FaultInjector`, re-deliveries are
served from the wrapper's local queue (never touching the wire, so
the transport's own sequence bookkeeping stays contiguous), and the
engine's :class:`~repro.engine.events.Retransmit` requests are
serviced from the retained-loss buffer.  :class:`FaultInjected`
events are pushed downstream so each backend's observer seat
(sanitizer + EventLog) records them through its normal dispatch.

Clocking: the injector's clock unit is one receive poll.  On the
loopback the wrapper bounds blocking receives with ``Recv.timeout``
(the runner resumes a parked rank with ``None`` after that many
scheduler rounds); under DES — whose mailbox has no timeout — it
polls with ``TryRecv`` and charges ``poll_ops`` of virtual comm time
between polls, which *is* the "exponential backoff in transport clock
units" of the retransmit story: waiting costs simulated time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Any, Deque, Generator, Optional

from repro.engine.core import RetransmitExhausted
from repro.engine.events import (
    Arrival,
    Charge,
    IterationDone,
    Recv,
    Retransmit,
    TryRecv,
)
from repro.faults.injector import FaultInjector, InjectedCrash
from repro.faults.plan import FaultPlan

#: Attributes the wrapper keeps on itself; everything else proxies to
#: the wrapped engine so drivers (which set ``engine.sanitizer``, read
#: ``engine.fw`` / ``engine.stats``) never notice the seam.
_OWN_ATTRS = frozenset({
    "_engine", "_injector", "_charge_poll", "_poll_ops", "_pending",
    "_stalled",
})


class FaultyEngine:
    """Proxy an engine, injecting a :class:`FaultPlan` into its
    effect stream (see the module docstring)."""

    def __init__(
        self,
        engine: Any,
        plan: FaultPlan,
        charge_poll: bool = False,
        poll_ops: Optional[float] = None,
    ) -> None:
        object.__setattr__(self, "_engine", engine)
        object.__setattr__(self, "_injector", FaultInjector(plan, engine.rank))
        object.__setattr__(self, "_charge_poll", charge_poll)
        if poll_ops is None:
            # One poll costs a sliver of an iteration's compute: enough
            # to advance virtual time, cheap enough not to dominate.
            poll_ops = 0.01 * float(engine.program.compute_ops(engine.rank))
        object.__setattr__(self, "_poll_ops", poll_ops)
        object.__setattr__(self, "_pending", deque())
        object.__setattr__(self, "_stalled", 0)

    # --------------------------------------------------------------- proxying
    def __getattr__(self, name: str) -> Any:
        return getattr(object.__getattribute__(self, "_engine"), name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in _OWN_ATTRS:
            object.__setattr__(self, name, value)
        else:
            setattr(self._engine, name, value)

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    # ---------------------------------------------------------------- running
    def run(self) -> Generator:
        inj = self._injector
        gen = self._engine.run()
        response: Any = None
        while True:
            try:
                effect = gen.send(response)
            except StopIteration as stop:
                return stop.value
            response = None
            kind = type(effect)
            if kind is Recv or kind is TryRecv:
                response = yield from self._receive(effect)
            elif kind is Retransmit:
                inj.on_retransmit_request(effect.peer, effect.seq)
                yield effect  # observers still record the request
            elif kind is Charge:
                slow = inj.slowdown_for(effect.iteration)
                if slow > 1.0:
                    effect = replace(effect, ops=effect.ops * slow)
                yield effect
            elif kind is IterationDone:
                if inj.crash_due(effect.iteration):
                    raise InjectedCrash(
                        f"rank {self._engine.rank}: planned crash at "
                        f"iteration {effect.iteration}"
                    )
                response = yield effect
            else:
                response = yield effect

    def _receive(self, effect: Any) -> Generator:
        """Satisfy one Recv/TryRecv through the fault layer."""
        inj = self._injector
        pending: Deque[Arrival] = self._pending
        blocking = type(effect) is Recv
        while True:
            pending.extend(inj.tick())
            if pending:
                self._stalled = 0
                return pending.popleft()
            if not blocking:
                arrival = yield TryRecv()
                if arrival is None:
                    return None
            elif self._charge_poll and inj.outstanding():
                # DES: no mailbox timeout — poll, paying virtual time.
                arrival = yield TryRecv()
                if arrival is None:
                    yield Charge(
                        ops=self._poll_ops, phase="comm",
                        iteration=effect.iteration,
                    )
                    self._note_stall(effect)
                    continue
            else:
                timeout = effect.timeout
                if inj.outstanding():
                    timeout = 1.0 if timeout is None else min(timeout, 1.0)
                arrival = yield replace(effect, timeout=timeout)
                if arrival is None:
                    if effect.timeout is not None:
                        return None  # the engine's own timer: let it escalate
                    self._note_stall(effect)
                    continue
            self._stalled = 0
            deliver, events = inj.admit(arrival)
            for event in events:
                yield event
            pending.extend(deliver)

    def _note_stall(self, effect: Any) -> None:
        """One fruitless bounded poll while the engine itself set no
        timeout (no sequence gap is open to escalate).

        With ``plan.retransmit`` off a retained loss can never be
        re-delivered, and when the loss also stalled its sender no
        later arrival will ever open a gap — the engine's own retry
        budget cannot engage.  Bound those silent polls so the run
        fails loudly instead of livelocking.
        """
        inj = self._injector
        if inj.plan.retransmit or not inj.lost:
            self._stalled = 0
            return
        self._stalled += 1
        budget = inj.plan.sender_timeout * (inj.plan.max_retries + 1)
        if self._stalled > budget:
            keys = sorted(inj.lost)
            raise RetransmitExhausted(
                f"rank {self._engine.rank}: dropped message(s) "
                f"{keys} (src, seq) cannot be recovered — retransmission "
                f"is disabled and no later arrival opened a sequence gap "
                f"within {budget:g} polls"
            )


def wrap_engine(
    engine: Any,
    plan: Optional[FaultPlan],
    charge_poll: bool = False,
) -> Any:
    """Wrap ``engine`` in the fault seam, or pass it through untouched
    when no plan is given (the fault-free fast path stays unchanged)."""
    if plan is None:
        return engine
    return FaultyEngine(engine, plan, charge_poll=charge_poll)
