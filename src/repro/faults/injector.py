"""The per-rank fault core both injection seams share.

One :class:`FaultInjector` sits on a single rank's receive path.  It
filters every wire arrival through the plan's edge faults, retains
dropped messages in a retransmit buffer (the modelled sender keeps a
copy until it is acknowledged), schedules duplicate / delayed /
retransmitted re-deliveries against the caller's clock, and answers
the engine's :class:`~repro.engine.events.Retransmit` requests.

Every decision is ``_roll(seed, fault_index, src, dst, seq)`` — a
pure hash, no RNG state — so the same plan produces byte-identical
fault schedules on the loopback, DES and pipes backends regardless of
timing, and re-running a chaos experiment replays it exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.events import Arrival, FaultInjected
from repro.faults.plan import FaultPlan, FaultSummary


class InjectedCrash(RuntimeError):
    """A :class:`~repro.faults.plan.RankFault` killed this rank."""


def _roll(seed: int, *key: Any) -> float:
    """Deterministic uniform [0, 1) from the plan seed and a fault key."""
    digest = hashlib.blake2b(
        repr((seed,) + key).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


class FaultInjector:
    """Applies one :class:`FaultPlan` on one rank's receive path.

    The caller owns the clock: :meth:`tick` is called with the
    transport's notion of now (wall seconds on pipes; ``None`` to use
    an internal poll counter on loopback/DES) and returns re-deliveries
    that matured plus the :class:`FaultInjected` events to notify.
    """

    def __init__(self, plan: FaultPlan, rank: int) -> None:
        self.plan = plan
        self.rank = rank
        self.clock = 0.0
        #: (src, seq) -> (arrival, lost_at_clock): the retransmit buffer.
        self.lost: Dict[Tuple[int, int], Tuple[Arrival, float]] = {}
        #: Scheduled re-deliveries: (ready_at, order, arrival) kept sorted.
        self._scheduled: List[Tuple[float, int, Arrival]] = []
        self._order = 0
        #: src -> (held arrival, held_at): reorder swap awaiting the
        #: next same-src message (released by timer if none comes).
        self._reorder_hold: Dict[int, Tuple[Arrival, float]] = {}
        self._injected: Dict[str, int] = {}
        self._retransmits_serviced = 0
        self._auto_retransmits = 0

    # -------------------------------------------------------------- filtering
    def _pick_fault(self, src: int, seq: int, iteration: int):
        for index, fault in enumerate(self.plan.edges):
            if not fault.matches(src, self.rank, iteration):
                continue
            if _roll(self.plan.seed, index, src, self.rank, seq) < fault.rate:
                return fault
        return None

    def _record(self, kind: str) -> None:
        self._injected[kind] = self._injected.get(kind, 0) + 1

    def _schedule(self, arrival: Arrival, ready_at: float) -> None:
        self._order += 1
        self._scheduled.append((ready_at, self._order, arrival))
        self._scheduled.sort()

    def admit(
        self, arrival: Arrival
    ) -> Tuple[List[Arrival], List[FaultInjected]]:
        """Filter one wire arrival; returns (deliverable now, events).

        Requires a sequenced arrival (``seq >= 0``): the seq is both
        the fault-decision key and the retransmit-buffer key.
        """
        if arrival.seq < 0:
            raise ValueError("fault injection requires sequenced arrivals")
        src, seq = arrival.src, arrival.seq
        deliver: List[Arrival] = []
        events: List[FaultInjected] = []
        fault = self._pick_fault(src, seq, arrival.iteration)
        if fault is not None:
            events.append(  # specbound: disable=SPB406
                FaultInjected(
                    kind=fault.kind, src=src, seq=seq,
                    iteration=arrival.iteration,
                )
            )
            self._record(fault.kind)
            if fault.kind == "drop":
                self.lost[(src, seq)] = (arrival, self.clock)
            elif fault.kind == "duplicate":
                deliver.append(arrival)
                self._schedule(
                    replace(arrival, waited=0.0),
                    self.clock + self.plan.retransmit_delay,
                )
            elif fault.kind == "delay":
                self._schedule(
                    replace(arrival, waited=0.0), self.clock + fault.delay
                )
            elif fault.kind == "reorder":
                held = self._reorder_hold.pop(src, None)
                if held is not None:
                    # Two holds in a row: release the older one first.
                    deliver.append(replace(held[0], waited=0.0))
                self._reorder_hold[src] = (arrival, self.clock)
        else:
            deliver.append(arrival)
        if fault is None or fault.kind != "reorder":
            held = self._reorder_hold.pop(src, None)
            if held is not None:
                # The swap the reorder fault was waiting for.
                deliver.append(replace(held[0], waited=0.0))
        return deliver, events

    # ----------------------------------------------------------------- clock
    def tick(self, now: Optional[float] = None) -> List[Arrival]:
        """Advance the clock; return matured re-deliveries.

        ``now`` is the transport clock (monotonic); ``None`` advances
        an internal poll counter by one (the loopback/DES clock unit).
        Also fires the modelled sender's own retransmit timer for
        losses the engine has not (successfully) requested within
        ``plan.sender_timeout``.
        """
        self.clock = self.clock + 1.0 if now is None else max(self.clock, now)
        if self.plan.retransmit:
            overdue = [
                key for key, (_, lost_at) in self.lost.items()
                if self.clock - lost_at >= self.plan.sender_timeout
            ]
            for key in sorted(overdue):
                arrival, _ = self.lost.pop(key)
                self._auto_retransmits += 1
                self._schedule(
                    replace(arrival, waited=0.0),
                    self.clock + self.plan.retransmit_delay,
                )
        stale = [
            src for src, (_, held_at) in self._reorder_hold.items()
            if self.clock - held_at >= self.plan.sender_timeout
        ]
        for src in sorted(stale):
            # No swap partner ever came; degrade the reorder to a delay.
            held, _ = self._reorder_hold.pop(src)
            self._schedule(replace(held, waited=0.0), self.clock)
        ready: List[Arrival] = []
        while self._scheduled and self._scheduled[0][0] <= self.clock:
            ready.append(self._scheduled.pop(0)[2])
        return ready

    def on_retransmit_request(self, src: int, seq: int) -> bool:
        """Service an engine retransmit request from the loss buffer.

        Returns True when a re-delivery was scheduled.  Unknown keys
        (the message was merely delayed/reordered and is still in
        flight, or was already retransmitted) are ignored; with
        ``plan.retransmit`` off nothing is ever serviced — the
        configuration the ``retransmit-bounded`` invariant exists to
        flag.
        """
        if not self.plan.retransmit:
            return False
        entry = self.lost.pop((src, seq), None)
        if entry is None:
            return False
        self._retransmits_serviced += 1
        self._schedule(
            replace(entry[0], waited=0.0),
            self.clock + self.plan.retransmit_delay,
        )
        return True

    def outstanding(self) -> bool:
        """Any message still held (lost, scheduled, or reorder-parked)?"""
        return bool(self.lost or self._scheduled or self._reorder_hold)

    # ------------------------------------------------------------ rank faults
    def slowdown_for(self, iteration: int) -> float:
        factor = 1.0
        for fault in self.plan.rank_faults_for(self.rank):
            if fault.window.contains(iteration):
                factor = max(factor, fault.slowdown)
        return factor

    def crash_due(self, iteration: int) -> bool:
        return any(
            fault.crash_at == iteration
            for fault in self.plan.rank_faults_for(self.rank)
        )

    # ---------------------------------------------------------------- report
    def summary(self) -> FaultSummary:
        return FaultSummary(
            rank=self.rank,
            injected=dict(self._injected),
            retransmits_serviced=self._retransmits_serviced,
            auto_retransmits=self._auto_retransmits,
            outstanding_losses=len(self.lost),
        )
