"""specfault — seeded fault injection and the protocol's resilience seams.

The package has three layers:

* :class:`FaultPlan` — a declarative, seeded description of what goes
  wrong: drop / duplicate / delay / reorder per edge, straggler
  slowdown and crash per rank, each gated by an iteration trigger
  window.  Every decision is a pure function of
  ``(plan.seed, src, dst, seq)``, so the same plan injects the same
  faults on every backend and every run.
* :class:`FaultInjector` — the per-receiving-rank runtime core shared
  by both seams: it filters wire arrivals, retains dropped messages in
  a retransmit buffer, schedules duplicate/delayed/retransmitted
  re-deliveries against the caller's clock, and accumulates the
  :class:`FaultSummary`.
* The seams — :class:`FaultyTransport` wraps any
  :class:`~repro.engine.transport.Transport` (the pipes/mp backend);
  :func:`wrap_engine` wraps an engine's effect stream (the loopback
  and DES backends).  Both inject on the *receive path*, downstream of
  the transport's own wire bookkeeping, so wire-level invariants
  (sequence-gap-freedom at the transport) stay intact and the
  engine-level resilience layer is what heals the losses.
"""

from repro.faults.injector import FaultInjector, InjectedCrash
from repro.faults.middleware import FaultyEngine, wrap_engine
from repro.faults.plan import (
    EdgeFault,
    FaultPlan,
    FaultSummary,
    RankFault,
    TriggerWindow,
    merge_summaries,
)
from repro.faults.transport import FaultyTransport

__all__ = [
    "EdgeFault",
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "FaultyEngine",
    "FaultyTransport",
    "InjectedCrash",
    "RankFault",
    "TriggerWindow",
    "merge_summaries",
    "wrap_engine",
]
