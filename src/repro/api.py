"""One run API across the three backends.

Historically each backend grew its own entry point with its own
signature and return shape: :func:`repro.core.driver.run_program`
(DES, returns :class:`~repro.core.results.RunResult`),
:func:`repro.engine.loopback.run_loopback` (returns a 3-tuple) and
:class:`repro.parallel.MPRunner` (returns
:class:`~repro.parallel.runner.MPRunResult`).  This module unifies
them behind one frozen configuration value and one report type::

    from repro.api import RunConfig, run

    report = run(RunConfig(program, backend="mp", fw=2, latency=0.05))
    report.results[0]          # rank 0's final block
    report.timings["compute"]  # per-phase cost, max over ranks
    report.window_history[0]   # rank 0's (iteration, fw) trajectory

The same ``RunConfig`` — including an optional
:class:`~repro.faults.FaultPlan` — runs unchanged on ``"des"``
(virtual time), ``"loopback"`` (deterministic in-process scheduler)
and ``"mp"`` (real OS processes over pipes); only the clock the
numbers are measured in differs.  The legacy entry points remain as
thin primitives the dispatcher delegates to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.driver import SpeculativeDriver
from repro.core.program import SyncIterativeProgram
from repro.engine.loopback import run_loopback
from repro.faults import FaultPlan, merge_summaries
from repro.netsim.latency import ConstantLatency, StochasticLatency
from repro.netsim.network import DelayNetwork
from repro.policy import WindowPolicy
from repro.trace.events import EventLog
from repro.vm import Cluster, uniform_specs

#: Backends :func:`run` dispatches over.
BACKENDS = ("des", "loopback", "mp")


@dataclass(frozen=True)
class RunConfig:
    """Everything one protocol run needs, as a single frozen value.

    Parameters
    ----------
    program:
        The application (any :class:`~repro.core.program.SyncIterativeProgram`).
        For the mp backend it must be picklable (all bundled apps are).
    backend:
        ``"des"`` (virtual-time simulator), ``"loopback"``
        (deterministic in-process scheduler) or ``"mp"`` (real OS
        processes over pipes).
    p:
        Optional cross-check; must equal ``program.nprocs`` when set.
        The program owns its decomposition, so this exists purely to
        catch configuration drift at validation time.
    fw:
        Forward window: 0 (blocking) or any depth >= 1 (speculative).
    bw:
        Backward window: how many verified iterations each rank
        retains for checking and correction (the engine's history
        cap).  None (default) keeps the engine's derived default.
    cascade:
        ``"recompute"`` or ``"none"`` — see
        :class:`~repro.core.driver.SpeculativeDriver`.
    window_policy:
        Optional :class:`~repro.policy.WindowPolicy` template; each
        rank spawns a private copy and retunes its FW at runtime
        (``fw`` is then the initial window).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; the plan's seeded
        faults inject identically on every backend, and the report's
        :attr:`RunReport.fault_summary` carries the recovery receipt.
    record_trace:
        Record protocol trace events; the report's ``event_log`` is
        then ready for ``repro analyze --trace`` replay.
    sanitize:
        Arm the runtime protocol sanitizer; None (default) defers to
        the ``REPRO_SANITIZE`` environment variable.
    seed:
        Seeds the stochastic parts of the transport (DES jitter
        streams, mp per-worker jitter).  Fault seeding lives on the
        plan (``fault_plan.seed``), not here.
    latency:
        One-way message delay: virtual seconds on ``"des"`` (ignored
        when an explicit ``cluster`` is supplied), wall seconds on
        ``"mp"``.  Must be 0 on ``"loopback"``, which has no clock.
    jitter:
        Log-normal sigma multiplying ``latency`` per message (des/mp
        only, same rules as ``latency``).
    cluster:
        DES only: an explicit :class:`~repro.vm.Cluster` (e.g. from
        :func:`repro.platforms.wustl_1994`).  None (default) builds a
        uniform cluster with a constant-latency network from
        ``latency``/``jitter``.
    timeout:
        mp only: parent-side wall-clock budget for the whole run.
    """

    program: SyncIterativeProgram
    backend: str = "des"
    p: Optional[int] = None
    fw: int = 1
    bw: Optional[int] = None
    cascade: str = "recompute"
    window_policy: Optional[WindowPolicy] = None
    fault_plan: Optional[FaultPlan] = None
    record_trace: bool = False
    sanitize: Optional[bool] = None
    seed: int = 0
    latency: float = 0.0
    jitter: float = 0.0
    cluster: Optional[Cluster] = None
    timeout: float = 300.0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        nprocs = getattr(self.program, "nprocs", None)
        if self.p is not None and self.p != nprocs:
            raise ValueError(
                f"p={self.p} but program.nprocs={nprocs}; the program owns "
                "its decomposition — rebuild it for a different p"
            )
        if self.fw < 0:
            raise ValueError("fw must be >= 0")
        if self.bw is not None and self.bw < 1:
            raise ValueError("bw (the history cap) must be >= 1")
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency and jitter must be >= 0")
        if self.backend == "loopback" and (self.latency or self.jitter):
            raise ValueError(
                "the loopback backend has no clock; latency/jitter "
                "require backend='des' or backend='mp'"
            )
        if self.cluster is not None and self.backend != "des":
            raise ValueError("cluster is a DES-only knob")
        if self.cluster is not None and (self.latency or self.jitter):
            raise ValueError(
                "latency/jitter and an explicit cluster are mutually "
                "exclusive on DES — the cluster's network already "
                "defines the delays"
            )


@dataclass
class RunReport:
    """What one run produced, shaped identically on every backend.

    ``wall_seconds`` is measured in the backend's own clock: virtual
    seconds (DES makespan), scheduler rounds (loopback) or real wall
    seconds (mp).  ``timings`` uses the same clock per phase (ops on
    loopback, where cost is counted rather than timed), aggregated as
    the max over ranks.  ``stats`` entries are per-rank counter
    objects — :class:`~repro.core.results.SpecStats` on des/loopback,
    :class:`~repro.parallel.worker.WorkerReport` on mp — sharing the
    speculation counter attribute names (``spec_made``,
    ``spec_accepted``, ``spec_rejected``, ``recomputes``, ...).
    ``raw`` keeps the backend-native result for anything the common
    shape does not cover.
    """

    backend: str
    results: Dict[int, Any]
    wall_seconds: float
    timings: Dict[str, float]
    window_history: Dict[int, List[Tuple[int, int]]]
    stats: List[Any]
    fault_summary: Optional[Dict[str, Any]] = None
    event_log: Optional[EventLog] = None
    raw: Any = field(default=None, repr=False)

    @property
    def rejection_rate(self) -> float:
        """Fleet-wide fraction of checked speculations rejected."""
        checks = sum(s.spec_accepted + s.spec_rejected for s in self.stats)
        if checks == 0:
            return 0.0
        return sum(s.spec_rejected for s in self.stats) / checks


def run(config: RunConfig) -> RunReport:
    """Execute ``config`` on its backend; one report shape for all three."""
    if config.backend == "des":
        return _run_des(config)
    if config.backend == "loopback":
        return _run_loopback(config)
    return _run_mp(config)


# ---------------------------------------------------------------- backends
def _default_cluster(config: RunConfig) -> Cluster:
    """Uniform DES cluster with a constant(+jitter) latency network."""
    latency = ConstantLatency(config.latency)
    if config.jitter > 0:
        latency = StochasticLatency(latency, sigma=config.jitter,
                                    seed=config.seed)
    return Cluster(
        uniform_specs(config.program.nprocs),
        network_factory=lambda env: DelayNetwork(env, latency),
    )


def _run_des(config: RunConfig) -> RunReport:
    cluster = config.cluster if config.cluster is not None else _default_cluster(config)
    log = EventLog() if config.record_trace else None
    if log is not None:
        cluster.event_log = log
    driver = SpeculativeDriver(
        config.program, cluster,
        fw=config.fw, cascade=config.cascade, sanitize=config.sanitize,
        window_policy=config.window_policy, fault_plan=config.fault_plan,
        hist_cap=config.bw,
    )
    result = driver.run()
    fault_summary = None
    if config.fault_plan is not None:
        # The driver stores bound summary methods (the injectors fill
        # in as the run executes); materialise them now.
        fault_summary = merge_summaries([fn() for fn in driver.fault_summaries])
    return RunReport(
        backend="des",
        results=result.final_blocks,
        wall_seconds=result.makespan,
        timings=dict(result.breakdown().totals),
        window_history={r: list(h) for r, h in enumerate(result.window_history)},
        stats=list(result.stats),
        fault_summary=fault_summary,
        event_log=log,
        raw=result,
    )


def _run_loopback(config: RunConfig) -> RunReport:
    log = EventLog() if config.record_trace else None
    finals, stats, runner = run_loopback(
        config.program,
        fw=config.fw, cascade=config.cascade, event_log=log,
        sanitize=config.sanitize, window_policy=config.window_policy,
        fault_plan=config.fault_plan, hist_cap=config.bw,
    )
    timings: Dict[str, float] = {}
    for tally in runner.phase_ops.values():
        for phase, ops in tally.items():
            timings[phase] = max(timings.get(phase, 0.0), ops)
    fault_summary = None
    if config.fault_plan is not None:
        fault_summary = merge_summaries(
            [eng.injector.summary() for eng in runner.engines.values()]
        )
    return RunReport(
        backend="loopback",
        results=finals,
        wall_seconds=float(runner.rounds),
        timings=timings,
        # Seed with the initial window so trajectories read the same
        # as the DES and mp reports.
        window_history={
            rank: [(0, config.fw)] + list(hist)
            for rank, hist in runner.window_history.items()
        },
        stats=list(stats),
        fault_summary=fault_summary,
        event_log=log,
        raw=runner,
    )


def _run_mp(config: RunConfig) -> RunReport:
    from repro.parallel import MPRunner  # deferred: spawns processes

    runner = MPRunner(
        config.program,
        fw=config.fw, cascade=config.cascade,
        latency=config.latency, jitter=config.jitter, seed=config.seed,
        record_events=config.record_trace, sanitize=config.sanitize,
        window_policy=config.window_policy, fault_plan=config.fault_plan,
        hist_cap=config.bw,
    )
    result = runner.run(timeout=config.timeout)
    phases = sorted({p for r in result.reports for p in r.phase_seconds})
    return RunReport(
        backend="mp",
        results=result.final_blocks,
        wall_seconds=result.wall_seconds,
        timings={p: result.phase_seconds(p) for p in phases},
        window_history=result.window_history(),
        stats=list(result.reports),
        fault_summary=result.fault_summary(),
        event_log=result.event_log() if config.record_trace else None,
        raw=result,
    )
