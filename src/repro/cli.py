"""Command-line interface: ``python -m repro`` / ``repro``.

Subcommands
-----------
``repro list``
    Show the reproducible artifacts.
``repro run fig8 [--out FILE]``
    Regenerate one of the paper's tables/figures and print it.
``repro nbody -p 8 --fw 1 [--backend des|loopback|mp] ...``
    Run a single N-body experiment with explicit knobs; optionally
    record the protocol event trace for later replay.  ``--backend
    mp`` runs the same protocol engine on real OS processes over
    pipes with injected latency instead of the simulator.
``repro jacobi -p 4 -n 64 [--backend des|loopback|mp] ...``
    Run a Jacobi solve through the unified :mod:`repro.api` facade on
    any backend, with the same run flags as ``nbody``/``chaos``.
``repro chaos [--plan FILE | --drop 0.01 ...] [--verify] ...``
    Run a seeded fault-injection campaign: a :class:`~repro.faults.FaultPlan`
    from a JSON file or inline flags perturbs the receive path while
    the engine's retransmit layer heals it; prints the fault/recovery
    summary and (with ``--verify``) checks physics against the
    fault-free twin.

``nbody``, ``jacobi`` and ``chaos`` share one argparse parent, so
``--backend/--fw/--bw/--adaptive/--record-trace/--seed/--sanitize``
are spelled and validated identically, and the mp-only transport
flags (``--latency/--jitter/--timeout``) error on other backends
instead of silently no-opping.  (``mc`` keeps its sweep-valued
``--p/--fw/--bw`` spellings — same names, list-typed.)
``repro lint [paths] [--format json] [--sanitize-selftest]``
    Run speclint (the protocol-aware static analyzer) over the given
    files/directories, or self-test the runtime protocol sanitizer.
``repro analyze [paths] [--format text|json|sarif] [--trace FILE]``
    Run specflow (interprocedural type-state + happens-before
    analysis, rules SPF1xx).  ``--baseline``/``--write-baseline``
    manage the accepted-findings file CI checks in; ``--trace``
    replays a recorded event log against the same protocol model and
    reports which static findings the run confirms or refutes.
``repro perf-lint [paths] [--format text|json|sarif] [--trace FILE]``
    Run specperf (static hot-path cost analysis, rules SPP2xx): phase
    attribution over the call graph plus the hot-path rule pack.
    ``--trace`` replays a recorded event log, measures the share of
    iteration time each protocol phase consumed, and marks findings
    CONFIRMED/REFUTED against the calibrated performance model's
    phase budget (Eq. 3-9).
``repro taint [paths] [--format text|json|sarif] [--trace FILE]``
    Run spectaint (speculation-escape & rollback-safety abstract
    interpretation, rules SPT3xx): forward taint over the shared CFG +
    call graph proving unconfirmed speculative values never reach an
    irreversible effect.  ``--trace`` replays a recorded event log and
    marks each finding CONFIRMED (a send demonstrably ran during an
    open speculation window), REFUTED or UNOBSERVED.
``repro bounds [paths] [--format text|json|sarif] [--trace FILE]``
    Run specbound (static speculation-resource bound analysis, rules
    SPB4xx): interprocedural buffer summaries over the shared call
    graph proving every container the protocol grows is bounded by a
    protocol parameter (BW for history, FW for run-ahead state).
    ``--trace`` checks the derived symbolic occupancy bounds against
    a recorded event log's observed per-rank maxima and reports each
    occupancy contract CONFIRMED / REFUTED / UNOBSERVED.
``repro check [paths] [--sarif FILE] [--stats] [--migrate-baselines]``
    Umbrella: run all five families (speclint, specflow, specperf,
    spectaint, specbound) in one process over one shared parse + call
    graph, optionally writing a single merged SARIF document;
    ``--stats`` prints per-tool wall time and parse counts;
    ``--migrate-baselines`` performs the one-shot move of legacy
    per-tool baseline files into ``.speclint/baselines.json``.
``repro mc [--p 2,3] [--fw 0,1] [--iters 3] [--budget 60s] ...``
    Run specmc: exhaustively model-check every message-delivery and
    scheduling interleaving of bounded engine configurations against
    the shared invariant registry.  On a violation the counterexample
    schedule is shrunk (``--no-shrink`` disables) and can be exported
    as a replayable event trace (``--emit-trace``) and a ready-to-run
    pytest regression (``--emit-test``); ``--mutate`` injects a known
    engine bug to exercise that pipeline.

Exit codes (shared by ``lint``, ``analyze`` and ``mc``)
-------------------------------------------------------
* ``0`` — clean: no findings / no invariant violation.
* ``1`` — findings: at least one diagnostic, replay violation, or
  model-checking counterexample.
* ``2`` — usage error: bad paths, unreadable trace/baseline files,
  out-of-bounds model-checking configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Optional, Sequence

#: Shared analysis exit codes (``repro lint`` / ``repro analyze``).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


class _UsageError(Exception):
    """A run-flag combination the shared parent rejects."""


def _run_flags_parent() -> argparse.ArgumentParser:
    """The argparse parent shared by ``nbody``/``jacobi``/``chaos``.

    One definition means ``--backend/--fw/--bw/--adaptive/
    --record-trace/--seed/--sanitize`` are spelled and validated
    identically on every run-style subcommand, and the mp-only
    transport flags use a None sentinel so :func:`_mp_flags` can
    *error* on other backends instead of silently ignoring them.
    """
    parent = argparse.ArgumentParser(add_help=False)
    run = parent.add_argument_group("run flags (shared)")
    run.add_argument(
        "--backend",
        choices=("des", "loopback", "mp"),
        default="des",
        help="des = discrete-event simulator (default); loopback = "
        "deterministic in-process scheduler (no clock, costs in ops); "
        "mp = real OS processes over pipes",
    )
    run.add_argument("--fw", type=int, default=1, help="forward window")
    run.add_argument(
        "--cascade", choices=("recompute", "none"), default=None,
        help="correction cascade policy (default: the subcommand's "
        "canonical policy — nbody keeps the paper's \"none\", "
        "jacobi/chaos use \"recompute\")",
    )
    run.add_argument(
        "--bw", type=int, default=None, metavar="N",
        help="backward window: verified iterations each rank retains "
        "for checking/correction (default: engine-derived)",
    )
    run.add_argument(
        "--adaptive",
        action="store_true",
        help="seat an adaptive window policy in every rank's engine: "
        "--fw becomes the initial window and each rank retunes its "
        "own FW at runtime",
    )
    run.add_argument(
        "--epoch", type=int, default=4, metavar="N",
        help="adaptive: iterations between window decisions (default: 4)",
    )
    run.add_argument(
        "--max-fw", type=int, default=4, metavar="N",
        help="adaptive: upper bound on the forward window (default: 4)",
    )
    run.add_argument(
        "--record-trace",
        metavar="FILE",
        help="record the protocol event trace (JSONL) for later "
        "`repro analyze --trace FILE` replay",
    )
    run.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="seed for the run's stochastic parts (default: the "
        "subcommand's canonical seed)",
    )
    run.add_argument(
        "--sanitize",
        action="store_const",
        const=True,
        default=None,
        help="arm the runtime protocol sanitizer (default: defer to "
        "the REPRO_SANITIZE environment variable)",
    )
    mp_only = parent.add_argument_group(
        "mp-only transport flags (error on other backends)"
    )
    mp_only.add_argument(
        "--latency", type=float, default=None, metavar="S",
        help="mp backend: injected one-way delay in wall seconds "
        "(default: 0.05)",
    )
    mp_only.add_argument(
        "--jitter", type=float, default=None, metavar="SIGMA",
        help="mp backend: log-normal sigma multiplying the latency",
    )
    mp_only.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="mp backend: parent-side wall-clock budget (default: 300)",
    )
    return parent


def _mp_flags(
    args: argparse.Namespace, default_latency: float = 0.05
) -> tuple[float, float, float]:
    """Resolve ``--latency/--jitter/--timeout``; raise off-backend.

    Historically these flags existed only on ``nbody`` and silently
    no-opped when ``--backend des`` was selected; the shared parent
    makes that a usage error on every run-style subcommand.
    """
    supplied = [
        f"--{name}"
        for name, value in (
            ("latency", args.latency),
            ("jitter", args.jitter),
            ("timeout", args.timeout),
        )
        if value is not None
    ]
    if args.backend != "mp":
        if supplied:
            raise _UsageError(
                f"{', '.join(supplied)} require(s) --backend mp "
                f"(got --backend {args.backend})"
            )
        return 0.0, 0.0, 300.0
    return (
        args.latency if args.latency is not None else default_latency,
        args.jitter if args.jitter is not None else 0.0,
        args.timeout if args.timeout is not None else 300.0,
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.harness import EXPERIMENTS

    descriptions = {
        "fig2": "two-processor timelines: blocking vs good/bad speculation",
        "fig4": "forward window under a transient delay (FW=0/1/2)",
        "fig5": "model speedup vs p (Section 4, k=2%)",
        "fig6": "model speedup vs recomputation % (8 processors)",
        "fig8": "measured N-body speedup vs p for FW=0/1/2",
        "table2": "per-iteration phase times (16 procs, 1000 particles)",
        "table3": "threshold theta vs incorrect speculations / force error",
        "fig9": "model vs measured speedups",
    }
    for name in sorted(EXPERIMENTS):
        print(f"{name:8s} {descriptions.get(name, '')}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness import get_experiment

    try:
        runner = get_experiment(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    result = runner()
    print(result.text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(result.text)
        print(f"(written to {args.out})")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"(JSON written to {args.json})")
    return 0


def _window_policy(args: argparse.Namespace, degraded: bool = False):
    """The window-policy template for ``--adaptive`` (None when the
    run keeps its fixed forward window).  ``degraded=True`` (the chaos
    subcommand) wraps the AIMD controller in
    :class:`~repro.policy.DegradedWindow` so persistent loss collapses
    FW toward 0 and recovery re-widens it."""
    if not args.adaptive:
        return None
    from repro.policy import AimdWindow, DegradedWindow

    inner = AimdWindow(epoch=args.epoch, min_fw=0, max_fw=args.max_fw)
    return DegradedWindow(inner) if degraded else inner


# Back-compat alias (the old name predates the shared parent).
_nbody_window_policy = _window_policy


def _nbody_overrides(args: argparse.Namespace) -> Optional[dict]:
    """HEADLINE-config overrides from the shared run flags (None when
    the run keeps the paper's canonical operating point)."""
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.cascade is not None:
        overrides["cascade"] = args.cascade
    return overrides or None


def _cmd_nbody(args: argparse.Namespace) -> int:
    try:
        latency, jitter, timeout = _mp_flags(args)
        policy = _window_policy(args)
    except (_UsageError, ValueError) as exc:
        print(f"repro nbody: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.backend == "mp":
        return _cmd_nbody_mp(args, policy, latency, jitter, timeout)
    if args.backend == "loopback":
        return _cmd_nbody_loopback(args, policy)
    from repro.harness import run_nbody

    event_log = None
    if args.record_trace:
        from repro.trace import EventLog

        event_log = EventLog()
    config = _nbody_overrides(args)
    program, result = run_nbody(
        p=args.p,
        fw=args.fw,
        iterations=args.iterations,
        n_particles=args.particles,
        threshold=args.theta,
        config=config,
        event_log=event_log,
        window_policy=policy,
        hist_cap=args.bw,
        sanitize=args.sanitize,
    )
    if event_log is not None:
        event_log.save(args.record_trace)
        print(f"(trace: {len(event_log)} events written to {args.record_trace})")
    b = result.steady_breakdown() if result.iterations > 1 else result.breakdown()
    mode = f" adaptive(epoch={args.epoch}, max_fw={args.max_fw})" if policy else ""
    print(
        f"p={args.p} FW={args.fw} N={args.particles} T={args.iterations} "
        f"theta={args.theta}{mode}"
    )
    print(f"  makespan            : {result.makespan:.3f} virtual s")
    print(f"  time/iteration      : {result.time_per_iteration:.3f} s")
    print(f"  compute / comm      : {b['compute']:.3f} / {b['comm']:.3f} s per iter")
    print(f"  spec / check / corr : {b['spec']:.3f} / {b['check']:.3f} / {b['correct']:.3f}")
    print(f"  rejected speculation: {100 * program.spec_stats.incorrect_fraction:.2f}%")
    if policy is not None:
        changes = sum(len(h) - 1 for h in result.window_history)
        print(
            f"  final windows       : {result.final_windows()} "
            f"({changes} change(s))"
        )
    return 0


def _cmd_nbody_loopback(args: argparse.Namespace, policy) -> int:
    """``repro nbody --backend loopback``: deterministic, costs in ops."""
    from repro.api import RunConfig, run as api_run
    from repro.apps import NBodyProgram
    from repro.harness.experiments import HEADLINE
    from repro.nbody import uniform_cube

    cfg = dict(HEADLINE)
    cfg.update(_nbody_overrides(args) or {})
    system = uniform_cube(
        args.particles, seed=cfg["ic_seed"], softening=cfg["softening"]
    )
    program = NBodyProgram(
        system, [1.0] * args.p, iterations=args.iterations,
        dt=cfg["dt"], threshold=args.theta,
    )
    report = api_run(RunConfig(
        program, backend="loopback", fw=args.fw, bw=args.bw,
        cascade=cfg["cascade"], window_policy=policy,
        record_trace=bool(args.record_trace), sanitize=args.sanitize,
        seed=cfg["seed"],
    ))
    if args.record_trace:
        report.event_log.save(args.record_trace)
        print(f"(trace: {len(report.event_log)} events written to "
              f"{args.record_trace})")
    mode = f" adaptive(epoch={args.epoch}, max_fw={args.max_fw})" if policy else ""
    print(
        f"p={args.p} FW={args.fw} N={args.particles} T={args.iterations} "
        f"theta={args.theta} backend=loopback{mode}"
    )
    print(f"  scheduler rounds    : {int(report.wall_seconds)}")
    ops = " / ".join(
        f"{phase}={report.timings[phase]:.0f}"
        for phase in sorted(report.timings)
    )
    print(f"  phase ops (max/rank): {ops}")
    print(f"  rejected speculation: {100 * report.rejection_rate:.2f}%")
    return 0


def _cmd_nbody_mp(
    args: argparse.Namespace, policy, latency: float, jitter: float,
    timeout: float,
) -> int:
    """``repro nbody --backend mp``: the protocol on real processes."""
    from repro.harness import run_nbody_mp

    config = _nbody_overrides(args)
    program, result = run_nbody_mp(
        p=args.p,
        fw=args.fw,
        iterations=args.iterations,
        n_particles=args.particles,
        threshold=args.theta,
        latency=latency,
        jitter=jitter,
        config=config,
        record_events=bool(args.record_trace),
        timeout=timeout,
        window_policy=policy,
        hist_cap=args.bw,
        sanitize=args.sanitize,
    )
    if args.record_trace:
        log = result.event_log()
        log.save(args.record_trace)
        print(f"(trace: {len(log)} events written to {args.record_trace})")
    spec_made = sum(r.spec_made for r in result.reports)
    mode = f" adaptive(epoch={args.epoch}, max_fw={args.max_fw})" if policy else ""
    print(
        f"p={args.p} FW={args.fw} N={args.particles} T={args.iterations} "
        f"theta={args.theta} backend=mp latency={latency}s{mode}"
    )
    print(f"  wall time           : {result.wall_seconds:.3f} s (slowest rank)")
    print(f"  compute / comm      : {result.phase_seconds('compute'):.3f} / "
          f"{result.phase_seconds('comm'):.3f} s (max over ranks)")
    print(f"  speculations made   : {spec_made}")
    print(f"  rejected speculation: {100 * result.rejection_rate:.2f}%")
    if policy is not None:
        changes = sum(
            len(h) - 1 for h in result.window_history().values()
        )
        print(
            f"  final windows       : {result.final_windows()} "
            f"({changes} change(s))"
        )
    return 0


def _build_jacobi(args: argparse.Namespace):
    """The Jacobi program the ``jacobi``/``chaos`` subcommands run."""
    from repro.apps.jacobi import JacobiSolver, diagonally_dominant_system

    seed = args.seed if args.seed is not None else 3
    a, b = diagonally_dominant_system(args.n, seed=seed)
    program = JacobiSolver(
        a, b, capacities=[1000.0] * args.p,
        iterations=args.iterations, threshold=args.theta,
    )
    return program, seed


def _run_config(args: argparse.Namespace, program, policy, plan,
                latency: float, jitter: float, timeout: float, seed: int):
    """One :class:`~repro.api.RunConfig` from the shared run flags."""
    from repro.api import RunConfig

    return RunConfig(
        program,
        backend=args.backend,
        fw=args.fw,
        bw=args.bw,
        cascade=args.cascade if args.cascade is not None else "recompute",
        window_policy=policy,
        fault_plan=plan,
        record_trace=bool(args.record_trace),
        sanitize=args.sanitize,
        seed=seed,
        latency=latency,
        jitter=jitter,
        timeout=timeout,
    )


def _cmd_jacobi(args: argparse.Namespace) -> int:
    """``repro jacobi``: one solve through the unified run API."""
    import numpy as np

    from repro.api import run as api_run

    try:
        latency, jitter, timeout = _mp_flags(args)
        policy = _window_policy(args)
    except (_UsageError, ValueError) as exc:
        print(f"repro jacobi: {exc}", file=sys.stderr)
        return EXIT_USAGE
    program, seed = _build_jacobi(args)
    report = api_run(_run_config(
        args, program, policy, None, latency, jitter, timeout, seed,
    ))
    if args.record_trace:
        report.event_log.save(args.record_trace)
        print(f"(trace: {len(report.event_log)} events written to "
              f"{args.record_trace})")
    x = np.empty(program.partition.n)
    for rank, idx in enumerate(program.partition):
        x[idx] = report.results[rank]
    residual = float(np.max(np.abs(program.a @ x - program.b)))
    unit = {"des": "virtual s", "loopback": "rounds", "mp": "wall s"}
    mode = f" adaptive(epoch={args.epoch}, max_fw={args.max_fw})" if policy else ""
    print(
        f"p={args.p} FW={args.fw} n={args.n} T={args.iterations} "
        f"theta={args.theta} backend={args.backend}{mode}"
    )
    print(f"  wall                : {report.wall_seconds:.3f} "
          f"{unit[args.backend]}")
    print(f"  residual (max |Ax-b|): {residual:.3e}")
    print(f"  rejected speculation: {100 * report.rejection_rate:.2f}%")
    if policy is not None:
        changes = sum(len(h) - 1 for h in report.window_history.values())
        print(f"  window changes      : {changes}")
    return 0


def _parse_rank_spec(spec: str, flag: str, cast) -> tuple[int, Any]:
    """Parse a ``RANK:VALUE`` CLI operand like ``1:2.0`` or ``2:5``."""
    try:
        rank_text, value_text = spec.split(":", 1)
        return int(rank_text), cast(value_text)
    except ValueError:
        raise _UsageError(
            f"{flag}: expected RANK:VALUE (e.g. 1:2.0), got {spec!r}"
        )


def _chaos_plan(args: argparse.Namespace):
    """The :class:`~repro.faults.FaultPlan` for ``repro chaos``."""
    from repro.faults import EdgeFault, FaultPlan, RankFault

    inline = (
        args.drop or args.duplicate or args.delay or args.reorder
        or args.straggler or args.crash
    )
    if args.plan and inline:
        raise _UsageError("--plan and inline fault flags are mutually exclusive")
    if args.plan:
        try:
            return FaultPlan.load(args.plan)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise _UsageError(f"cannot read fault plan {args.plan}: {exc}")
    edges = []
    for kind, rate in (("drop", args.drop), ("duplicate", args.duplicate),
                       ("delay", args.delay), ("reorder", args.reorder)):
        if rate:
            edges.append(EdgeFault(kind=kind, rate=rate, delay=args.delay_by))
    ranks = []
    for spec in args.straggler or ():
        rank, factor = _parse_rank_spec(spec, "--straggler", float)
        ranks.append(RankFault(rank=rank, slowdown=factor))
    for spec in args.crash or ():
        rank, at = _parse_rank_spec(spec, "--crash", int)
        ranks.append(RankFault(rank=rank, crash_at=at))
    try:
        return FaultPlan(
            seed=args.fault_seed,
            edges=tuple(edges),
            ranks=tuple(ranks),
            max_retries=args.max_retries,
            retransmit=not args.no_retransmit,
        )
    except ValueError as exc:
        raise _UsageError(str(exc))


def _cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: a seeded fault-injection campaign."""
    import dataclasses

    import numpy as np

    from repro.api import run as api_run

    try:
        latency, jitter, timeout = _mp_flags(args)
        policy = _window_policy(args, degraded=True)
        plan = _chaos_plan(args)
    except (_UsageError, ValueError) as exc:
        print(f"repro chaos: {exc}", file=sys.stderr)
        return EXIT_USAGE
    program, seed = _build_jacobi(args)
    config = _run_config(
        args, program, policy, plan, latency, jitter, timeout, seed,
    )
    from repro.analysis.sanitizer import ProtocolViolation
    from repro.engine.core import RetransmitExhausted
    from repro.faults import InjectedCrash

    planned_crash = any(f.crash_at is not None for f in plan.ranks)
    try:
        report = api_run(config)
    except InjectedCrash as exc:
        # des/loopback: the crash fault unwinds the rank directly.
        print(f"chaos: planned crash terminated the run ({exc})")
        return EXIT_FINDINGS
    except ProtocolViolation as exc:
        print(f"chaos: sanitizer violation — {exc}")
        return EXIT_FINDINGS
    except RetransmitExhausted as exc:
        # The engine escalated past its retry budget: a loss was never
        # recovered (expected under --no-retransmit).
        print(f"chaos: unrecovered loss — {exc}")
        return EXIT_FINDINGS
    except RuntimeError as exc:
        # mp: a dying worker's report surfaces as a RuntimeError.
        first_line = str(exc).splitlines()[0] if str(exc) else str(exc)
        if planned_crash and "InjectedCrash" in str(exc):
            print("chaos: planned crash terminated the run "
                  f"(rank report: {first_line})")
            return EXIT_FINDINGS
        if "RetransmitExhausted" in str(exc):
            print(f"chaos: unrecovered loss — {first_line}")
            return EXIT_FINDINGS
        if "ProtocolViolation" in str(exc):
            print(f"chaos: sanitizer violation — {first_line}")
            return EXIT_FINDINGS
        raise
    if args.record_trace:
        report.event_log.save(args.record_trace)
        print(f"(trace: {len(report.event_log)} events written to "
              f"{args.record_trace})")

    summary = report.fault_summary or {"injected": {}, "total_injected": 0,
                                       "retransmits_serviced": 0,
                                       "auto_retransmits": 0,
                                       "outstanding_losses": 0}
    injected = " ".join(
        f"{kind}={count}" for kind, count in sorted(summary["injected"].items())
    ) or "none"
    requested = sum(s.retransmits for s in report.stats)
    suppressed = sum(s.dups_suppressed for s in report.stats)
    mode = (f" adaptive+degraded(epoch={args.epoch}, max_fw={args.max_fw})"
            if policy else "")
    print(
        f"chaos: backend={args.backend} p={args.p} FW={args.fw} "
        f"T={args.iterations} plan-seed={plan.seed}{mode}"
    )
    print(f"  injected            : {injected} "
          f"(total {summary['total_injected']})")
    print(f"  retransmits         : {summary['retransmits_serviced']} "
          f"serviced + {summary['auto_retransmits']} sender-timeout, "
          f"{summary['outstanding_losses']} outstanding")
    print(f"  engine              : {requested} retransmit request(s), "
          f"{suppressed} duplicate(s) suppressed")
    unit = {"des": "virtual s", "loopback": "rounds", "mp": "wall s"}
    print(f"  wall                : {report.wall_seconds:.3f} "
          f"{unit[args.backend]}")
    if policy is not None:
        changes = sum(len(h) - 1 for h in report.window_history.values())
        print(f"  window changes      : {changes}")

    identical = None
    if args.verify:
        clean = api_run(dataclasses.replace(
            config, fault_plan=None, record_trace=False,
        ))
        identical = all(
            np.array_equal(clean.results[r], report.results[r])
            for r in report.results
        )
        print(f"  physics vs fault-free: "
              f"{'bit-identical' if identical else 'DIVERGED'}")

    healed = summary["outstanding_losses"] == 0
    if not healed:
        print("chaos: unrecovered losses remain", file=sys.stderr)
    if identical is False:
        print("chaos: physics diverged from the fault-free run",
              file=sys.stderr)
    return EXIT_CLEAN if healed and identical is not False else EXIT_FINDINGS


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_paths, render
    from repro.analysis.sanitizer import run_selftest

    if args.sanitize_selftest:
        return run_selftest()
    paths = args.paths or ["src"]
    try:
        diagnostics = lint_paths(paths, select=args.select)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    print(render(diagnostics, args.format))
    return EXIT_FINDINGS if diagnostics else EXIT_CLEAN


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        analyze_paths,
        apply_baseline,
        render,
        render_sarif,
        write_baseline,
    )

    paths = args.paths or ["src"]
    try:
        diagnostics = analyze_paths(paths, select=args.select)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    if args.write_baseline:
        count = write_baseline(diagnostics, args.write_baseline)
        print(
            f"specflow: baseline with {count} fingerprint(s) written to "
            f"{args.write_baseline}"
        )
        return EXIT_CLEAN
    if args.baseline:
        try:
            accepted = _load_accepted("specflow", args.baseline)
        except (OSError, ValueError) as exc:
            print(f"specflow: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
        diagnostics = apply_baseline(diagnostics, accepted)
    if args.format == "sarif":
        print(render_sarif(diagnostics), end="")
    else:
        print(render(diagnostics, args.format, tool="specflow"))
    replay_findings = 0
    if args.trace:
        from repro.analysis import cross_reference
        from repro.trace import EventLog

        try:
            log = EventLog.load(args.trace)
        except (OSError, ValueError, TypeError) as exc:
            print(f"specflow: cannot read trace: {exc}", file=sys.stderr)
            return EXIT_USAGE
        report, verdicts = cross_reference(
            diagnostics, log, backward_window=args.bw
        )
        replay_findings = len(report.findings)
        out = sys.stdout if args.format == "text" else sys.stderr
        stats = ", ".join(f"{k}={v}" for k, v in sorted(report.stats.items()))
        print(f"trace replay: {stats}", file=out)
        for finding in report.findings:
            print(finding.format_text(), file=out)
        for verdict in verdicts:
            print(verdict.format_text(), file=out)
        if not verdicts:
            print(
                "trace replay: no static SPF findings to cross-reference",
                file=out,
            )
    if diagnostics or replay_findings:
        return EXIT_FINDINGS
    return EXIT_CLEAN


def _cmd_perf_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        apply_baseline,
        render_sarif,
        write_baseline,
    )
    from repro.analysis.diagnostics import SPP_RULES
    from repro.analysis.perf import analyze_paths, check_contracts
    from repro.analysis.perf.contracts import CONFIRMED, format_share_table
    from repro.analysis.reporting import (
        render_diag_json,
        render_diag_text,
        rule_catalogue_entries,
    )

    paths = args.paths or ["src"]
    try:
        diagnostics = analyze_paths(paths, select=args.select)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    if args.write_baseline:
        count = write_baseline(diagnostics, args.write_baseline)
        print(
            f"specperf: baseline with {count} fingerprint(s) written to "
            f"{args.write_baseline}"
        )
        return EXIT_CLEAN
    if args.baseline:
        try:
            accepted = _load_accepted("specperf", args.baseline)
        except (OSError, ValueError) as exc:
            print(f"specperf: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
        diagnostics = apply_baseline(diagnostics, accepted)
    if args.format == "sarif":
        print(
            render_sarif(
                diagnostics,
                tool_name="specperf",
                rules=rule_catalogue_entries(SPP_RULES),
            ),
            end="",
        )
    elif args.format == "json":
        catalogue = {code: info.summary for code, info in SPP_RULES.items()}
        print(render_diag_json(diagnostics, "specperf", catalogue))
    else:
        print(render_diag_text(diagnostics, "specperf"))
    confirmed = 0
    if args.trace:
        from repro.trace import EventLog

        try:
            log = EventLog.load(args.trace)
        except (OSError, ValueError, TypeError) as exc:
            print(f"specperf: cannot read trace: {exc}", file=sys.stderr)
            return EXIT_USAGE
        measured, modeled, verdicts = check_contracts(
            diagnostics, log, p=args.model_p, tol=args.tol
        )
        out = sys.stdout if args.format == "text" else sys.stderr
        print(format_share_table(measured, modeled), file=out)
        for verdict in verdicts:
            print(verdict.format_text(), file=out)
        if not verdicts:
            print(
                "cost contracts: no specperf findings to cross-reference",
                file=out,
            )
        confirmed = sum(1 for v in verdicts if v.status == CONFIRMED)
    if diagnostics or confirmed:
        return EXIT_FINDINGS
    return EXIT_CLEAN


def _load_accepted(tool: str, path: str) -> frozenset[str]:
    """Accepted fingerprints for ``tool`` from either baseline schema.

    Consolidated v2 documents are keyed by tool; legacy v1 files hold
    one tool's flat set.  Sniffing the version here lets every gate
    point at ``.speclint/baselines.json`` after migration while old
    per-tool files keep working.
    """
    import json

    from repro.analysis import load_baseline
    from repro.analysis.baselines import SCHEMA_VERSION, load_baselines

    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("version") == SCHEMA_VERSION:
        return load_baselines(path).get(tool, frozenset())
    return load_baseline(path)


def _cmd_taint(args: argparse.Namespace) -> int:
    from repro.analysis import apply_baseline, render_sarif
    from repro.analysis.baselines import set_baseline
    from repro.analysis.diagnostics import SPT_RULES
    from repro.analysis.reporting import (
        render_diag_json,
        render_diag_text,
        rule_catalogue_entries,
    )
    from repro.analysis.sarif import fingerprint
    from repro.analysis.taint import analyze_paths, check_taint

    paths = args.paths or ["src"]
    try:
        diagnostics = analyze_paths(paths, select=args.select)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    if args.write_baseline:
        prints = frozenset(fingerprint(d) for d in diagnostics)
        set_baseline("spectaint", prints, args.write_baseline)
        print(
            f"spectaint: baseline with {len(prints)} fingerprint(s) written "
            f"to {args.write_baseline} (tool key: spectaint)"
        )
        return EXIT_CLEAN
    if args.baseline:
        try:
            accepted = _load_accepted("spectaint", args.baseline)
        except (OSError, ValueError) as exc:
            print(f"spectaint: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
        diagnostics = apply_baseline(diagnostics, accepted)
    if args.format == "sarif":
        print(
            render_sarif(
                diagnostics,
                tool_name="spectaint",
                rules=rule_catalogue_entries(SPT_RULES),
            ),
            end="",
        )
    elif args.format == "json":
        catalogue = {code: info.summary for code, info in SPT_RULES.items()}
        print(render_diag_json(diagnostics, "spectaint", catalogue))
    else:
        print(render_diag_text(diagnostics, "spectaint"))
    confirmed = 0
    if args.trace:
        from repro.analysis.taint import CONFIRMED, find_escapes
        from repro.trace import EventLog

        try:
            log = EventLog.load(args.trace)
        except (OSError, ValueError, TypeError) as exc:
            print(f"spectaint: cannot read trace: {exc}", file=sys.stderr)
            return EXIT_USAGE
        witnesses = find_escapes(log)
        verdicts = check_taint(diagnostics, log)
        out = sys.stdout if args.format == "text" else sys.stderr
        print(
            f"trace replay: {len(log)} event(s), "
            f"{len(witnesses)} escape witness(es)",
            file=out,
        )
        for verdict in verdicts:
            print(verdict.format_text(), file=out)
        if not verdicts:
            print(
                "trace replay: no static SPT findings to cross-reference",
                file=out,
            )
        confirmed = sum(1 for v in verdicts if v.status == CONFIRMED)
    if diagnostics or confirmed:
        return EXIT_FINDINGS
    return EXIT_CLEAN


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.analysis import apply_baseline, render_sarif
    from repro.analysis.baselines import set_baseline
    from repro.analysis.bounds import REFUTED, check_occupancy
    from repro.analysis.bounds import analyze_paths as analyze_bounds
    from repro.analysis.diagnostics import SPB_RULES
    from repro.analysis.reporting import (
        render_diag_json,
        render_diag_text,
        rule_catalogue_entries,
    )
    from repro.analysis.sarif import fingerprint

    paths = args.paths or ["src"]
    try:
        diagnostics = analyze_bounds(paths, select=args.select)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    if args.write_baseline:
        prints = frozenset(fingerprint(d) for d in diagnostics)
        set_baseline("specbound", prints, args.write_baseline)
        print(
            f"specbound: baseline with {len(prints)} fingerprint(s) written "
            f"to {args.write_baseline} (tool key: specbound)"
        )
        return EXIT_CLEAN
    if args.baseline:
        try:
            accepted = _load_accepted("specbound", args.baseline)
        except (OSError, ValueError) as exc:
            print(f"specbound: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
        diagnostics = apply_baseline(diagnostics, accepted)
    if args.format == "sarif":
        print(
            render_sarif(
                diagnostics,
                tool_name="specbound",
                rules=rule_catalogue_entries(SPB_RULES),
            ),
            end="",
        )
    elif args.format == "json":
        catalogue = {code: info.summary for code, info in SPB_RULES.items()}
        print(render_diag_json(diagnostics, "specbound", catalogue))
    else:
        print(render_diag_text(diagnostics, "specbound"))
    refuted = 0
    if args.trace:
        from repro.trace import EventLog

        try:
            log = EventLog.load(args.trace)
        except (OSError, ValueError, TypeError) as exc:
            print(f"specbound: cannot read trace: {exc}", file=sys.stderr)
            return EXIT_USAGE
        verdicts = check_occupancy(
            log, p=args.model_p, fw=args.model_fw, bw=args.model_bw
        )
        out = sys.stdout if args.format == "text" else sys.stderr
        print(
            f"occupancy contracts: {len(log)} event(s), "
            f"{len(verdicts)} contract(s) checked at "
            f"(fw={args.model_fw}, bw={args.model_bw})",
            file=out,
        )
        for verdict in verdicts:
            print(verdict.format_text(), file=out)
        refuted = sum(1 for v in verdicts if v.status == REFUTED)
    if diagnostics or refuted:
        return EXIT_FINDINGS
    return EXIT_CLEAN


def _cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: all five analysis families over one parse."""
    from repro.analysis import apply_baseline
    from repro.analysis.baselines import (
        DEFAULT_BASELINES,
        baseline_for,
        migrate_baselines,
    )
    from repro.analysis.bounds import specbound
    from repro.analysis.diagnostics import (
        RULES,
        SPB_RULES,
        SPF_RULES,
        SPP_RULES,
        SPT_RULES,
    )
    from repro.analysis.linter import drop_suppressed, lint_module
    from repro.analysis.perf import specperf
    from repro.analysis.program import ProgramIndex
    from repro.analysis.reporting import (
        SARIF_SCHEMA,
        SARIF_VERSION,
        render_diag_text,
        rule_catalogue_entries,
        sarif_document,
        stable_json,
    )
    from repro.analysis.sarif import _result
    from repro.analysis import specflow
    from repro.analysis.taint import spectaint

    if args.migrate_baselines:
        target = args.baselines or str(DEFAULT_BASELINES)
        for action in migrate_baselines(target):
            print(action)
        return EXIT_CLEAN

    paths = args.paths or ["src"]
    import time as _time

    parse_start = _time.perf_counter()
    try:
        index = ProgramIndex(paths)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    index.callgraph  # build once, outside any single tool's timing
    parse_seconds = _time.perf_counter() - parse_start

    sources = index.sources
    tool_seconds: dict[str, float] = {}

    def _timed(tool, thunk):
        t0 = _time.perf_counter()
        diags = thunk()
        tool_seconds[tool] = _time.perf_counter() - t0
        return diags

    per_tool = {
        "speclint": sorted(
            _timed(
                "speclint",
                lambda: drop_suppressed(
                    [
                        d
                        for m in index.modules
                        for d in lint_module(m.tree, m.path, m.source)
                    ],
                    sources,
                ),
            )
            + index.syntax_diags("SPL000")
        ),
        "specflow": sorted(
            _timed(
                "specflow",
                lambda: specflow.analyze_modules(
                    index.modules, callgraph=index.callgraph
                ),
            )
            + index.syntax_diags("SPF000")
        ),
        "specperf": sorted(
            _timed(
                "specperf",
                lambda: specperf.analyze_modules(
                    index.modules, callgraph=index.callgraph
                ),
            )
            + index.syntax_diags("SPP000")
        ),
        "spectaint": sorted(
            _timed(
                "spectaint",
                lambda: spectaint.analyze_modules(
                    index.modules, callgraph=index.callgraph
                ),
            )
            + index.syntax_diags("SPT000")
        ),
        "specbound": sorted(
            _timed(
                "specbound",
                lambda: specbound.analyze_modules(
                    index.modules, callgraph=index.callgraph
                ),
            )
            + index.syntax_diags("SPB000")
        ),
    }

    baselines_path = args.baselines or (
        str(DEFAULT_BASELINES) if DEFAULT_BASELINES.exists() else None
    )
    if baselines_path is not None:
        try:
            for tool in per_tool:
                per_tool[tool] = apply_baseline(
                    per_tool[tool], baseline_for(tool, baselines_path)
                )
        except (OSError, ValueError) as exc:
            print(f"repro check: cannot read baselines: {exc}", file=sys.stderr)
            return EXIT_USAGE

    catalogues = {
        "speclint": rule_catalogue_entries(RULES),
        "specflow": rule_catalogue_entries(SPF_RULES),
        "specperf": rule_catalogue_entries(SPP_RULES),
        "spectaint": rule_catalogue_entries(SPT_RULES),
        "specbound": rule_catalogue_entries(SPB_RULES),
    }
    if args.sarif:
        merged: dict[str, object] = {
            "$schema": SARIF_SCHEMA,
            "version": SARIF_VERSION,
            "runs": [
                sarif_document(
                    tool,
                    catalogues[tool],
                    [_result(d) for d in per_tool[tool]],
                )["runs"][0]
                for tool in sorted(per_tool)
            ],
        }
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(stable_json(merged))
        print(f"repro check: merged SARIF written to {args.sarif}")

    total = 0
    if args.format == "json":
        payload = {
            "tools": {
                tool: [d.to_dict() for d in diags]
                for tool, diags in sorted(per_tool.items())
            },
            "summary": {
                tool: len(diags) for tool, diags in sorted(per_tool.items())
            },
        }
        if args.stats:
            payload["stats"] = {
                "files_parsed": len(index.modules),
                "syntax_failures": len(index.syntax_errors),
                "parse_seconds": round(parse_seconds, 6),
                "tool_seconds": {
                    tool: round(secs, 6)
                    for tool, secs in sorted(tool_seconds.items())
                },
            }
        print(stable_json(payload), end="")
        total = sum(len(d) for d in per_tool.values())
    else:
        for tool in sorted(per_tool):
            print(render_diag_text(per_tool[tool], tool))
            total += len(per_tool[tool])
        print(
            f"repro check: {total} finding(s) across "
            f"{len(per_tool)} tool(s), {len(index.modules)} file(s) parsed once"
        )
        if args.stats:
            print(
                f"repro check stats: parse+callgraph {parse_seconds:.3f}s over "
                f"{len(index.modules)} file(s), "
                f"{len(index.syntax_errors)} syntax failure(s)"
            )
            for tool, secs in sorted(tool_seconds.items()):
                print(f"  {tool:9s} {secs:7.3f}s  {len(per_tool[tool])} finding(s)")
    return EXIT_FINDINGS if total else EXIT_CLEAN


def _parse_int_list(spec: str, name: str) -> list:
    """Parse a comma-separated sweep list like ``2,3`` into ints."""
    try:
        values = [int(part) for part in spec.split(",") if part.strip() != ""]
    except ValueError:
        raise ValueError(f"--{name}: expected comma-separated integers, got {spec!r}")
    if not values:
        raise ValueError(f"--{name}: empty sweep list")
    return values


def _cmd_mc(args: argparse.Namespace) -> int:
    from repro.analysis.modelcheck import (
        MUTATIONS,
        Budget,
        McConfig,
        emit_test,
        emit_trace,
        explore,
        render_json,
        render_sarif_mc,
        render_text,
        report_dict,
        shrink_schedule,
    )

    if args.mutate is not None and args.mutate not in MUTATIONS:
        known = ", ".join(sorted(MUTATIONS))
        print(
            f"specmc: unknown mutation {args.mutate!r} (known: {known})",
            file=sys.stderr,
        )
        return EXIT_USAGE

    try:
        p_values = _parse_int_list(args.p, "p")
        fw_values = _parse_int_list(args.fw, "fw")
        bw_values = _parse_int_list(args.bw, "bw")
        iters_values = _parse_int_list(args.iters, "iters")
        budget = Budget.parse(args.budget) if args.budget else None
    except ValueError as exc:
        print(f"specmc: {exc}", file=sys.stderr)
        return EXIT_USAGE

    configs = []
    try:
        for p in p_values:
            for fw in fw_values:
                for bw in bw_values:
                    for iters in iters_values:
                        configs.append(
                            McConfig(
                                p=p,
                                fw=fw,
                                bw=bw,
                                iters=iters,
                                cascade=args.cascade,
                                scenario=args.scenario,
                                window=args.window,
                            )
                        )
    except ValueError as exc:
        print(f"specmc: {exc}", file=sys.stderr)
        return EXIT_USAGE

    results = []
    for config in configs:
        result = explore(config, mutation=args.mutate, budget=budget)
        if result.violation is not None and not args.no_shrink:
            result.shrunk_schedule = shrink_schedule(
                config,
                result.violation.schedule,
                result.violation.invariant,
                mutation=args.mutate,
            )
        results.append(result)
        if result.violation is not None:
            # First counterexample wins; later configs would only repeat it.
            break

    violating = next((r for r in results if r.violation is not None), None)
    if violating is not None:
        schedule = violating.counterexample_schedule() or ()
        if args.emit_trace:
            outcome = emit_trace(
                violating.config, schedule, args.emit_trace, mutation=args.mutate
            )
            reproduced = (
                outcome.violation is not None
                and outcome.violation.invariant == violating.violation.invariant
            )
            status = "reproduces" if reproduced else "DOES NOT reproduce"
            print(
                f"specmc: replayable trace written to {args.emit_trace} "
                f"({status} the violation)",
                file=sys.stderr,
            )
        if args.emit_test:
            emit_test(
                violating.config,
                schedule,
                violating.violation.invariant,
                args.emit_test,
                mutation=args.mutate,
                details=violating.violation.details,
            )
            print(
                f"specmc: regression test written to {args.emit_test}",
                file=sys.stderr,
            )

    if args.report:
        import json as _json

        with open(args.report, "w", encoding="utf-8") as fh:
            _json.dump(report_dict(results), fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.format == "json":
        print(render_json(results), end="")
    elif args.format == "sarif":
        print(render_sarif_mc(results), end="")
    else:
        print(render_text(results))
    return EXIT_FINDINGS if violating is not None else EXIT_CLEAN


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Govindan & Franklin, WUCS-94-3 (1994): "
        "speculative computation for masking communication delays.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list reproducible artifacts")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate a paper table/figure")
    p_run.add_argument("experiment", help="artifact id, e.g. fig8 or table2")
    p_run.add_argument("--out", help="also write the table to this file")
    p_run.add_argument("--json", help="also write the structured rows as JSON")
    p_run.set_defaults(func=_cmd_run)

    run_flags = _run_flags_parent()

    p_nb = sub.add_parser(
        "nbody", parents=[run_flags], help="run one N-body configuration"
    )
    p_nb.add_argument("-p", "--p", type=int, default=8, help="processors (1-16)")
    p_nb.add_argument("--particles", type=int, default=1000)
    p_nb.add_argument("--iterations", type=int, default=10)
    p_nb.add_argument("--theta", type=float, default=0.01)
    p_nb.set_defaults(func=_cmd_nbody)

    p_jc = sub.add_parser(
        "jacobi", parents=[run_flags],
        help="run one Jacobi solve through the unified run API "
        "(any backend)",
    )
    p_jc.add_argument("-p", "--p", type=int, default=4, help="processors")
    p_jc.add_argument(
        "-n", "--n", type=int, default=64, help="system size (rows of A)"
    )
    p_jc.add_argument("--iterations", type=int, default=12)
    p_jc.add_argument(
        "--theta", type=float, default=1e-6,
        help="speculation acceptance threshold",
    )
    p_jc.set_defaults(func=_cmd_jacobi)

    p_ch = sub.add_parser(
        "chaos", parents=[run_flags],
        help="run a seeded fault-injection campaign (FaultPlan file or "
        "inline flags) and print the fault/recovery summary",
    )
    p_ch.add_argument("-p", "--p", type=int, default=4, help="processors")
    p_ch.add_argument(
        "-n", "--n", type=int, default=64, help="system size (rows of A)"
    )
    p_ch.add_argument("--iterations", type=int, default=12)
    p_ch.add_argument(
        "--theta", type=float, default=0.0,
        help="speculation acceptance threshold (default 0: every "
        "speculation is checked against the exact value)",
    )
    p_ch.add_argument(
        "--plan", metavar="FILE",
        help="JSON FaultPlan (see FaultPlan.save); mutually exclusive "
        "with the inline fault flags",
    )
    fault = p_ch.add_argument_group("inline fault flags")
    fault.add_argument(
        "--drop", type=float, default=0.0, metavar="RATE",
        help="per-message drop probability on every edge",
    )
    fault.add_argument(
        "--duplicate", type=float, default=0.0, metavar="RATE",
        help="per-message duplication probability on every edge",
    )
    fault.add_argument(
        "--delay", type=float, default=0.0, metavar="RATE",
        help="per-message delay probability on every edge",
    )
    fault.add_argument(
        "--delay-by", type=float, default=2.0, metavar="UNITS",
        help="how long a delayed message is held, in transport clock "
        "units (default: 2)",
    )
    fault.add_argument(
        "--reorder", type=float, default=0.0, metavar="RATE",
        help="per-message reorder probability on every edge",
    )
    fault.add_argument(
        "--straggler", action="append", metavar="RANK:FACTOR",
        help="slow one rank's receive path by FACTOR (repeatable)",
    )
    fault.add_argument(
        "--crash", action="append", metavar="RANK:ITER",
        help="crash one rank when iteration ITER completes (repeatable)",
    )
    fault.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed for the plan's pure-hash fault decisions (default: 0)",
    )
    fault.add_argument(
        "--max-retries", type=int, default=4, metavar="N",
        help="engine retransmit budget per lost message (default: 4)",
    )
    fault.add_argument(
        "--no-retransmit", action="store_true",
        help="model a transport with no recovery: drops are never "
        "retransmitted (the retransmit-bounded invariant must flag it)",
    )
    p_ch.add_argument(
        "--verify", action="store_true",
        help="also run the fault-free twin and check the physics is "
        "bit-identical",
    )
    p_ch.set_defaults(func=_cmd_chaos)

    p_lint = sub.add_parser(
        "lint", help="run speclint (protocol-aware static analysis)"
    )
    p_lint.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src)"
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    p_lint.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="only run the given rule (repeatable), e.g. --select SPL001",
    )
    p_lint.add_argument(
        "--sanitize-selftest",
        action="store_true",
        help="instead of linting, self-test the runtime protocol sanitizer",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_an = sub.add_parser(
        "analyze",
        help="run specflow (interprocedural type-state + happens-before "
        "analysis)",
    )
    p_an.add_argument(
        "paths", nargs="*", help="files/directories to analyse (default: src)"
    )
    p_an.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    p_an.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="only run the given rule (repeatable), e.g. --select SPF101",
    )
    p_an.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings whose fingerprints this baseline accepts",
    )
    p_an.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the accepted baseline and exit 0",
    )
    p_an.add_argument(
        "--trace",
        metavar="FILE",
        help="replay a recorded event log (JSONL) against the protocol "
        "model and cross-reference the static findings",
    )
    p_an.add_argument(
        "--bw",
        type=int,
        default=4,
        metavar="N",
        help="backward window used by the trace replay's staleness check",
    )
    p_an.set_defaults(func=_cmd_analyze)

    p_pl = sub.add_parser(
        "perf-lint",
        help="run specperf (static hot-path cost analysis with "
        "trace-validated phase-cost contracts)",
    )
    p_pl.add_argument(
        "paths", nargs="*", help="files/directories to analyse (default: src)"
    )
    p_pl.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    p_pl.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="only run the given rule (repeatable), e.g. --select SPP203",
    )
    p_pl.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings whose fingerprints this baseline accepts",
    )
    p_pl.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the accepted baseline and exit 0",
    )
    p_pl.add_argument(
        "--trace",
        metavar="FILE",
        help="replay a recorded event log (JSONL), measure per-phase "
        "time shares, and judge findings against the model's phase "
        "budget",
    )
    p_pl.add_argument(
        "--model-p",
        type=int,
        default=None,
        metavar="P",
        help="processor count for the model budget (default: ranks in "
        "the trace)",
    )
    p_pl.add_argument(
        "--tol",
        type=float,
        default=0.05,
        metavar="X",
        help="share drift tolerated before a finding is CONFIRMED "
        "(default: 0.05)",
    )
    p_pl.set_defaults(func=_cmd_perf_lint)

    p_tn = sub.add_parser(
        "taint",
        help="run spectaint (speculation-escape & rollback-safety "
        "abstract interpretation, rules SPT3xx)",
    )
    p_tn.add_argument(
        "paths", nargs="*", help="files/directories to analyse (default: src)"
    )
    p_tn.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    p_tn.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="only run the given rule (repeatable), e.g. --select SPT301",
    )
    p_tn.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings whose fingerprints this baseline accepts "
        "(accepts the consolidated baselines.json or a legacy v1 file)",
    )
    p_tn.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings under the `spectaint` key of "
        "the consolidated baseline file and exit 0",
    )
    p_tn.add_argument(
        "--trace",
        metavar="FILE",
        help="replay a recorded event log (JSONL): mark each finding "
        "CONFIRMED (a send ran during an open speculation window), "
        "REFUTED or UNOBSERVED",
    )
    p_tn.set_defaults(func=_cmd_taint)

    p_bd = sub.add_parser(
        "bounds",
        help="run specbound (static speculation-resource bound analysis "
        "with trace-validated occupancy contracts, rules SPB4xx)",
    )
    p_bd.add_argument(
        "paths", nargs="*", help="files/directories to analyse (default: src)"
    )
    p_bd.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    p_bd.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="only run the given rule (repeatable), e.g. --select SPB401",
    )
    p_bd.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings whose fingerprints this baseline accepts "
        "(accepts the consolidated baselines.json or a legacy v1 file)",
    )
    p_bd.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings under the `specbound` key of "
        "the consolidated baseline file and exit 0",
    )
    p_bd.add_argument(
        "--trace",
        metavar="FILE",
        help="check the symbolic occupancy bounds against a recorded "
        "event log's observed per-rank maxima (history-ring span, inbox "
        "depth, in-flight sends, cascade depth, event count); each "
        "contract is CONFIRMED, REFUTED or UNOBSERVED",
    )
    p_bd.add_argument(
        "--model-p",
        type=int,
        default=None,
        metavar="P",
        help="processor count for the bound evaluation (default: ranks "
        "in the trace)",
    )
    p_bd.add_argument(
        "--model-fw",
        type=int,
        default=1,
        metavar="N",
        help="forward window the trace was recorded with (default: 1)",
    )
    p_bd.add_argument(
        "--model-bw",
        type=int,
        default=2,
        metavar="N",
        help="backward window the trace was recorded with (default: 2, "
        "the N-body speculator's)",
    )
    p_bd.set_defaults(func=_cmd_bounds)

    p_ck = sub.add_parser(
        "check",
        help="run every analysis family (speclint+specflow+specperf+"
        "spectaint+specbound) over one shared parse",
    )
    p_ck.add_argument(
        "paths", nargs="*", help="files/directories to analyse (default: src)"
    )
    p_ck.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    p_ck.add_argument(
        "--sarif",
        metavar="FILE",
        help="write one merged SARIF document (one run per tool) to FILE",
    )
    p_ck.add_argument(
        "--baselines",
        metavar="FILE",
        help="consolidated baseline file (default: .speclint/baselines.json "
        "when present)",
    )
    p_ck.add_argument(
        "--migrate-baselines",
        action="store_true",
        help="one-shot: merge the legacy per-tool baseline files into the "
        "consolidated schema-versioned document, then exit",
    )
    p_ck.add_argument(
        "--stats",
        action="store_true",
        help="also report per-tool wall time and the shared parse's "
        "file/failure counts",
    )
    p_ck.set_defaults(func=_cmd_check)

    p_mc = sub.add_parser(
        "mc",
        help="run specmc (exhaustive interleaving model checking of the "
        "sans-I/O engine)",
    )
    p_mc.add_argument(
        "--p", default="2", metavar="LIST",
        help="processor counts to sweep, comma-separated (default: 2; max 3)",
    )
    p_mc.add_argument(
        "--fw", default="1", metavar="LIST",
        help="forward windows to sweep (default: 1; max 2)",
    )
    p_mc.add_argument(
        "--bw", default="1", metavar="LIST",
        help="backward windows to sweep (default: 1; max 2)",
    )
    p_mc.add_argument(
        "--iters", default="3", metavar="LIST",
        help="iteration counts to sweep (default: 3; max 4)",
    )
    p_mc.add_argument(
        "--cascade", choices=("recompute", "none"), default="recompute",
        help="cascade policy for every configuration",
    )
    p_mc.add_argument(
        "--scenario", choices=("drift", "constant"), default="drift",
        help="program scenario: drift rejects every speculation "
        "(cascades fire); constant accepts every speculation",
    )
    p_mc.add_argument(
        "--window", choices=("static", "aimd"), default="static",
        help="window policy seated in every engine: static keeps FW "
        "fixed; aimd explores the adaptive controller's widen/shrink "
        "schedule (one-iteration epochs, bounds [0, 2])",
    )
    p_mc.add_argument(
        "--budget", metavar="SPEC",
        help="per-configuration exploration budget, e.g. 60s, 2m or a "
        "state count like 50000 (default: unbounded)",
    )
    p_mc.add_argument(
        "--mutate", metavar="NAME",
        help="inject a known engine bug (see docs/static_analysis.md) to "
        "exercise the counterexample pipeline",
    )
    p_mc.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format",
    )
    p_mc.add_argument(
        "--report", metavar="FILE",
        help="also write the JSON report document to FILE (CI artifact)",
    )
    p_mc.add_argument(
        "--emit-trace", metavar="FILE",
        help="on violation: write the shrunk counterexample as a "
        "replayable event trace (`repro analyze --trace FILE`)",
    )
    p_mc.add_argument(
        "--emit-test", metavar="FILE",
        help="on violation: write a ready-to-run pytest regression "
        "replaying the shrunk counterexample",
    )
    p_mc.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging the counterexample schedule",
    )
    p_mc.set_defaults(func=_cmd_mc)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
