"""Capacity-proportional partitioning of variables over processors.

Implements the load-balancing conditions of the paper (Eq. 4–5): the
N variables are split into p disjoint subsets with |X_i| proportional
to the processor capacity M_i, so the computation phase takes equal
time on every processor.
"""

from repro.partition.partition import (
    Partition,
    largest_remainder_round,
    block_partition,
    cyclic_partition,
    proportional_counts,
    proportional_partition,
)

__all__ = [
    "Partition",
    "largest_remainder_round",
    "block_partition",
    "cyclic_partition",
    "proportional_counts",
    "proportional_partition",
]
