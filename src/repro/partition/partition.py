"""Partitioning of N variables over p heterogeneous processors.

The paper's load-balancing conditions (Section 4, Eq. 4–5)::

    N_i / M_i = N_j / M_j   for all i, j        (proportionality)
    sum_i N_i = N                               (completeness)

Integer rounding makes exact proportionality impossible in general;
:func:`proportional_counts` uses the largest-remainder method, which
satisfies completeness exactly and proportionality within one variable
per processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Partition:
    """A disjoint assignment of variable indices ``0..n-1`` to processors.

    Attributes
    ----------
    n:
        Total number of variables.
    assignments:
        Tuple of index arrays, one per processor; ``assignments[i]`` are
        the variable indices owned by processor ``i``.
    """

    n: int
    assignments: tuple[np.ndarray, ...] = field(repr=False)

    def __post_init__(self) -> None:
        seen = np.concatenate([np.asarray(a, dtype=np.intp) for a in self.assignments]) \
            if self.assignments else np.empty(0, dtype=np.intp)
        if seen.size != self.n:
            raise ValueError(
                f"partition covers {seen.size} of {self.n} variables"
            )
        if seen.size and (np.unique(seen).size != seen.size or seen.min() < 0 or seen.max() >= self.n):
            raise ValueError("partition assignments must be a disjoint cover of range(n)")

    @property
    def nprocs(self) -> int:
        """Number of processors in the partition."""
        return len(self.assignments)

    @property
    def counts(self) -> tuple[int, ...]:
        """Number of variables per processor (the paper's N_i)."""
        return tuple(len(a) for a in self.assignments)

    def owner(self) -> np.ndarray:
        """Array of length n mapping variable index → owning processor."""
        owner = np.empty(self.n, dtype=np.intp)
        for rank, idx in enumerate(self.assignments):
            owner[idx] = rank
        return owner

    def indices(self, rank: int) -> np.ndarray:
        """The variable indices owned by processor ``rank``."""
        return self.assignments[rank]

    def __iter__(self):
        return iter(self.assignments)


def proportional_counts(n: int, capacities: Sequence[float]) -> list[int]:
    """Split ``n`` items proportionally to ``capacities`` (Eq. 4–5).

    Uses the largest-remainder (Hamilton) method: exact total, and each
    count within one item of the ideal real-valued share.

    Parameters
    ----------
    n:
        Total number of items (>= 0).
    capacities:
        Positive per-processor capacities M_i.

    Returns
    -------
    list of ints summing exactly to ``n``.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    caps = np.asarray(capacities, dtype=float)
    if caps.ndim != 1 or caps.size == 0:
        raise ValueError("capacities must be a non-empty 1-D sequence")
    if np.any(caps <= 0):
        raise ValueError("capacities must all be positive")

    shares = n * caps / caps.sum()
    counts = np.floor(shares).astype(int)
    remainder = n - int(counts.sum())
    if remainder:
        # Give the leftover items to the largest fractional shares;
        # ties broken by processor order (deterministic).
        frac = shares - counts
        order = np.lexsort((np.arange(caps.size), -frac))
        counts[order[:remainder]] += 1
    return counts.tolist()


def largest_remainder_round(shares: Sequence[float]) -> list[int]:
    """Round non-negative real shares to integers preserving their sum.

    The shares must sum to (floating-point approximately) an integer;
    each rounded count is within one of its share.
    """
    arr = np.asarray(shares, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("shares must be a non-empty 1-D sequence")
    if np.any(arr < 0):
        raise ValueError("shares must be >= 0")
    total = arr.sum()
    n = int(round(total))
    if abs(total - n) > 1e-6 * max(1.0, abs(total)):
        raise ValueError(f"shares sum to {total}, not an integer")
    counts = np.floor(arr).astype(int)
    remainder = n - int(counts.sum())
    if remainder:
        frac = arr - counts
        order = np.lexsort((np.arange(arr.size), -frac))
        counts[order[:remainder]] += 1
    return counts.tolist()


def proportional_partition(n: int, capacities: Sequence[float]) -> Partition:
    """Contiguous-block partition with capacity-proportional counts.

    Processor 0 (the fastest, by the paper's convention) receives the
    first block, and so on.
    """
    counts = proportional_counts(n, capacities)
    bounds = np.concatenate([[0], np.cumsum(counts)])
    assignments = tuple(
        np.arange(bounds[i], bounds[i + 1], dtype=np.intp) for i in range(len(counts))
    )
    return Partition(n=n, assignments=assignments)


def block_partition(n: int, p: int) -> Partition:
    """Equal contiguous blocks (homogeneous processors)."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return proportional_partition(n, [1.0] * p)


def cyclic_partition(n: int, p: int) -> Partition:
    """Round-robin assignment: variable i goes to processor i mod p."""
    if p < 1:
        raise ValueError("p must be >= 1")
    assignments = tuple(np.arange(r, n, p, dtype=np.intp) for r in range(p))
    return Partition(n=n, assignments=assignments)
