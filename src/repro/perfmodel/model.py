"""Equations 3–9: iteration time with and without speculation.

Model assumptions (paper, Section 4):

* N variables distributed over the fastest p processors proportionally
  to capacities M_1 >= M_2 >= ... (ideal balancing, Eq. 4–5);
* communication time t_comm(p) equal on all processors and constant
  over iterations;
* with speculation (FW = 1), processor i speculates and checks *all*
  N - N_i remote variables, overlapping (speculation + computation)
  with communication (Eq. 7–8);
* a fraction k of each processor's variables must be recomputed per
  iteration due to speculation errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.partition import largest_remainder_round


@dataclass(frozen=True)
class LinearCommTime:
    """t_comm(p) = base + slope · (p - 1); t_comm(1) is defined as 0.

    The Section-4 study assumes communication time "increases linearly
    with the number of processors used".
    """

    slope: float
    base: float = 0.0

    def __post_init__(self) -> None:
        if self.slope < 0 or self.base < 0:
            raise ValueError("slope and base must be >= 0")

    def __call__(self, p: int) -> float:
        if p < 1:
            raise ValueError("p must be >= 1")
        if p == 1:
            return 0.0
        return self.base + self.slope * (p - 1)


@dataclass(frozen=True)
class ModelParams:
    """Inputs to the performance model (Table 1 of the paper).

    Attributes
    ----------
    n:
        Total number of variables N.
    capacities:
        Processor capacities M_i in ops/second, fastest first.
    f_comp / f_spec / f_check:
        Operations to compute / speculate / check one variable.
    t_comm:
        Callable ``p -> seconds``: communication time per iteration on
        a p-processor run.
    k:
        Fraction of a processor's variables recomputed per iteration
        because of speculation errors (the paper's "% recomputations").
    integer_counts:
        Round the variable allocation to integers (largest remainder)
        instead of using ideal real-valued shares.  The paper's closed
        forms correspond to ``False``.
    allocation:
        ``"compute"`` — the paper's literal Eq. 4–5: balance only the
        computation phase (N_i ∝ M_i).  ``"total"`` — balance the whole
        speculative workload, (N−N_i)(f_spec+f_check) + N_i·f_comp(1+k),
        across processors.

        **Reproduction note**: with the paper's own parameters
        (10:1 linear capacity gradient, f_comp = 100·f_spec =
        50·f_check) the literal ``"compute"`` balancing makes Eq. 8's
        maximum land on the *slowest* processor, which owns ~11 of the
        1000 variables yet must speculate and check the other ~989 at
        one tenth of P1's speed — speculation then *loses* ~45 % at
        p = 16 instead of gaining ~25 %.  The paper calls this
        imbalance "small", which is only true for mild heterogeneity.
        ``"total"`` balancing restores the published Fig. 5 behaviour
        and is what a practitioner would deploy.
    """

    n: int
    capacities: tuple[float, ...]
    f_comp: float
    f_spec: float
    f_check: float
    t_comm: Callable[[int], float]
    k: float = 0.0
    integer_counts: bool = False
    allocation: str = "compute"

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        caps = tuple(float(c) for c in self.capacities)
        if not caps:
            raise ValueError("need at least one capacity")
        if any(c <= 0 for c in caps):
            raise ValueError("capacities must be positive")
        if any(a < b for a, b in zip(caps, caps[1:])) and caps != tuple(sorted(caps, reverse=True)):
            raise ValueError("capacities must be sorted fastest first")
        object.__setattr__(self, "capacities", caps)
        if min(self.f_comp, self.f_spec, self.f_check) < 0:
            raise ValueError("operation counts must be >= 0")
        if not 0 <= self.k <= 1:
            raise ValueError("k must be in [0, 1]")
        if self.allocation not in ("compute", "total"):
            raise ValueError(f"unknown allocation mode {self.allocation!r}")

    @property
    def max_procs(self) -> int:
        """Largest p the parameter set supports."""
        return len(self.capacities)


class PerformanceModel:
    """Evaluates Eq. 3–9 and the derived speedup curves."""

    def __init__(self, params: ModelParams) -> None:
        self.params = params

    # ------------------------------------------------------------ helpers
    def allocation(self, p: int) -> list[float]:
        """Variables per processor N_i on a p-processor run.

        ``allocation="compute"`` balances the compute phase only
        (Eq. 4–5); ``"total"`` balances the full speculative workload
        (see :class:`ModelParams`).
        """
        pr = self.params
        if not 1 <= p <= pr.max_procs:
            raise ValueError(f"p must be in [1, {pr.max_procs}]")
        caps = pr.capacities[:p]
        if pr.allocation == "total" and p > 1:
            counts = self._total_balanced(pr.n, caps)
        else:
            total = sum(caps)
            counts = [pr.n * c / total for c in caps]
        if pr.integer_counts:
            return [float(c) for c in largest_remainder_round(counts)]
        return counts

    def _total_balanced(self, n: int, caps: Sequence[float]) -> list[float]:
        """N_i equalising per-processor speculative workload.

        Solves ``(n·a + N_i·(b−a)) / M_i = λ`` with ``Σ N_i = n``, where
        a = f_spec + f_check and b = f_comp·(1+k); processors too slow
        to receive any variables (negative solution) are clamped to 0
        and the remainder redistributed.
        """
        pr = self.params
        a = pr.f_spec + pr.f_check
        b = pr.f_comp * (1.0 + pr.k)
        if b <= a:
            # Compute is cheaper than spec+check per variable: giving a
            # processor fewer variables does not reduce its load, so
            # fall back to capacity-proportional shares.
            total = sum(caps)
            return [n * c / total for c in caps]
        counts = [0.0] * len(caps)
        active = list(range(len(caps)))
        while True:
            sum_m = sum(caps[i] for i in active)
            lam = n * ((b - a) + len(active) * a) / sum_m
            trial = {i: (lam * caps[i] - n * a) / (b - a) for i in active}
            negatives = [i for i, v in trial.items() if v < 0]
            if not negatives:
                for i, v in trial.items():
                    counts[i] = v
                return counts
            worst = min(negatives, key=lambda i: trial[i])
            active.remove(worst)
            if not active:  # pragma: no cover - cannot happen for n >= 1
                raise RuntimeError("no processor can hold any variable")

    # ---------------------------------------------------------- equations
    def t_serial(self) -> float:
        """Eq. 3: single-processor iteration time on P1."""
        pr = self.params
        return pr.n * pr.f_comp / pr.capacities[0]

    def t_nospec(self, p: int) -> float:
        """Eq. 6: iteration time without speculation (max over ranks)."""
        pr = self.params
        if p == 1:
            return self.t_serial()
        counts = self.allocation(p)
        comp = max(
            n_i * pr.f_comp / m_i for n_i, m_i in zip(counts, pr.capacities[:p])
        )
        return comp + pr.t_comm(p)

    def t_spec_rank(self, p: int, i: int) -> float:
        """Eq. 8: iteration time with speculation on processor i (0-based).

        A processor allocated zero variables (possible under ``"total"``
        balancing with strong heterogeneity) computes nothing, hence
        speculates and checks nothing: it is idle and contributes 0.
        """
        pr = self.params
        counts = self.allocation(p)
        n_i = counts[i]
        if n_i == 0.0:
            return 0.0
        m_i = pr.capacities[i]
        remote = pr.n - n_i
        overlap = max(
            remote * pr.f_spec / m_i + n_i * pr.f_comp / m_i,
            pr.t_comm(p),
        )
        return overlap + remote * pr.f_check / m_i + pr.k * n_i * pr.f_comp / m_i

    def t_spec(self, p: int) -> float:
        """Eq. 9: iteration time with speculation (max over processors)."""
        if p == 1:
            return self.t_serial()
        return max(self.t_spec_rank(p, i) for i in range(p))

    # ----------------------------------------------------------- speedups
    def speedup_nospec(self, p: int) -> float:
        """Speedup of the blocking algorithm relative to P1."""
        return self.t_serial() / self.t_nospec(p)

    def speedup_spec(self, p: int) -> float:
        """Speedup of the speculative algorithm relative to P1."""
        return self.t_serial() / self.t_spec(p)

    def speedup_max(self, p: int) -> float:
        """Σ_{i<=p} M_i / M_1: best possible on this processor set."""
        caps = self.params.capacities[:p]
        return sum(caps) / caps[0]

    # ------------------------------------------------------------- curves
    def speedup_curves(self, p_values: Sequence[int] | None = None) -> dict[str, list[float]]:
        """The Fig. 5 dataset: speedups vs p for all three curves."""
        if p_values is None:
            p_values = range(1, self.params.max_procs + 1)
        ps = list(p_values)
        return {
            "p": [float(p) for p in ps],
            "no_speculation": [self.speedup_nospec(p) for p in ps],
            "speculation": [self.speedup_spec(p) for p in ps],
            "maximum": [self.speedup_max(p) for p in ps],
        }

    def error_sensitivity(self, p: int, k_values: Sequence[float]) -> dict[str, list[float]]:
        """The Fig. 6 dataset: speedup at fixed p as k varies."""
        spec = []
        for k in k_values:
            model = PerformanceModel(replace(self.params, k=k))
            spec.append(model.speedup_spec(p))
        nospec = self.speedup_nospec(p)
        return {
            "k": [float(k) for k in k_values],
            "speculation": spec,
            "no_speculation": [nospec] * len(spec),
        }

    def crossover_k(self, p: int, tol: float = 1e-9) -> float:
        """The k at which speculation stops paying off at p processors.

        Found by bisection on ``t_spec(p; k) - t_nospec(p)``; returns
        ``1.0`` if speculation wins even at k = 1.
        """
        target = self.t_nospec(p)

        def gain(k: float) -> float:
            return target - PerformanceModel(replace(self.params, k=k)).t_spec(p)

        if gain(1.0) >= 0:
            return 1.0
        if gain(0.0) <= 0:
            return 0.0
        lo, hi = 0.0, 1.0
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if gain(mid) > 0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


def section4_params(
    n: int = 1000,
    p_max: int = 16,
    fastest: float = 120e6,
    ratio: float = 10.0,
    f_comp: float = 7000.0,
    k: float = 0.02,
    allocation: str = "total",
) -> ModelParams:
    """The parameter study of Section 4 (used for Fig. 5 and Fig. 6).

    * capacities fall linearly with M_1 = ``ratio`` × M_{p_max};
    * f_comp = 100 · f_spec = 50 · f_check;
    * t_comm(p) grows linearly in p and equals the computation time per
      iteration at p = p_max.

    ``allocation`` defaults to ``"total"`` because the paper's literal
    compute-only balancing (``"compute"``) contradicts its own Fig. 5
    at this heterogeneity — see :class:`ModelParams` for the analysis.
    """
    caps = tuple(
        fastest - i * (fastest - fastest / ratio) / (p_max - 1) for i in range(p_max)
    )
    f_spec = f_comp / 100.0
    f_check = f_comp / 50.0
    # Computation time per iteration at p_max with ideal balancing:
    # every rank takes N f_comp / sum(M).
    comp_at_pmax = n * f_comp / sum(caps)
    t_comm = LinearCommTime(slope=comp_at_pmax / (p_max - 1))
    return ModelParams(
        n=n,
        capacities=caps,
        f_comp=f_comp,
        f_spec=f_spec,
        f_check=f_check,
        t_comm=t_comm,
        k=k,
        allocation=allocation,
    )
