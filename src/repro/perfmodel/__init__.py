"""The paper's empirical performance model (Section 4, Eq. 3–9).

Estimates per-iteration execution time of a synchronous iterative
algorithm with and without speculative computation, on p heterogeneous
processors with capacity-proportional load balancing, and the derived
speedups (Fig. 5, Fig. 6).  :mod:`repro.perfmodel.calibrate` fits the
model's communication term from measured runs for the model-vs-measured
comparison (Fig. 9).
"""

from repro.perfmodel.calibrate import calibrate_tcomm, model_vs_measured
from repro.perfmodel.extended import ExtendedPerformanceModel, VariabilityParams
from repro.perfmodel.model import (
    LinearCommTime,
    ModelParams,
    PerformanceModel,
    section4_params,
)

__all__ = [
    "ExtendedPerformanceModel",
    "LinearCommTime",
    "VariabilityParams",
    "ModelParams",
    "PerformanceModel",
    "calibrate_tcomm",
    "model_vs_measured",
    "section4_params",
]
