"""Calibrating the model from measurements (the Fig. 9 comparison).

The paper parameterises its model "to represent the N-body simulation
example" and compares predicted with measured speedups.  Here we do
the same: fit the linear t_comm(p) term from the measured per-iteration
communication time of blocking (FW = 0) runs, take the operation counts
from the application's cost model, and compare curves.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.results import RunResult
from repro.perfmodel.model import LinearCommTime, ModelParams, PerformanceModel


def calibrate_tcomm(measured: Mapping[int, RunResult]) -> LinearCommTime:
    """Least-squares fit of t_comm(p) = base + slope·(p-1) from runs.

    Parameters
    ----------
    measured:
        Mapping p → blocking-run (FW = 0) result on p processors.
        Entries with p == 1 are ignored (no communication).

    Returns
    -------
    The fitted :class:`LinearCommTime` (slope clamped to >= 0).
    """
    ps, times = [], []
    for p, result in sorted(measured.items()):
        if p < 2:
            continue
        comm = result.breakdown(how="max")["comm"] / result.iterations
        ps.append(float(p - 1))
        times.append(comm)
    if not ps:
        raise ValueError("need at least one measurement with p >= 2")
    if len(ps) == 1:
        return LinearCommTime(slope=times[0] / ps[0])
    slope, base = np.polyfit(ps, times, 1)
    return LinearCommTime(slope=max(float(slope), 0.0), base=max(float(base), 0.0))


def model_vs_measured(
    params: ModelParams,
    measured_nospec: Mapping[int, RunResult],
    measured_spec: Mapping[int, RunResult],
) -> dict[str, list[float]]:
    """The Fig. 9 dataset: model and measured speedups side by side.

    Speedups are computed relative to the measured (resp. modelled)
    single-processor time.  Returns columns keyed by curve name plus
    per-point percentage deviations.
    """
    model = PerformanceModel(params)
    ps = sorted(p for p in measured_nospec if p in measured_spec)
    if 1 not in measured_nospec:
        raise ValueError("need a p=1 measurement as the speedup baseline")
    t1 = measured_nospec[1].time_per_iteration

    rows: dict[str, list[float]] = {
        "p": [],
        "measured_no_speculation": [],
        "measured_speculation": [],
        "model_no_speculation": [],
        "model_speculation": [],
        "deviation_no_speculation_pct": [],
        "deviation_speculation_pct": [],
    }
    for p in ps:
        meas_ns = t1 / measured_nospec[p].time_per_iteration
        meas_sp = t1 / measured_spec[p].time_per_iteration
        mod_ns = model.speedup_nospec(p)
        mod_sp = model.speedup_spec(p)
        rows["p"].append(float(p))
        rows["measured_no_speculation"].append(meas_ns)
        rows["measured_speculation"].append(meas_sp)
        rows["model_no_speculation"].append(mod_ns)
        rows["model_speculation"].append(mod_sp)
        rows["deviation_no_speculation_pct"].append(
            100.0 * abs(mod_ns - meas_ns) / meas_ns
        )
        rows["deviation_speculation_pct"].append(
            100.0 * abs(mod_sp - meas_sp) / meas_sp
        )
    return rows
