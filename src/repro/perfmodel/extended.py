"""Extended performance model: variance + forward/backward windows.

The paper's stated future work: *"developing a more sophisticated
performance model that accounts for variations in computation and
communication times of processors and different forward and backward
window sizes for speculation"*.  This module builds that model.

The steady-state pipeline of one (symmetric) processor is simulated as
a stochastic recurrence over iterations::

    F_t = S_t + overhead + C_t + penalty_t       (compute finishes)
    A_t = S_t + W_t                              (iteration-t messages arrive)
    S_t = max(F_{t-1}, A_{t-FW})                 (forward-window constraint)

with per-iteration compute times ``C_t`` and message-arrival delays
``W_t`` drawn log-normally around the deterministic Section-4 values.
A speculated input that bridged a gap of ``g`` iterations is rejected
with probability ``p_rej(g) = min(1, k₁ · g^2 · κ(BW))`` — the gap²
law follows from constant-velocity extrapolation error growing as
(g·Δt)², and κ(BW) discounts rejections for higher-order speculation
on smooth trajectories.  Each rejection charges the correction cost.

The expected iteration time is estimated by a seeded Monte Carlo over
that recurrence (deterministic given the seed), which exposes the
FW/variance trade-off the paper anticipates: under heavy-tailed
communication delays the optimal forward window moves beyond 1 until
gap-driven rejections eat the gains — see :meth:`optimal_fw`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perfmodel.model import ModelParams, PerformanceModel


@dataclass(frozen=True)
class VariabilityParams:
    """Stochastic and window parameters layered on a :class:`ModelParams`.

    Attributes
    ----------
    comm_cv:
        Coefficient of variation of the per-iteration communication
        time (log-normal; 0 = the deterministic Section-4 model).
    comp_cv:
        Coefficient of variation of the compute time (background load).
    k1:
        Rejection probability of a gap-1 speculation (the measured
        Table-3 operating point, e.g. 0.02 at θ = 0.01).
    bw_discount:
        κ(BW) = ``bw_discount ** (BW - 1)``: multiplicative reduction of
        the rejection probability per extra backward-window point
        (smooth trajectories reward higher-order extrapolation).
    correction_fraction:
        Cost of one correction as a fraction of a full compute phase
        (1.0 = full recomputation; the N-body incremental correction
        measures ≈ 2·N_k/N).
    """

    comm_cv: float = 0.0
    comp_cv: float = 0.0
    k1: float = 0.02
    bw_discount: float = 1.0
    correction_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.comm_cv < 0 or self.comp_cv < 0:
            raise ValueError("coefficients of variation must be >= 0")
        if not 0 <= self.k1 <= 1:
            raise ValueError("k1 must be in [0, 1]")
        if not 0 < self.bw_discount <= 1:
            raise ValueError("bw_discount must be in (0, 1]")
        if self.correction_fraction < 0:
            raise ValueError("correction_fraction must be >= 0")

    def rejection_probability(self, gap: int, bw: int) -> float:
        """p_rej(gap, BW) = min(1, k₁ · gap² · κ(BW))."""
        if gap < 1:
            raise ValueError("gap must be >= 1")
        if bw < 1:
            raise ValueError("bw must be >= 1")
        kappa = self.bw_discount ** (bw - 1)
        return float(min(1.0, self.k1 * gap * gap * kappa))


def _lognormal_factors(rng: np.random.Generator, cv: float, size: int) -> np.ndarray:
    """Unit-mean log-normal multipliers with coefficient of variation cv."""
    if cv == 0:
        return np.ones(size)
    sigma2 = np.log(1.0 + cv * cv)
    mu = -0.5 * sigma2
    return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=size)


class ExtendedPerformanceModel:
    """Monte-Carlo evaluation of the variance/window-aware model.

    Parameters
    ----------
    params:
        The deterministic Section-4 parameters (capacities, operation
        counts, t_comm).
    variability:
        Stochastic and window parameters.
    mc_iterations:
        Simulated pipeline iterations per estimate (after warm-up).
    seed:
        Monte-Carlo seed (estimates are deterministic given it).
    """

    def __init__(
        self,
        params: ModelParams,
        variability: VariabilityParams,
        mc_iterations: int = 4000,
        seed: int = 0,
    ) -> None:
        if mc_iterations < 10:
            raise ValueError("mc_iterations must be >= 10")
        self.params = params
        self.variability = variability
        self.mc_iterations = mc_iterations
        self.seed = seed
        self._base = PerformanceModel(params)

    # ----------------------------------------------------------- components
    def _deterministic_components(self, p: int) -> tuple[float, float, float, float]:
        """(spec+comp time, check time, comm time, compute time) on the
        bottleneck processor of a p-processor run (per iteration)."""
        pr = self.params
        counts = self._base.allocation(p)
        # Bottleneck = the rank with the largest Eq.-8 time.
        times = [self._base.t_spec_rank(p, i) for i in range(p)]
        i = int(np.argmax(times))
        n_i = counts[i]
        m_i = pr.capacities[i]
        remote = pr.n - n_i
        comp = n_i * pr.f_comp / m_i
        spec = remote * pr.f_spec / m_i
        check = remote * pr.f_check / m_i
        return spec, check, pr.t_comm(p), comp

    # ------------------------------------------------------------- estimate
    def expected_iteration_time(self, p: int, fw: int, bw: int = 2) -> float:
        """Mean steady-state iteration time at forward window ``fw``.

        ``fw = 0`` is the blocking algorithm (no speculation, waits for
        messages every iteration); ``fw >= 1`` runs the speculative
        pipeline recurrence.
        """
        if fw < 0:
            raise ValueError("fw must be >= 0")
        if p == 1:
            return self._base.t_serial()
        var = self.variability
        rng = np.random.default_rng(self.seed)
        warmup = max(50, self.mc_iterations // 10)
        total = self.mc_iterations + warmup

        if fw == 0:
            # Blocking algorithm: its own (compute-balanced) allocation,
            # no speculation overheads; iteration = compute + full wait.
            comp0 = self._base.t_nospec(p) - self.params.t_comm(p)
            comp_draws = comp0 * _lognormal_factors(rng, var.comp_cv, total)
            comm_draws = self.params.t_comm(p) * _lognormal_factors(
                rng, var.comm_cv, total
            )
            samples = comp_draws + comm_draws
            return float(samples[warmup:].mean())

        spec, check, comm, comp = self._deterministic_components(p)
        comp_draws = comp * _lognormal_factors(rng, var.comp_cv, total)
        comm_draws = comm * _lognormal_factors(rng, var.comm_cv, total)
        reject_draws = rng.uniform(size=total)

        finish = 0.0  # F_{t-1}
        arrivals = np.zeros(total)  # A_t
        starts = np.zeros(total)
        for t in range(total):
            gate = arrivals[t - fw] if t - fw >= 0 else 0.0
            start = max(finish, gate)
            starts[t] = start
            arrivals[t] = start + comm_draws[t]
            # Speculation gap: distance from the newest verified input.
            # v = the largest j < t whose messages had arrived by the
            # time this compute started (v = -1 means only the initial
            # state was verified).
            v = -1
            for j in range(t - 1, max(t - fw - 1, -1), -1):
                if arrivals[j] <= start:
                    v = j
                    break
            gap = max(1, min(t - v if v >= 0 else t + 1, fw))
            p_rej = var.rejection_probability(max(gap, 1), bw)
            penalty = (
                var.correction_fraction * comp_draws[t]
                if reject_draws[t] < p_rej
                else 0.0
            )
            finish = start + spec + comp_draws[t] + check + penalty
        return float((finish - starts[warmup]) / (total - warmup))

    def expected_speedup(self, p: int, fw: int, bw: int = 2) -> float:
        """Speedup vs the deterministic single-processor time."""
        return self._base.t_serial() / self.expected_iteration_time(p, fw, bw)

    def optimal_fw(self, p: int, bw: int = 2, max_fw: int = 6) -> int:
        """The forward window minimising expected iteration time."""
        if max_fw < 1:
            raise ValueError("max_fw must be >= 1")
        times = {
            fw: self.expected_iteration_time(p, fw, bw) for fw in range(0, max_fw + 1)
        }
        return min(times, key=times.get)

    def window_study(self, p: int, fws=range(0, 5), bws=(1, 2, 3)) -> dict:
        """Expected iteration time over an FW × BW grid."""
        grid = {
            (fw, bw): self.expected_iteration_time(p, fw, bw)
            for fw in fws
            for bw in bws
        }
        return {
            "grid": grid,
            "best": min(grid, key=grid.get),
        }
