"""The paper's case study: parallel O(N²) N-body with speculation.

Each simulated processor owns a block of particles (allocated
proportionally to its capacity, as in the paper).  Per iteration it:

1. sends its particles' positions and velocities to every other
   processor (the block payload is an ``(n_k, 6)`` array: columns
   0–2 position, 3–5 velocity);
2. speculates the positions of particles whose messages are late using
   Eq. 10 (constant velocity over the gap);
3. computes the resultant force on its own particles from *all*
   particles and advances them one semi-implicit Euler step;
4. on arrival of a late message, checks each speculated particle with
   the Eq. 11 pairwise ratio against θ and — exactly and
   incrementally — corrects the contribution of the particles that
   failed the check.

Cost model (paper, Section 5): 70 flops per pair force, 12 flops to
speculate a particle, 24 to check one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.program import SyncIterativeProgram
from repro.core.receive_driven import IncrementalProgram
from repro.nbody.barneshut import NODE_FLOPS, Octree, bh_accelerations
from repro.nbody.forces import PAIR_FLOPS, accelerations_from_sources
from repro.nbody.integrators import simulate
from repro.nbody.particles import ParticleSystem
from repro.nbody.speculation import (
    CHECK_FLOPS_PER_PARTICLE,
    SPECULATE_FLOPS_PER_PARTICLE,
    pairwise_error_ratios,
    speculate_positions,
)
from repro.partition import Partition, proportional_partition

#: Extra flops per owned particle for the velocity/position update.
INTEGRATE_FLOPS = 12.0


@dataclass
class NBodySpecStats:
    """Particle-granularity speculation statistics (for Table 3).

    The driver counts block-level accept/reject; the paper reports
    *per-particle* figures, which the application accumulates here.
    """

    particles_checked: int = 0
    particles_rejected: int = 0
    #: Largest relative pair-force error among *accepted* speculations.
    max_accepted_force_error: float = 0.0

    @property
    def incorrect_fraction(self) -> float:
        """Paper Table 3's "Incorrect speculations" column."""
        if self.particles_checked == 0:
            return 0.0
        return self.particles_rejected / self.particles_checked


class NBodyProgram(IncrementalProgram):
    """N-body simulation as a :class:`SyncIterativeProgram`.

    Parameters
    ----------
    system:
        Initial particle system (the global X(0)).
    capacities:
        Per-processor capacities M_i; particles are allocated
        proportionally (Eq. 4–5).  Length defines nprocs.
    iterations:
        Number of timesteps.
    dt:
        Timestep size Δt.
    threshold:
        The Eq. 11 acceptance threshold θ (paper uses 0.01).
    record_force_errors:
        Also measure the relative pair-force error of accepted
        speculations (Table 3's last column).  Costs one extra
        pair-force evaluation per checked particle.
    incremental_correction:
        Repair rejected speculations by re-summing only the offending
        particles' contributions (True; exact for those particles, and
        O(n_bad · n_own) cheap), or by recomputing the whole block from
        the actual values (False, the naive "recomputes its variables"
        option the paper mentions; also removes the sub-threshold
        errors of *accepted* particles in that block, at full
        compute cost).
    force_method:
        ``"direct"`` — the paper's O(N²) summation.  ``"barnes_hut"`` —
        the O(N log N) alternative of the paper's footnote 1, with
        opening angle ``bh_theta``; the cost model then charges the
        *measured* interaction count of the last tree traversal.
        Barnes–Hut mode keeps the paper's *direct* pair-force
        speculation corrections (exact for the corrected pairs; the
        monopole approximation error is unaffected) and does not
        support the Fig. 7 receive-driven decomposition (the tree
        needs all blocks at once).
    """

    def __init__(
        self,
        system: ParticleSystem,
        capacities: Sequence[float],
        iterations: int,
        dt: float = 0.01,
        threshold: float = 0.01,
        record_force_errors: bool = False,
        incremental_correction: bool = True,
        force_method: str = "direct",
        bh_theta: float = 0.5,
        partition: Optional[Partition] = None,
    ) -> None:
        super().__init__(nprocs=len(capacities), iterations=iterations, threshold=threshold)
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.system = system.copy()
        self.dt = dt
        self.record_force_errors = record_force_errors
        self.incremental_correction = incremental_correction
        if force_method not in ("direct", "barnes_hut"):
            raise ValueError(f"unknown force_method {force_method!r}")
        if bh_theta < 0:
            raise ValueError("bh_theta must be >= 0")
        self.force_method = force_method
        self.bh_theta = bh_theta
        #: Interactions evaluated by the most recent Barnes-Hut
        #: traversal per rank (drives the measured cost model).
        self._bh_last_interactions = [0] * self.nprocs
        self.partition = (
            partition
            if partition is not None
            else proportional_partition(system.n, capacities)
        )
        if self.partition.nprocs != self.nprocs:
            raise ValueError("partition width must match capacities length")
        if self.partition.n != system.n:
            raise ValueError("partition size must match particle count")
        #: Static per-rank mass arrays (masses never change; every rank
        #: knows all of them from the initial distribution).
        self.masses = [self.system.mass[idx] for idx in self.partition]
        self._blocks0 = [
            np.hstack([self.system.pos[idx], self.system.vel[idx]])
            for idx in self.partition
        ]
        self.spec_stats = NBodySpecStats()

    # ----------------------------------------------------------- numerics
    def initial_block(self, rank: int) -> np.ndarray:
        return self._blocks0[rank]

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        if self.force_method == "barnes_hut":
            return self._compute_barnes_hut(rank, inputs, t)
        own = inputs[rank]
        own_pos, own_vel = own[:, :3], own[:, 3:]
        accel = accelerations_from_sources(
            own_pos,
            own_pos,
            self.masses[rank],
            G=self.system.G,
            softening=self.system.softening,
            exclude_self_pairs=True,
        )
        for k in range(self.nprocs):
            if k == rank:
                continue
            block = inputs[k]
            accel = accel + accelerations_from_sources(
                own_pos,
                block[:, :3],
                self.masses[k],
                G=self.system.G,
                softening=self.system.softening,
            )
        new_vel = own_vel + accel * self.dt
        new_pos = own_pos + new_vel * self.dt
        return np.hstack([new_pos, new_vel])

    def _compute_barnes_hut(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        own = inputs[rank]
        own_pos, own_vel = own[:, :3], own[:, 3:]
        all_pos = np.vstack([inputs[k][:, :3] for k in range(self.nprocs)])
        all_mass = np.concatenate([self.masses[k] for k in range(self.nprocs)])
        tree = Octree(all_pos, all_mass)
        accel, interactions = bh_accelerations(
            own_pos,
            tree,
            G=self.system.G,
            softening=self.system.softening,
            opening_angle=self.bh_theta,
        )
        self._bh_last_interactions[rank] = interactions
        new_vel = own_vel + accel * self.dt
        new_pos = own_pos + new_vel * self.dt
        return np.hstack([new_pos, new_vel])

    def speculate(self, rank, k, times, values, target):
        """Eq. 10 over the history gap: r* = r + v·(gap·Δt), v* = v."""
        last = values[-1]
        gap = target - times[-1]
        pos = speculate_positions(last[:, :3], last[:, 3:], gap * self.dt)
        return np.hstack([pos, last[:, 3:].copy()])

    def check(self, rank, k, speculated, actual, own):
        """Worst Eq. 11 ratio over k's particles vs. our particles."""
        ratios = pairwise_error_ratios(speculated[:, :3], actual[:, :3], own[:, :3])
        self.spec_stats.particles_checked += ratios.size
        rejected = int(np.count_nonzero(ratios > self.threshold))
        self.spec_stats.particles_rejected += rejected
        if self.record_force_errors and ratios.size:
            self._record_force_errors(speculated, actual, own, ratios)
        return float(ratios.max()) if ratios.size else 0.0

    def correct(self, rank, next_block, inputs, k, speculated, actual, t):
        """Exact incremental correction of the rejected particles only.

        Semi-implicit Euler is linear in the acceleration, so replacing
        the contribution of the offending source particles repairs the
        block exactly:  Δa = a(actual_bad) − a(spec_bad);
        v ← v + Δa·Δt;  x ← x + Δa·Δt².
        """
        if not self.incremental_correction:
            # Naive policy: recompute the whole block from scratch.
            fixed = dict(inputs)
            fixed[k] = actual
            return self.compute(rank, fixed, t), self.compute_ops(rank)
        own = inputs[rank]
        own_pos = own[:, :3]
        ratios = pairwise_error_ratios(speculated[:, :3], actual[:, :3], own_pos)
        bad = ratios > self.threshold
        n_bad = int(np.count_nonzero(bad))
        if n_bad == 0:
            # Driver-level rejection implies at least one bad particle;
            # guard anyway (threshold exactly on the boundary).
            return next_block, 0.0
        a_spec = accelerations_from_sources(
            own_pos,
            speculated[bad, :3],
            self.masses[k][bad],
            G=self.system.G,
            softening=self.system.softening,
        )
        a_act = accelerations_from_sources(
            own_pos,
            actual[bad, :3],
            self.masses[k][bad],
            G=self.system.G,
            softening=self.system.softening,
        )
        delta = a_act - a_spec
        new_vel = next_block[:, 3:] + delta * self.dt
        new_pos = next_block[:, :3] + delta * self.dt * self.dt
        ops = 2.0 * PAIR_FLOPS * n_bad * own_pos.shape[0] + 6.0 * own_pos.shape[0]
        return np.hstack([new_pos, new_vel]), ops

    def _record_force_errors(self, speculated, actual, own, ratios):
        """Relative pair-force error vs the nearest local particle."""
        accepted = ratios <= self.threshold
        if not np.any(accepted):
            return
        sp = speculated[accepted, :3]
        ap = actual[accepted, :3]
        own_pos = own[:, :3]
        # Nearest local particle for each accepted remote particle.
        delta = ap[:, None, :] - own_pos[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
        nearest = dist.argmin(axis=1)
        b = own_pos[nearest]
        eps2 = self.system.softening**2
        f_act = (ap - b) / ((np.sum((ap - b) ** 2, axis=1) + eps2) ** 1.5)[:, None]
        f_spec = (sp - b) / ((np.sum((sp - b) ** 2, axis=1) + eps2) ** 1.5)[:, None]
        norm = np.linalg.norm(f_act, axis=1)
        norm[norm == 0] = 1.0
        rel = np.linalg.norm(f_spec - f_act, axis=1) / norm
        worst = float(rel.max())
        if worst > self.spec_stats.max_accepted_force_error:
            self.spec_stats.max_accepted_force_error = worst

    # ------------------------------------------- incremental decomposition
    def begin(self, rank, own, t):
        """Accumulator = (own positions, intra-block acceleration)."""
        if self.force_method != "direct":
            raise NotImplementedError(
                "receive-driven decomposition requires the direct force method"
            )
        own_pos = own[:, :3]
        accel = accelerations_from_sources(
            own_pos,
            own_pos,
            self.masses[rank],
            G=self.system.G,
            softening=self.system.softening,
            exclude_self_pairs=True,
        )
        return (own_pos, accel)

    def absorb(self, rank, acc, k, block, t):
        """Add the acceleration contribution of block ``k``."""
        own_pos, accel = acc
        accel = accel + accelerations_from_sources(
            own_pos,
            block[:, :3],
            self.masses[k],
            G=self.system.G,
            softening=self.system.softening,
        )
        return (own_pos, accel)

    def finish(self, rank, acc, own, t):
        """Integrate one semi-implicit Euler step from the summed forces."""
        _, accel = acc
        new_vel = own[:, 3:] + accel * self.dt
        new_pos = own[:, :3] + new_vel * self.dt
        return np.hstack([new_pos, new_vel])

    def begin_ops(self, rank: int) -> float:
        n_own = len(self.partition.indices(rank))
        return PAIR_FLOPS * n_own * n_own

    def absorb_ops(self, rank: int, k: int) -> float:
        n_own = len(self.partition.indices(rank))
        return PAIR_FLOPS * n_own * len(self.partition.indices(k))

    def finish_ops(self, rank: int) -> float:
        return INTEGRATE_FLOPS * len(self.partition.indices(rank))

    # --------------------------------------------------------- cost model
    def compute_ops(self, rank: int) -> float:
        n_own = len(self.partition.indices(rank))
        if self.force_method == "barnes_hut":
            # Measured cost of the most recent traversal, plus an
            # O(N log N / p) share of the tree build.
            interactions = self._bh_last_interactions[rank]
            if interactions == 0:  # before the first compute: estimate
                interactions = int(n_own * 40 * max(np.log2(self.system.n), 1.0))
            build = 12.0 * self.system.n * max(np.log2(self.system.n), 1.0)
            return NODE_FLOPS * interactions + build + INTEGRATE_FLOPS * n_own
        return PAIR_FLOPS * n_own * self.system.n + INTEGRATE_FLOPS * n_own

    def speculate_ops(self, rank: int, k: int) -> float:
        return SPECULATE_FLOPS_PER_PARTICLE * len(self.partition.indices(k))

    def check_ops(self, rank: int, k: int) -> float:
        return CHECK_FLOPS_PER_PARTICLE * len(self.partition.indices(k))

    def block_nbytes(self, rank: int) -> int:
        # 6 doubles per particle + a small header, as PVM would pack it.
        return 48 * len(self.partition.indices(rank)) + 64

    # ---------------------------------------------------------- reporting
    def gather(self, blocks: Mapping[int, np.ndarray]) -> ParticleSystem:
        """Reassemble the global particle system from final blocks."""
        pos = np.empty_like(self.system.pos)
        vel = np.empty_like(self.system.vel)
        for rank, idx in enumerate(self.partition):
            block = blocks[rank]
            pos[idx] = block[:, :3]
            vel[idx] = block[:, 3:]
        return ParticleSystem(
            mass=self.system.mass.copy(),
            pos=pos,
            vel=vel,
            G=self.system.G,
            softening=self.system.softening,
        )

    def reference(self) -> ParticleSystem:
        """Serial ground truth after ``iterations`` timesteps."""
        return simulate(self.system, dt=self.dt, steps=self.iterations, method="euler")
