"""Dense Jacobi iteration for Ax = b as a synchronous iterative program.

The textbook all-to-all synchronous iterative algorithm (one of the
paper's motivating examples: "iterative techniques to solve linear and
non-linear equations").  Each processor owns a block of the solution
vector; every update reads the whole vector::

    x(t+1) = D⁻¹ (b − R x(t)),   A = D + R

For diagonally dominant A the iteration contracts, so speculation
errors shrink over time and a converging run needs ever fewer
corrections — a dynamic the N-body case study does not show.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.program import SyncIterativeProgram
from repro.core.speculators import LinearExtrapolation
from repro.partition import Partition, proportional_partition


def diagonally_dominant_system(
    n: int, seed: int = 0, dominance: float = 2.0
) -> tuple[np.ndarray, np.ndarray]:
    """Random (A, b) with rows diagonally dominant by ``dominance``×."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if dominance <= 1.0:
        raise ValueError("dominance must exceed 1 for guaranteed convergence")
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    np.fill_diagonal(a, 0.0)
    row_sums = np.abs(a).sum(axis=1)
    np.fill_diagonal(a, dominance * np.maximum(row_sums, 1.0))
    b = rng.normal(size=n)
    return a, b


class JacobiSolver(SyncIterativeProgram):
    """Jacobi iteration as a SyncIterativeProgram.

    Parameters
    ----------
    a / b:
        The system matrix (must have non-zero diagonal) and right-hand
        side.
    capacities:
        Per-processor capacities; rows allocated proportionally.
    iterations:
        Jacobi sweeps.
    threshold:
        Acceptance threshold on the max absolute error of a speculated
        block.
    x0:
        Initial guess (defaults to zeros).
    """

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        capacities: Sequence[float],
        iterations: int,
        threshold: float = 1e-6,
        x0: Optional[np.ndarray] = None,
        speculator=None,
        partition: Optional[Partition] = None,
    ) -> None:
        super().__init__(
            nprocs=len(capacities),
            iterations=iterations,
            threshold=threshold,
            speculator=speculator if speculator is not None else LinearExtrapolation(),
        )
        self.a = np.asarray(a, dtype=float)
        self.b = np.asarray(b, dtype=float)
        n = self.b.shape[0]
        if self.a.shape != (n, n):
            raise ValueError("A must be square and match b")
        diag = np.diag(self.a)
        if np.any(diag == 0):
            raise ValueError("A must have a non-zero diagonal")
        self.x0 = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
        if self.x0.shape != (n,):
            raise ValueError("x0 must match b")
        self.partition = (
            partition
            if partition is not None
            else proportional_partition(n, capacities)
        )
        if self.partition.n != n or self.partition.nprocs != self.nprocs:
            raise ValueError("partition inconsistent with system/capacities")
        self._diag = diag
        #: Per-rank row slices of A and cached diagonal blocks.
        self._rows = [self.a[idx, :] for idx in self.partition]

    # ----------------------------------------------------------- numerics
    def initial_block(self, rank: int) -> np.ndarray:
        return self.x0[self.partition.indices(rank)].copy()

    def _assemble(self, inputs: Mapping[int, np.ndarray]) -> np.ndarray:
        x = np.empty(self.partition.n)
        for rank, idx in enumerate(self.partition):
            x[idx] = inputs[rank]
        return x

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        x = self._assemble(inputs)
        idx = self.partition.indices(rank)
        rows = self._rows[rank]
        # x_i' = (b_i - sum_{j != i} A_ij x_j) / A_ii
        full = rows @ x
        off_diag = full - self._diag[idx] * x[idx]
        return (self.b[idx] - off_diag) / self._diag[idx]

    # --------------------------------------------------------- cost model
    def compute_ops(self, rank: int) -> float:
        # One dense row-sweep: 2 flops per matrix entry in the block rows.
        return 2.0 * len(self.partition.indices(rank)) * self.partition.n

    def speculate_ops(self, rank: int, k: int) -> float:
        return 4.0 * len(self.partition.indices(k))

    def check_ops(self, rank: int, k: int) -> float:
        return 2.0 * len(self.partition.indices(k))

    def block_nbytes(self, rank: int) -> int:
        return 8 * len(self.partition.indices(rank)) + 32

    # ---------------------------------------------------------- reporting
    def gather(self, blocks: Mapping[int, np.ndarray]) -> np.ndarray:
        """Reassemble the solution vector."""
        return self._assemble(blocks)

    def reference(self) -> np.ndarray:
        """Serial Jacobi ground truth after ``iterations`` sweeps."""
        x = self.x0.copy()
        r = self.a - np.diag(self._diag)
        for _ in range(self.iterations):
            x = (self.b - r @ x) / self._diag
        return x

    def residual(self, x: np.ndarray) -> float:
        """‖Ax − b‖₂ (convergence diagnostic)."""
        return float(np.linalg.norm(self.a @ x - self.b))
