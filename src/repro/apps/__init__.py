"""Synchronous iterative applications on the speculation framework.

* :class:`NBodyProgram` — the paper's Section-5 case study: O(N²)
  gravitational N-body with Eq. 10 speculation, Eq. 11 checking and
  exact incremental force correction.
* :class:`HeatEquation1D` / :class:`HeatEquation2D` — strip-decomposed
  Jacobi iteration for the 1-D / 2-D heat equation (neighbor-coupled
  topology; the 2-D variant exchanges whole ghost rows).
* :class:`JacobiSolver` — dense Jacobi iteration for Ax = b
  (all-to-all topology, converging dynamics).
* :class:`KuramotoProgram` — globally coupled phase oscillators
  (slowly drifting phases: a favourable speculation target).
* :class:`WaveEquation1D` — leapfrog wave equation: traveling waves
  keep ghost values changing smoothly (the extrapolation showcase).
* :class:`CoupledMapLattice` — chaotic logistic lattice: the negative
  control where history-based speculation *must* fail.
"""

from repro.apps.cml import CoupledMapLattice
from repro.apps.heat import HeatEquation1D
from repro.apps.heat2d import HeatEquation2D
from repro.apps.jacobi import JacobiSolver
from repro.apps.kuramoto import KuramotoProgram
from repro.apps.nbody_app import NBodyProgram
from repro.apps.wave import WaveEquation1D

__all__ = [
    "CoupledMapLattice",
    "HeatEquation1D",
    "HeatEquation2D",
    "JacobiSolver",
    "KuramotoProgram",
    "NBodyProgram",
    "WaveEquation1D",
]
