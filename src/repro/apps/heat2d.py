"""Row-strip Jacobi iteration for the 2-D heat equation.

The 2-D analogue of :class:`~repro.apps.heat.HeatEquation1D`: the
grid's rows are divided into contiguous strips, one per processor;
each update reads the boundary *rows* of the two adjacent strips.
Ghost regions are whole rows, so speculation extrapolates vectors
rather than scalars — a more realistic PDE workload with a much larger
compute-to-message ratio.

Update (5-point stencil, Dirichlet boundary ``boundary`` on all
sides)::

    u[i,j] += r * (u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1] - 4 u[i,j])

Stable for r <= 1/4.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.program import SyncIterativeProgram
from repro.core.speculators import LinearExtrapolation
from repro.partition import Partition, proportional_partition

#: Flops per grid cell per Jacobi update in the cost model.
CELL_FLOPS = 10.0


class HeatEquation2D(SyncIterativeProgram):
    """2-D heat-equation Jacobi solver as a SyncIterativeProgram.

    Parameters
    ----------
    initial:
        (rows, cols) initial temperature field.
    capacities:
        Per-processor capacities; grid *rows* allocated proportionally.
    iterations:
        Jacobi sweeps.
    r:
        Diffusion number (in (0, 0.25] for stability).
    boundary:
        Fixed Dirichlet temperature on all four sides.
    threshold:
        Acceptance threshold on the max absolute error over the ghost
        row actually consumed.
    """

    def __init__(
        self,
        initial: np.ndarray,
        capacities: Sequence[float],
        iterations: int,
        r: float = 0.2,
        boundary: float = 0.0,
        threshold: float = 1e-3,
        speculator=None,
        partition: Optional[Partition] = None,
    ) -> None:
        super().__init__(
            nprocs=len(capacities),
            iterations=iterations,
            threshold=threshold,
            speculator=speculator if speculator is not None else LinearExtrapolation(),
        )
        field = np.asarray(initial, dtype=float)
        if field.ndim != 2:
            raise ValueError("initial field must be 2-D")
        if field.shape[0] < len(capacities):
            raise ValueError("need at least one grid row per processor")
        if not 0 < r <= 0.25:
            raise ValueError("r must be in (0, 0.25] for stability")
        self.field0 = field
        self.rows, self.cols = field.shape
        self.r = r
        self.boundary = float(boundary)
        self.partition = (
            partition
            if partition is not None
            else proportional_partition(self.rows, capacities)
        )
        if self.partition.n != self.rows or self.partition.nprocs != self.nprocs:
            raise ValueError("partition inconsistent with grid/capacities")
        for idx in self.partition:
            if idx.size and not np.array_equal(idx, np.arange(idx[0], idx[-1] + 1)):
                raise ValueError("HeatEquation2D requires contiguous row strips")

    # ----------------------------------------------------------- topology
    def needed(self, rank: int) -> frozenset[int]:
        """Only the row strips above and below."""
        deps = set()
        if rank > 0 and len(self.partition.indices(rank - 1)):
            deps.add(rank - 1)
        if rank < self.nprocs - 1 and len(self.partition.indices(rank + 1)):
            deps.add(rank + 1)
        return frozenset(deps)

    # ----------------------------------------------------------- numerics
    def initial_block(self, rank: int) -> np.ndarray:
        return self.field0[self.partition.indices(rank), :].copy()

    def _ghost_rows(self, rank: int, inputs: Mapping[int, np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """(top, bottom) ghost rows for the rank's strip."""
        boundary_row = np.full(self.cols, self.boundary)
        if rank > 0:
            above = inputs[rank - 1]
            top = above[-1, :] if above.size else boundary_row
        else:
            top = boundary_row
        if rank < self.nprocs - 1:
            below = inputs[rank + 1]
            bottom = below[0, :] if below.size else boundary_row
        else:
            bottom = boundary_row
        return top, bottom

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        u = inputs[rank]
        if u.size == 0:
            return u.copy()
        top, bottom = self._ghost_rows(rank, inputs)
        padded = np.empty((u.shape[0] + 2, u.shape[1] + 2))
        padded[1:-1, 1:-1] = u
        padded[0, 1:-1] = top
        padded[-1, 1:-1] = bottom
        padded[:, 0] = self.boundary
        padded[:, -1] = self.boundary
        lap = (
            padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
            - 4.0 * padded[1:-1, 1:-1]
        )
        return u + self.r * lap

    def _ghost_row_index(self, rank: int, k: int) -> int:
        if k == rank - 1:
            return -1
        if k == rank + 1:
            return 0
        raise ValueError(f"rank {rank} does not depend on {k}")

    def speculate(self, rank, k, times, values, target):
        """Extrapolate only the consumed ghost row; hold the rest."""
        base = np.array(values[-1], copy=True)
        if base.size == 0:
            return base
        idx = self._ghost_row_index(rank, k)
        row_history = [np.asarray(v)[idx, :] for v in values]
        base[idx, :] = self.speculator.extrapolate(times, row_history, target)
        return base

    def check(self, rank, k, speculated, actual, own):
        """Max absolute error over the consumed ghost row."""
        if np.asarray(actual).size == 0:
            return 0.0
        idx = self._ghost_row_index(rank, k)
        return float(np.max(np.abs(speculated[idx, :] - actual[idx, :])))

    def correct(self, rank, next_block, inputs, k, speculated, actual, t):
        """Exact incremental fix of the strip row adjacent to ``k``."""
        if next_block.size == 0:
            return next_block, 0.0
        idx = self._ghost_row_index(rank, k)
        fixed = next_block.copy()
        wrong_row = speculated[idx, :]
        right_row = actual[idx, :]
        local_row = 0 if k == rank - 1 else -1
        fixed[local_row, :] += self.r * (right_row - wrong_row)
        return fixed, 3.0 * self.cols

    # --------------------------------------------------------- cost model
    def compute_ops(self, rank: int) -> float:
        return CELL_FLOPS * len(self.partition.indices(rank)) * self.cols

    def speculate_ops(self, rank: int, k: int) -> float:
        return 4.0 * self.cols

    def check_ops(self, rank: int, k: int) -> float:
        return 2.0 * self.cols

    def block_nbytes(self, rank: int) -> int:
        return 8 * len(self.partition.indices(rank)) * self.cols + 64

    # ---------------------------------------------------------- reporting
    def gather(self, blocks: Mapping[int, np.ndarray]) -> np.ndarray:
        """Reassemble the full grid."""
        out = np.empty_like(self.field0)
        for rank, idx in enumerate(self.partition):
            out[idx, :] = blocks[rank]
        return out

    def reference(self) -> np.ndarray:
        """Serial ground truth after ``iterations`` sweeps."""
        u = self.field0.copy()
        for _ in range(self.iterations):
            padded = np.full((self.rows + 2, self.cols + 2), self.boundary)
            padded[1:-1, 1:-1] = u
            lap = (
                padded[:-2, 1:-1]
                + padded[2:, 1:-1]
                + padded[1:-1, :-2]
                + padded[1:-1, 2:]
                - 4.0 * padded[1:-1, 1:-1]
            )
            u = u + self.r * lap
        return u
