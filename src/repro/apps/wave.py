"""Strip-decomposed leapfrog solver for the 1-D wave equation.

A hyperbolic counterpart to the heat apps: solutions are *traveling
waves*, so a ghost cell's value changes smoothly and nearly linearly in
time — the ideal regime for the paper's extrapolation-based
speculation (heat problems decay toward stationarity; wave problems
keep moving, so speculation keeps earning its keep).

Discretisation (fixed ends, courant number c = v·Δt/Δx ≤ 1)::

    u(t+1, i) = 2 u(t, i) − u(t−1, i) + c² (u(t, i−1) − 2 u(t, i) + u(t, i+1))

The block state carries the two time levels the stencil needs:
``block[0] = u(t)``, ``block[1] = u(t−1)``.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.program import SyncIterativeProgram
from repro.core.speculators import LinearExtrapolation
from repro.partition import Partition, proportional_partition

#: Flops per cell per leapfrog update in the cost model.
CELL_FLOPS = 8.0


class WaveEquation1D(SyncIterativeProgram):
    """1-D wave equation as a SyncIterativeProgram.

    Parameters
    ----------
    initial:
        (n,) initial displacement u(0); the string starts at rest
        (u(-1) = u(0)).
    capacities:
        Per-processor capacities; cells allocated proportionally.
    iterations:
        Timesteps.
    courant:
        c = v·Δt/Δx; stable for 0 < c <= 1.
    threshold:
        Acceptance threshold on the absolute error of the consumed
        ghost displacement.
    """

    def __init__(
        self,
        initial: np.ndarray,
        capacities: Sequence[float],
        iterations: int,
        courant: float = 0.9,
        threshold: float = 1e-3,
        speculator=None,
        partition: Optional[Partition] = None,
    ) -> None:
        super().__init__(
            nprocs=len(capacities),
            iterations=iterations,
            threshold=threshold,
            speculator=speculator if speculator is not None else LinearExtrapolation(),
        )
        field = np.asarray(initial, dtype=float)
        if field.ndim != 1 or field.size < len(capacities):
            raise ValueError("initial displacement must be 1-D with >= nprocs cells")
        if not 0 < courant <= 1:
            raise ValueError("courant must be in (0, 1] for stability")
        self.u0 = field
        self.c2 = courant * courant
        self.partition = (
            partition
            if partition is not None
            else proportional_partition(field.size, capacities)
        )
        if self.partition.n != field.size or self.partition.nprocs != self.nprocs:
            raise ValueError("partition inconsistent with field/capacities")
        for idx in self.partition:
            if idx.size and not np.array_equal(idx, np.arange(idx[0], idx[-1] + 1)):
                raise ValueError("WaveEquation1D requires contiguous strips")

    # ----------------------------------------------------------- topology
    def needed(self, rank: int) -> frozenset[int]:
        """Adjacent strips only."""
        deps = set()
        if rank > 0 and len(self.partition.indices(rank - 1)):
            deps.add(rank - 1)
        if rank < self.nprocs - 1 and len(self.partition.indices(rank + 1)):
            deps.add(rank + 1)
        return frozenset(deps)

    # ----------------------------------------------------------- numerics
    def initial_block(self, rank: int) -> np.ndarray:
        u = self.u0[self.partition.indices(rank)]
        return np.vstack([u, u])  # starts at rest: u(-1) = u(0)

    def _ghosts(self, rank: int, inputs: Mapping[int, np.ndarray]) -> tuple[float, float]:
        left = right = 0.0  # fixed ends
        if rank > 0:
            block = inputs[rank - 1]
            if block.shape[1]:
                left = float(block[0, -1])
        if rank < self.nprocs - 1:
            block = inputs[rank + 1]
            if block.shape[1]:
                right = float(block[0, 0])
        return left, right

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        block = inputs[rank]
        u_now, u_prev = block[0], block[1]
        if u_now.size == 0:
            return block.copy()
        left, right = self._ghosts(rank, inputs)
        padded = np.concatenate([[left], u_now, [right]])
        lap = padded[:-2] - 2.0 * padded[1:-1] + padded[2:]
        u_next = 2.0 * u_now - u_prev + self.c2 * lap
        return np.vstack([u_next, u_now])

    def _ghost_index(self, rank: int, k: int) -> int:
        if k == rank - 1:
            return -1
        if k == rank + 1:
            return 0
        raise ValueError(f"rank {rank} does not depend on {k}")

    def speculate(self, rank, k, times, values, target):
        """Extrapolate only the consumed ghost displacement."""
        base = np.array(values[-1], copy=True)
        if base.shape[1] == 0:
            return base
        idx = self._ghost_index(rank, k)
        history = [np.atleast_1d(np.asarray(v)[0, idx]) for v in values]
        base[0, idx] = self.speculator.extrapolate(times, history, target)[0]
        return base

    def check(self, rank, k, speculated, actual, own):
        """Absolute error on the consumed ghost displacement."""
        if np.asarray(actual).shape[1] == 0:
            return 0.0
        idx = self._ghost_index(rank, k)
        return abs(float(speculated[0, idx]) - float(actual[0, idx]))

    def correct(self, rank, next_block, inputs, k, speculated, actual, t):
        """Exact incremental fix: the ghost enters one edge cell linearly."""
        if next_block.shape[1] == 0:
            return next_block, 0.0
        idx = self._ghost_index(rank, k)
        wrong = float(speculated[0, idx])
        right_val = float(actual[0, idx])
        fixed = next_block.copy()
        local = 0 if k == rank - 1 else -1
        fixed[0, local] += self.c2 * (right_val - wrong)
        return fixed, 4.0

    # --------------------------------------------------------- cost model
    def compute_ops(self, rank: int) -> float:
        return CELL_FLOPS * len(self.partition.indices(rank))

    def speculate_ops(self, rank: int, k: int) -> float:
        return 8.0

    def check_ops(self, rank: int, k: int) -> float:
        return 4.0

    def block_nbytes(self, rank: int) -> int:
        return 16 * len(self.partition.indices(rank)) + 32

    # ---------------------------------------------------------- reporting
    def gather(self, blocks: Mapping[int, np.ndarray]) -> np.ndarray:
        """Reassemble the displacement field u(T)."""
        out = np.empty_like(self.u0)
        for rank, idx in enumerate(self.partition):
            out[idx] = blocks[rank][0]
        return out

    def reference(self) -> np.ndarray:
        """Serial ground truth after ``iterations`` steps."""
        u_now = self.u0.copy()
        u_prev = self.u0.copy()
        for _ in range(self.iterations):
            padded = np.concatenate([[0.0], u_now, [0.0]])
            lap = padded[:-2] - 2.0 * padded[1:-1] + padded[2:]
            u_next = 2.0 * u_now - u_prev + self.c2 * lap
            u_prev, u_now = u_now, u_next
        return u_now

    def energy(self, blocks: Mapping[int, np.ndarray]) -> float:
        """Discrete energy ~ Σ (du/dt)² + c² (du/dx)² (approximately
        conserved by the leapfrog scheme)."""
        u_now = np.empty_like(self.u0)
        u_prev = np.empty_like(self.u0)
        for rank, idx in enumerate(self.partition):
            u_now[idx] = blocks[rank][0]
            u_prev[idx] = blocks[rank][1]
        kinetic = float(np.sum((u_now - u_prev) ** 2))
        grad = np.diff(np.concatenate([[0.0], u_now, [0.0]]))
        return kinetic + self.c2 * float(np.sum(grad**2))
