"""Strip-decomposed Jacobi iteration for the 1-D heat equation.

A classic synchronous iterative algorithm with *neighbor* coupling:
each processor owns a contiguous strip of grid cells and only reads
the strips adjacent to it, exercising the driver's dependency-topology
support (``needed``).

Update rule (explicit Euler on u_t = α u_xx, Dirichlet boundaries)::

    u_i(t+1) = u_i(t) + r (u_{i-1}(t) − 2 u_i(t) + u_{i+1}(t)),
    r = α Δt / Δx² (stable for r <= 1/2)

Speculation of a neighbor strip extrapolates its cells from history;
only the strip's edge cell actually influences the local update, and
the incremental correction uses exactly that structure.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.program import SyncIterativeProgram
from repro.core.speculators import LinearExtrapolation
from repro.partition import Partition, proportional_partition

#: Flops per cell per Jacobi update in the cost model.
CELL_FLOPS = 6.0


class HeatEquation1D(SyncIterativeProgram):
    """1-D heat-equation Jacobi solver as a SyncIterativeProgram.

    Parameters
    ----------
    initial:
        (n,) initial temperature field.
    capacities:
        Per-processor capacities; cells allocated proportionally.
    iterations:
        Jacobi sweeps to run.
    r:
        Diffusion number α Δt / Δx² (must be in (0, 0.5] for
        stability).
    boundary:
        (left, right) fixed Dirichlet boundary temperatures.
    threshold:
        Acceptance threshold on the absolute speculated-cell error.
    """

    def __init__(
        self,
        initial: np.ndarray,
        capacities: Sequence[float],
        iterations: int,
        r: float = 0.25,
        boundary: tuple[float, float] = (0.0, 0.0),
        threshold: float = 1e-3,
        speculator=None,
        partition: Optional[Partition] = None,
    ) -> None:
        super().__init__(
            nprocs=len(capacities),
            iterations=iterations,
            threshold=threshold,
            speculator=speculator if speculator is not None else LinearExtrapolation(),
        )
        field = np.asarray(initial, dtype=float)
        if field.ndim != 1 or field.size < len(capacities):
            raise ValueError("initial field must be 1-D with >= nprocs cells")
        if not 0 < r <= 0.5:
            raise ValueError("r must be in (0, 0.5] for stability")
        self.field0 = field
        self.r = r
        self.boundary = (float(boundary[0]), float(boundary[1]))
        self.partition = (
            partition
            if partition is not None
            else proportional_partition(field.size, capacities)
        )
        if self.partition.n != field.size or self.partition.nprocs != self.nprocs:
            raise ValueError("partition inconsistent with field/capacities")
        # Contiguity check: strips must be consecutive index ranges.
        for idx in self.partition:
            if idx.size and not np.array_equal(idx, np.arange(idx[0], idx[-1] + 1)):
                raise ValueError("HeatEquation1D requires contiguous strips")

    # ----------------------------------------------------------- topology
    def needed(self, rank: int) -> frozenset[int]:
        """Only the strips physically adjacent to ``rank``'s strip."""
        deps = set()
        if rank > 0 and len(self.partition.indices(rank - 1)):
            deps.add(rank - 1)
        if rank < self.nprocs - 1 and len(self.partition.indices(rank + 1)):
            deps.add(rank + 1)
        # Skip empty own strips' bookkeeping gracefully.
        return frozenset(d for d in deps if d != rank)

    # ----------------------------------------------------------- numerics
    def initial_block(self, rank: int) -> np.ndarray:
        return self.field0[self.partition.indices(rank)].copy()

    def _edges(self, rank: int, inputs: Mapping[int, np.ndarray]) -> tuple[float, float]:
        """Ghost values to the left and right of the rank's strip."""
        if rank > 0:
            left_block = inputs[rank - 1]
            left = float(left_block[-1]) if left_block.size else self.boundary[0]
        else:
            left = self.boundary[0]
        if rank < self.nprocs - 1:
            right_block = inputs[rank + 1]
            right = float(right_block[0]) if right_block.size else self.boundary[1]
        else:
            right = self.boundary[1]
        return left, right

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        u = inputs[rank]
        if u.size == 0:
            return u.copy()
        left, right = self._edges(rank, inputs)
        padded = np.concatenate([[left], u, [right]])
        lap = padded[:-2] - 2.0 * padded[1:-1] + padded[2:]
        return u + self.r * lap

    def _ghost_index(self, rank: int, k: int) -> int:
        """Index within k's strip that ``rank`` actually reads."""
        if k == rank - 1:
            return -1  # left neighbour's last cell
        if k == rank + 1:
            return 0  # right neighbour's first cell
        raise ValueError(f"rank {rank} does not depend on {k}")

    def speculate(self, rank, k, times, values, target):
        """Extrapolate only the ghost cell; hold the rest of the strip.

        The local update reads exactly one cell of each neighbour
        strip, so speculating the full strip would cost nearly as much
        as computing it — this is the strip-decomposition analogue of
        the paper's "speculation must be cheap relative to
        computation" requirement.
        """
        base = np.array(values[-1], copy=True)
        if base.size == 0:
            return base
        idx = self._ghost_index(rank, k)
        edge_history = [np.atleast_1d(np.asarray(v)[idx]) for v in values]
        base[idx] = self.speculator.extrapolate(times, edge_history, target)[0]
        return base

    def check(self, rank, k, speculated, actual, own):
        """Absolute error on the single ghost cell that was consumed."""
        if np.asarray(actual).size == 0:
            return 0.0
        idx = self._ghost_index(rank, k)
        return abs(float(speculated[idx]) - float(actual[idx]))

    def correct(self, rank, next_block, inputs, k, speculated, actual, t):
        """Exact incremental fix: only the edge cell reads the neighbor.

        A wrong speculated neighbor strip affects the local update only
        through one ghost value, so the repair touches one cell.
        """
        if next_block.size == 0:
            return next_block, 0.0
        fixed = next_block.copy()
        if k == rank - 1:
            wrong = float(speculated[-1]) if speculated.size else self.boundary[0]
            right_val = float(actual[-1]) if actual.size else self.boundary[0]
            fixed[0] += self.r * (right_val - wrong)
        elif k == rank + 1:
            wrong = float(speculated[0]) if speculated.size else self.boundary[1]
            right_val = float(actual[0]) if actual.size else self.boundary[1]
            fixed[-1] += self.r * (right_val - wrong)
        else:  # pragma: no cover - needed() prevents other ranks
            raise ValueError(f"rank {rank} does not depend on {k}")
        return fixed, 4.0

    # --------------------------------------------------------- cost model
    def compute_ops(self, rank: int) -> float:
        return CELL_FLOPS * len(self.partition.indices(rank))

    def speculate_ops(self, rank: int, k: int) -> float:
        # Only the ghost cell is extrapolated (see :meth:`speculate`).
        return 8.0

    def check_ops(self, rank: int, k: int) -> float:
        return 4.0

    def block_nbytes(self, rank: int) -> int:
        return 8 * len(self.partition.indices(rank)) + 32

    # ---------------------------------------------------------- reporting
    def gather(self, blocks: Mapping[int, np.ndarray]) -> np.ndarray:
        """Reassemble the full temperature field."""
        out = np.empty_like(self.field0)
        for rank, idx in enumerate(self.partition):
            out[idx] = blocks[rank]
        return out

    def reference(self) -> np.ndarray:
        """Serial ground truth after ``iterations`` sweeps."""
        u = self.field0.copy()
        for _ in range(self.iterations):
            padded = np.concatenate([[self.boundary[0]], u, [self.boundary[1]]])
            u = u + self.r * (padded[:-2] - 2.0 * padded[1:-1] + padded[2:])
        return u
