"""Coupled map lattice: the *negative control* for speculation.

A diffusively coupled lattice of chaotic logistic maps::

    x_i(t+1) = (1−ε) f(x_i(t)) + ε/2 (f(x_{i−1}(t)) + f(x_{i+1}(t))),
    f(x) = r x (1 − x)

At r ≳ 3.57 the dynamics are chaotic: trajectories decorrelate within
a few iterations, so *no* history-based extrapolation can track them.
The paper's criterion — "speculation is most useful in applications
where the variables generally follow a relatively slow changing trend"
— predicts speculation should fail here, and this program exists to
verify that the framework degrades gracefully (rejections near 100 %,
performance falling back to roughly the blocking algorithm plus
overhead) rather than silently producing wrong answers.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.program import SyncIterativeProgram
from repro.core.speculators import ZeroOrderHold
from repro.partition import Partition, proportional_partition

#: Flops per site per update in the cost model.
SITE_FLOPS = 8.0


class CoupledMapLattice(SyncIterativeProgram):
    """Chaotic coupled map lattice as a SyncIterativeProgram.

    Parameters
    ----------
    initial:
        (n,) initial states in (0, 1).
    capacities:
        Per-processor capacities; sites allocated proportionally.
    iterations:
        Map iterations.
    r:
        Logistic parameter (3.57..4 = chaotic; < 3 = stable fixed
        point, where speculation suddenly works again).
    coupling:
        Diffusive coupling ε in [0, 1].
    threshold:
        Acceptance threshold on the consumed ghost-site error.
    """

    def __init__(
        self,
        initial: np.ndarray,
        capacities: Sequence[float],
        iterations: int,
        r: float = 3.9,
        coupling: float = 0.3,
        threshold: float = 1e-3,
        speculator=None,
        partition: Optional[Partition] = None,
    ) -> None:
        super().__init__(
            nprocs=len(capacities),
            iterations=iterations,
            threshold=threshold,
            speculator=speculator if speculator is not None else ZeroOrderHold(),
        )
        field = np.asarray(initial, dtype=float)
        if field.ndim != 1 or field.size < len(capacities):
            raise ValueError("initial must be 1-D with >= nprocs sites")
        if np.any((field <= 0) | (field >= 1)):
            raise ValueError("initial states must lie in (0, 1)")
        if not 0 < r <= 4:
            raise ValueError("r must be in (0, 4]")
        if not 0 <= coupling <= 1:
            raise ValueError("coupling must be in [0, 1]")
        self.x0 = field
        self.r = r
        self.coupling = coupling
        self.partition = (
            partition
            if partition is not None
            else proportional_partition(field.size, capacities)
        )
        if self.partition.n != field.size or self.partition.nprocs != self.nprocs:
            raise ValueError("partition inconsistent with field/capacities")
        for idx in self.partition:
            if idx.size and not np.array_equal(idx, np.arange(idx[0], idx[-1] + 1)):
                raise ValueError("CoupledMapLattice requires contiguous strips")

    def _f(self, x: np.ndarray) -> np.ndarray:
        return self.r * x * (1.0 - x)

    # ----------------------------------------------------------- topology
    def needed(self, rank: int) -> frozenset[int]:
        """Adjacent strips (periodic boundary closes rank 0 to p-1)."""
        p = self.nprocs
        if p == 1:
            return frozenset()
        return frozenset({(rank - 1) % p, (rank + 1) % p} - {rank})

    # ----------------------------------------------------------- numerics
    def initial_block(self, rank: int) -> np.ndarray:
        return self.x0[self.partition.indices(rank)].copy()

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        x = inputs[rank]
        if x.size == 0:
            return x.copy()
        p = self.nprocs
        left_block = inputs[(rank - 1) % p] if p > 1 else x
        right_block = inputs[(rank + 1) % p] if p > 1 else x
        left = float(left_block[-1]) if left_block.size else float(x[-1])
        right = float(right_block[0]) if right_block.size else float(x[0])
        fx = self._f(x)
        f_left = self._f(np.concatenate([[left], x[:-1]]))
        f_right = self._f(np.concatenate([x[1:], [right]]))
        return (1.0 - self.coupling) * fx + 0.5 * self.coupling * (f_left + f_right)

    def check(self, rank, k, speculated, actual, own):
        """Max absolute error over the consumed ghost sites.

        With p = 2 and periodic coupling, the same neighbour supplies
        *both* ghosts (its first and last site), so both are checked.
        """
        if np.asarray(actual).size == 0:
            return 0.0
        p = self.nprocs
        consumed = []
        if k == (rank - 1) % p:
            consumed.append(-1)
        if k == (rank + 1) % p:
            consumed.append(0)
        return max(
            abs(float(speculated[i]) - float(actual[i])) for i in consumed
        )

    # --------------------------------------------------------- cost model
    def compute_ops(self, rank: int) -> float:
        return SITE_FLOPS * len(self.partition.indices(rank))

    def speculate_ops(self, rank: int, k: int) -> float:
        return 4.0

    def check_ops(self, rank: int, k: int) -> float:
        return 2.0

    def block_nbytes(self, rank: int) -> int:
        return 8 * len(self.partition.indices(rank)) + 32

    # ---------------------------------------------------------- reporting
    def gather(self, blocks: Mapping[int, np.ndarray]) -> np.ndarray:
        """Reassemble the lattice state."""
        out = np.empty_like(self.x0)
        for rank, idx in enumerate(self.partition):
            out[idx] = blocks[rank]
        return out

    def reference(self) -> np.ndarray:
        """Serial ground truth after ``iterations`` steps."""
        x = self.x0.copy()
        for _ in range(self.iterations):
            fx = self._f(x)
            f_left = np.roll(fx, 1)
            f_right = np.roll(fx, -1)
            x = (1.0 - self.coupling) * fx + 0.5 * self.coupling * (f_left + f_right)
        return x
