"""Globally coupled Kuramoto phase oscillators.

Each oscillator's phase advances at its natural frequency plus a
mean-field coupling term::

    θ_i(t+1) = θ_i(t) + Δt [ ω_i + K·R(t)·sin(ψ(t) − θ_i(t)) ]

where R e^{iψ} = (1/N) Σ e^{iθ_j} is the order parameter.  Phases
drift almost linearly (rate ≈ ω_i), making linear extrapolation an
excellent speculation function — the "slowly changing trend" the
paper identifies as the sweet spot for speculative computation.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.program import SyncIterativeProgram
from repro.core.speculators import LinearExtrapolation
from repro.partition import Partition, proportional_partition


class KuramotoProgram(SyncIterativeProgram):
    """Kuramoto dynamics as a SyncIterativeProgram.

    Parameters
    ----------
    omega:
        (n,) natural frequencies.
    theta0:
        (n,) initial phases.
    capacities:
        Per-processor capacities; oscillators allocated proportionally.
    iterations:
        Euler steps.
    coupling:
        Coupling strength K.
    dt:
        Step size.
    threshold:
        Acceptance threshold on the max absolute phase error of a
        speculated block (radians).
    """

    def __init__(
        self,
        omega: np.ndarray,
        theta0: np.ndarray,
        capacities: Sequence[float],
        iterations: int,
        coupling: float = 1.0,
        dt: float = 0.01,
        threshold: float = 1e-3,
        speculator=None,
        partition: Optional[Partition] = None,
    ) -> None:
        super().__init__(
            nprocs=len(capacities),
            iterations=iterations,
            threshold=threshold,
            speculator=speculator if speculator is not None else LinearExtrapolation(),
        )
        self.omega = np.asarray(omega, dtype=float)
        theta = np.asarray(theta0, dtype=float)
        if self.omega.ndim != 1 or theta.shape != self.omega.shape:
            raise ValueError("omega and theta0 must be matching 1-D arrays")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.theta0 = theta
        self.coupling = coupling
        self.dt = dt
        n = self.omega.shape[0]
        self.partition = (
            partition
            if partition is not None
            else proportional_partition(n, capacities)
        )
        if self.partition.n != n or self.partition.nprocs != self.nprocs:
            raise ValueError("partition inconsistent with oscillators/capacities")

    @classmethod
    def random(
        cls,
        n: int,
        capacities: Sequence[float],
        iterations: int,
        seed: int = 0,
        **kwargs,
    ) -> "KuramotoProgram":
        """Random frequencies ~ N(1, 0.1) and phases ~ U[0, 2π)."""
        rng = np.random.default_rng(seed)
        omega = rng.normal(1.0, 0.1, size=n)
        theta0 = rng.uniform(0.0, 2 * np.pi, size=n)
        return cls(omega, theta0, capacities, iterations, **kwargs)

    # ----------------------------------------------------------- numerics
    def initial_block(self, rank: int) -> np.ndarray:
        return self.theta0[self.partition.indices(rank)].copy()

    def _order_parameter(self, inputs: Mapping[int, np.ndarray]) -> complex:
        total = 0.0 + 0.0j
        for rank in range(self.nprocs):
            total += np.exp(1j * inputs[rank]).sum()
        return total / self.partition.n

    def compute(self, rank: int, inputs: Mapping[int, np.ndarray], t: int) -> np.ndarray:
        theta = inputs[rank]
        z = self._order_parameter(inputs)
        r, psi = np.abs(z), np.angle(z)
        idx = self.partition.indices(rank)
        drift = self.omega[idx] + self.coupling * r * np.sin(psi - theta)
        return theta + self.dt * drift

    # --------------------------------------------------------- cost model
    def compute_ops(self, rank: int) -> float:
        # Order parameter: ~8 flops per oscillator in the system, plus
        # ~12 flops per owned oscillator for the update.
        return 8.0 * self.partition.n + 12.0 * len(self.partition.indices(rank))

    def speculate_ops(self, rank: int, k: int) -> float:
        return 4.0 * len(self.partition.indices(k))

    def check_ops(self, rank: int, k: int) -> float:
        return 2.0 * len(self.partition.indices(k))

    def block_nbytes(self, rank: int) -> int:
        return 8 * len(self.partition.indices(rank)) + 32

    # ---------------------------------------------------------- reporting
    def gather(self, blocks: Mapping[int, np.ndarray]) -> np.ndarray:
        """Reassemble the global phase vector."""
        theta = np.empty(self.partition.n)
        for rank, idx in enumerate(self.partition):
            theta[idx] = blocks[rank]
        return theta

    def reference(self) -> np.ndarray:
        """Serial ground truth after ``iterations`` steps."""
        theta = self.theta0.copy()
        for _ in range(self.iterations):
            z = np.exp(1j * theta).mean()
            r, psi = np.abs(z), np.angle(z)
            theta = theta + self.dt * (self.omega + self.coupling * r * np.sin(psi - theta))
        return theta

    def synchrony(self, theta: np.ndarray) -> float:
        """Order-parameter magnitude R ∈ [0, 1] of a phase vector."""
        return float(np.abs(np.exp(1j * theta).mean()))
