"""Cluster: processors + network + program launching."""

from __future__ import annotations

from typing import Callable, Generator, Optional, Sequence

from repro.des import AllOf, Environment, Process
from repro.netsim.network import DelayNetwork, Network
from repro.trace.events import EventLog
from repro.vm.load import BackgroundLoad
from repro.vm.processor import VirtualProcessor
from repro.vm.specs import ProcessorSpec


ProgramFactory = Callable[[VirtualProcessor], Generator]


class Cluster:
    """A set of virtual processors sharing one network.

    Parameters
    ----------
    specs:
        Per-processor capacity specs, fastest first (paper convention).
    network_factory:
        Callable ``env -> Network``; defaults to a zero-latency
        :class:`~repro.netsim.network.DelayNetwork`.
    loads:
        Optional per-processor background-load models (same length as
        ``specs``; None entries = unloaded).
    env:
        Supply an environment to share it with other simulation
        components; otherwise a fresh one is created.
    event_log:
        Optional :class:`~repro.trace.events.EventLog`; when present,
        every processor send/receive (and the drivers'
        speculate/verify/correct steps) is recorded into it, ready for
        ``repro analyze --trace`` replay.  None (default) = zero
        overhead.

    Examples
    --------
    >>> from repro.vm import Cluster, uniform_specs
    >>> cluster = Cluster(uniform_specs(2, capacity=1e6))
    >>> def program(proc):
    ...     yield from proc.compute(2e6)
    ...     return proc.env.now
    >>> results = cluster.run(program)
    >>> results[0]
    2.0
    """

    def __init__(
        self,
        specs: Sequence[ProcessorSpec],
        network_factory: Optional[Callable[[Environment], Network]] = None,
        loads: Optional[Sequence[Optional[BackgroundLoad]]] = None,
        env: Optional[Environment] = None,
        event_log: Optional[EventLog] = None,
    ) -> None:
        if not specs:
            raise ValueError("cluster needs at least one processor")
        if loads is not None and len(loads) != len(specs):
            raise ValueError("loads must match specs length")
        self.env = env if env is not None else Environment()
        #: Protocol trace-event recorder (None = recording off).
        self.event_log: Optional[EventLog] = event_log
        self.network: Network = (
            network_factory(self.env) if network_factory else DelayNetwork(self.env)
        )
        self.specs = list(specs)
        self.processors: list[VirtualProcessor] = [
            VirtualProcessor(
                self,
                rank=i,
                spec=spec,
                load=loads[i] if loads is not None else None,
            )
            for i, spec in enumerate(specs)
        ]

    @property
    def size(self) -> int:
        """Number of processors."""
        return len(self.processors)

    def processor(self, rank: int) -> VirtualProcessor:
        """The processor at ``rank``."""
        return self.processors[rank]

    def capacities(self) -> list[float]:
        """Per-processor capacities M_i."""
        return [s.capacity for s in self.specs]

    def launch(self, program: ProgramFactory) -> list[Process]:
        """Start ``program(proc)`` on every processor (without running)."""
        return [
            self.env.process(program(proc), name=f"rank{proc.rank}")
            for proc in self.processors
        ]

    def run(self, program: ProgramFactory, until: Optional[float] = None) -> list:
        """Launch ``program`` on all ranks, run to completion, return values.

        Parameters
        ----------
        program:
            ``proc -> generator``; its return value is collected.
        until:
            Optional virtual-time cap; raises if programs have not
            finished by then.

        Returns
        -------
        List of per-rank return values, rank order.
        """
        procs = self.launch(program)
        done = AllOf(self.env, procs)
        if until is None:
            self.env.run(until=done)
        else:
            self.env.run(until=until)
            if not done.triggered:
                raise TimeoutError(
                    f"programs still running at virtual time {until}"
                )
        return [p.value for p in procs]

    def traces(self):
        """Per-processor phase traces (rank order)."""
        return [p.trace for p in self.processors]

    def __repr__(self) -> str:
        return f"<Cluster p={self.size} network={type(self.network).__name__}>"
