"""The virtual processor: compute, send, receive, all phase-traced.

A *program* is a generator function taking a :class:`VirtualProcessor`
and yield-ing from its API::

    def program(proc):
        yield from proc.compute(ops=1e6, iteration=0)
        proc.send(dst=1, payload=data, tag=("vars", 0))
        msg = yield from proc.recv(src=1, tag=("vars", 0), iteration=0)

``compute`` burns virtual cycles at the processor's capacity (scaled by
any background load); ``send`` is asynchronous (PVM-style); ``recv``
blocks and records the blocked span as ``comm`` time; ``try_recv`` and
``probe`` are the non-blocking arrival checks at the heart of the
speculative protocol (Fig. 3: "if (msg from k arrived) receive else
speculate").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Hashable, Optional

from repro.des import Event, Store
from repro.trace import PhaseTrace
from repro.vm.load import BackgroundLoad
from repro.vm.message import Message, payload_nbytes
from repro.vm.specs import ProcessorSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.cluster import Cluster


class VirtualProcessor:
    """One simulated processor inside a :class:`~repro.vm.cluster.Cluster`.

    Not constructed directly — the cluster builds one per spec.
    """

    def __init__(
        self,
        cluster: "Cluster",
        rank: int,
        spec: ProcessorSpec,
        load: Optional[BackgroundLoad] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.rank = rank
        self.spec = spec
        self.load = load
        self.mailbox: Store = Store(cluster.env)
        self.trace = PhaseTrace(rank)
        #: Messages sent / received counters.
        self.sent_count = 0
        self.recv_count = 0

    # ------------------------------------------------------------- compute
    def seconds_for(self, ops: float) -> float:
        """Virtual seconds to execute ``ops`` operations right now."""
        base = self.spec.seconds_for(ops)
        if self.load is not None:
            base *= self.load.slowdown(self.env.now)
        return base

    def compute(
        self,
        ops: float,
        phase: str = "compute",
        iteration: Optional[int] = None,
    ) -> Generator:
        """Burn ``ops`` operations of virtual compute time.

        Use as ``yield from proc.compute(...)``.  The elapsed span is
        recorded in the trace under ``phase`` ("compute", "spec",
        "check" or "correct" in the speculative protocol).
        """
        duration = self.seconds_for(ops)
        yield from self.advance(duration, phase=phase, iteration=iteration)

    def advance(
        self,
        seconds: float,
        phase: str = "compute",
        iteration: Optional[int] = None,
    ) -> Generator:
        """Advance virtual time by a raw duration, tracing it as ``phase``."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        start = self.env.now
        if seconds > 0:
            yield self.env.timeout(seconds)
        self.trace.record(phase, start, self.env.now, iteration)
        if self.env.sanitizer is not None:
            self.env.sanitizer.note(
                f"rank {self.rank}: {phase} t={iteration} "
                f"[{start:.6g}, {self.env.now:.6g}]"
            )

    # ----------------------------------------------------------- messaging
    def send(
        self,
        dst: int,
        payload: Any,
        tag: Hashable = None,
        nbytes: Optional[int] = None,
    ) -> Event:
        """Asynchronously send ``payload`` to processor ``dst``.

        Returns the delivery event (usually ignored by the sender; the
        network deposits the message in the destination mailbox when
        the event fires).  Sending to self is allowed and goes through
        the network like any other message.
        """
        if not 0 <= dst < self.cluster.size:
            raise ValueError(f"invalid destination rank {dst}")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        msg = Message(
            src=self.rank,
            dst=dst,
            tag=tag,
            payload=payload,
            nbytes=size,
            sent_at=self.env.now,
        )
        self.sent_count += 1
        if self.cluster.event_log is not None:
            self.cluster.event_log.record_message(
                "send", self.rank, self.env.now, peer=dst, tag=tag
            )
        delivery = self.cluster.network.transmit(self.rank, dst, size)
        mailbox = self.cluster.processors[dst].mailbox

        def _deliver(event: Event) -> None:
            msg.mark_delivered(self.env.now)
            mailbox.put(msg)

        delivery.add_callback(_deliver)
        return delivery

    def broadcast(
        self,
        payload: Any,
        tag: Hashable = None,
        nbytes: Optional[int] = None,
    ) -> list[Event]:
        """Send ``payload`` to every *other* processor (Fig. 1's
        "send X_j(t) to all processors")."""
        return [
            self.send(dst, payload, tag=tag, nbytes=nbytes)
            for dst in range(self.cluster.size)
            if dst != self.rank
        ]

    def recv(
        self,
        src: Optional[int] = None,
        tag: Hashable = None,
        phase: str = "comm",
        iteration: Optional[int] = None,
    ) -> Generator:
        """Blocking receive; returns the matching :class:`Message`.

        ``src``/``tag`` of None are wildcards.  The blocked span is
        traced as ``phase`` (default "comm" — the paper's
        communication/waiting time).
        """
        start = self.env.now
        msg: Message = yield self.mailbox.get(
            filter=lambda m: m.matches(src, tag)
        )
        self.trace.record(phase, start, self.env.now, iteration)
        self.recv_count += 1
        if self.cluster.event_log is not None:
            self.cluster.event_log.record_message(
                "recv", self.rank, self.env.now, peer=msg.src, tag=msg.tag
            )
        if self.env.sanitizer is not None:
            self.env.sanitizer.note(
                f"rank {self.rank}: recv src={msg.src} tag={msg.tag!r} "
                f"blocked [{start:.6g}, {self.env.now:.6g}]"
            )
        return msg

    def try_recv(self, src: Optional[int] = None, tag: Hashable = None) -> Optional[Message]:
        """Non-blocking receive: matching message or None (no time passes)."""
        matcher = lambda m: m.matches(src, tag)  # noqa: E731
        found = self.mailbox.peek(filter=matcher)
        if found is None:
            return None
        self.mailbox.items.remove(found)
        self.recv_count += 1
        if self.cluster.event_log is not None:
            self.cluster.event_log.record_message(
                "recv", self.rank, self.env.now, peer=found.src, tag=found.tag
            )
        return found

    def probe(self, src: Optional[int] = None, tag: Hashable = None) -> bool:
        """Non-blocking arrival check (Fig. 3's "if msg from k arrived")."""
        return self.mailbox.peek(filter=lambda m: m.matches(src, tag)) is not None

    def pending(self) -> int:
        """Number of undelivered messages waiting in the mailbox."""
        return len(self.mailbox)

    def __repr__(self) -> str:
        return f"<VirtualProcessor rank={self.rank} {self.spec.name} M={self.spec.capacity:.3g}>"
