"""Background-load models: compute-time slowdown on timeshared hosts.

The paper notes that "background processor loads cause the computation
times on processors to vary slightly with time".  A load model maps the
current virtual time to a multiplicative slowdown factor >= 1 applied
to compute durations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class BackgroundLoad(ABC):
    """Maps virtual time to a compute-slowdown factor (>= 1)."""

    @abstractmethod
    def slowdown(self, now: float) -> float:
        """Multiplicative factor applied to compute durations at ``now``."""


class ConstantSlowdown(BackgroundLoad):
    """Fixed slowdown factor (1.0 = unloaded)."""

    def __init__(self, factor: float = 1.0) -> None:
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        self.factor = factor

    def slowdown(self, now: float) -> float:
        return self.factor

    def __repr__(self) -> str:
        return f"ConstantSlowdown({self.factor})"


class RandomWalkLoad(BackgroundLoad):
    """Mean-reverting random-walk load, piecewise constant in time.

    The factor is resampled every ``interval`` of virtual time as::

        level <- clip(level + N(0, step) - reversion * (level - mean), 0, max_level)
        slowdown = 1 + level

    which gives slowly drifting background load like other users coming
    and going on a timeshared workstation.  Fully deterministic given
    the seed; queries between resample points return the held level,
    and the walk is advanced lazily from the last query time.
    """

    def __init__(
        self,
        mean: float = 0.1,
        step: float = 0.05,
        reversion: float = 0.2,
        interval: float = 1.0,
        max_level: float = 2.0,
        seed: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0 <= reversion <= 1:
            raise ValueError("reversion must be in [0, 1]")
        if mean < 0 or step < 0 or max_level < 0:
            raise ValueError("mean, step and max_level must be >= 0")
        self.mean = mean
        self.step = step
        self.reversion = reversion
        self.interval = interval
        self.max_level = max_level
        self._rng = np.random.default_rng(seed)
        self._level = mean
        self._epoch = 0  # number of resamples applied so far

    def slowdown(self, now: float) -> float:
        if now < 0:
            raise ValueError("now must be >= 0")
        target_epoch = int(now / self.interval)
        while self._epoch < target_epoch:
            noise = float(self._rng.normal(0.0, self.step))
            self._level += noise - self.reversion * (self._level - self.mean)
            self._level = min(max(self._level, 0.0), self.max_level)
            self._epoch += 1
        return 1.0 + self._level

    def __repr__(self) -> str:
        return (
            f"RandomWalkLoad(mean={self.mean}, step={self.step}, "
            f"interval={self.interval})"
        )
