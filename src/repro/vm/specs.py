"""Processor capacity specifications.

The paper characterises each workstation by a single capacity number
M_i — operations per second, measured by timing a small operation
sequence.  Processors are indexed by decreasing capacity: M_1 >= M_2
>= ... >= M_p, and a "p-processor execution" always means the fastest
p processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ProcessorSpec:
    """Static description of one virtual processor.

    Attributes
    ----------
    name:
        Human-readable label (e.g. ``"SparcStation 10/1"``).
    capacity:
        Operations per virtual second (the paper's M_i).
    """

    name: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")

    def seconds_for(self, ops: float) -> float:
        """Virtual seconds needed to execute ``ops`` operations."""
        if ops < 0:
            raise ValueError("ops must be >= 0")
        return ops / self.capacity


def linear_gradient_specs(
    p: int = 16,
    fastest: float = 120e6,
    ratio: float = 10.0,
    name_prefix: str = "cpu",
) -> list[ProcessorSpec]:
    """Capacities falling linearly from ``fastest`` to ``fastest/ratio``.

    This is the Section-4 model platform: "processor computing
    abilities vary linearly with the fastest processor P1 being 10
    times faster than the slowest P16".  With ``p == 1`` the single
    processor has the ``fastest`` capacity.

    Parameters
    ----------
    p:
        Number of processors.
    fastest:
        Capacity of P1 in ops per second (default 120e6, the paper's
        120 MIPS SparcStation 10/1).
    ratio:
        M_1 / M_p.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    slowest = fastest / ratio
    if p == 1:
        caps = [fastest]
    else:
        step = (fastest - slowest) / (p - 1)
        caps = [fastest - i * step for i in range(p)]
    return [
        ProcessorSpec(name=f"{name_prefix}{i + 1}", capacity=c)
        for i, c in enumerate(caps)
    ]


def uniform_specs(p: int, capacity: float = 100e6, name_prefix: str = "cpu") -> list[ProcessorSpec]:
    """``p`` identical processors (homogeneous cluster)."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return [ProcessorSpec(name=f"{name_prefix}{i + 1}", capacity=capacity) for i in range(p)]


def total_capacity(specs: Sequence[ProcessorSpec]) -> float:
    """Sum of capacities (numerator of the paper's speedup_max)."""
    return sum(s.capacity for s in specs)
