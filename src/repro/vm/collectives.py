"""Collective operations over a cluster's virtual processors.

The drivers only need point-to-point messaging (the paper's algorithms
synchronise implicitly through their all-to-all exchanges), but
user-written programs often want the PVM/MPI collective idioms.  These
are implemented *on top of* the ordinary message API, so they traverse
the simulated network and cost what real collectives would.

All collectives are generators: use ``yield from`` inside a program::

    def program(proc):
        value = yield from allreduce(proc, proc.rank, op=max, tag="m")
        yield from barrier(proc, tag="sync0")

Every participating rank must call the same collective with the same
``tag``; tags must not be reused across distinct collective calls that
could be in flight simultaneously.

Payload isolation: simulated point-to-point sends are zero-copy (the
receiver aliases the sender's object, like PVM within one address
space), which is why speclint's SPL005 warns about post-send mutation.
The collectives remove that hazard *by construction*: every value
handed to :func:`gather`, :func:`broadcast`, :func:`allgather`,
:func:`reduce` or :func:`allreduce` is deep-copied before it goes on
the wire, so callers may freely mutate their buffers the moment the
collective returns.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Generator, Hashable, Optional

import numpy as np

from repro.vm.message import Message
from repro.vm.processor import VirtualProcessor

#: Scalar types that are immutable by construction.
_IMMUTABLE_SCALARS = (bool, int, float, complex, str, bytes)

#: Recursion bound for the structural immutability probe; deeper
#: payloads fall back to the safe deep copy.
_IMMUTABLE_MAX_DEPTH = 8


def _is_immutable(value: Any, depth: int = 0) -> bool:
    """Is ``value`` structurally immutable (safe to send uncopied)?

    True for None, scalars/strings/bytes, tuples and frozensets whose
    elements are themselves immutable, and frozen :class:`Message`
    records carrying an immutable payload.  Anything else — lists,
    dicts, ndarrays, dataclass blocks — is treated as mutable, so the
    caller copies it.
    """
    if depth > _IMMUTABLE_MAX_DEPTH:
        return False
    if value is None or isinstance(value, _IMMUTABLE_SCALARS):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_is_immutable(item, depth + 1) for item in value)
    if isinstance(value, Message):
        # The envelope is frozen; only the payload could be shared.
        return _is_immutable(value.payload, depth + 1)
    return False


def isolate_payload(value: Any) -> Any:
    """A mutation-proof copy of ``value`` for sending.

    Structurally immutable payloads — scalars, strings, bytes, tuples
    of scalars, frozen :class:`Message` records with immutable
    payloads — pass through untouched (nobody can mutate them, so the
    receiver may safely alias the sender's object); numpy arrays take
    the fast ``.copy()`` path; everything else (lists, dicts,
    dataclass blocks...) is ``copy.deepcopy``-ed.
    """
    if _is_immutable(value):
        return value
    if isinstance(value, np.ndarray):
        return value.copy()
    return copy.deepcopy(value)


#: Message-tag families used by the collectives.  Each collective call
#: wraps the caller-supplied sub-tag as ``(FAMILY, tag)`` so collective
#: traffic can never collide with driver traffic or other collectives.
BARRIER_IN = "barrier-in"
BARRIER_OUT = "barrier-out"
GATHER = "gather"
BCAST = "bcast"
ALLGATHER = "allgather"
REDUCE = "reduce"
ALLREDUCE = "allreduce"
ALLREDUCE_OUT = "allreduce-out"


def barrier(proc: VirtualProcessor, tag: Hashable, iteration: Optional[int] = None) -> Generator:
    """Block until every processor has entered the barrier.

    Flat protocol: everyone reports to rank 0; rank 0 releases
    everyone.  Two message rounds, like PVM's ``pvm_barrier``.
    """
    size = proc.cluster.size
    if size == 1:
        return
    if proc.rank == 0:
        for _ in range(size - 1):
            yield from proc.recv(tag=(BARRIER_IN, tag), phase="idle", iteration=iteration)
        for dst in range(1, size):
            proc.send(dst, None, tag=(BARRIER_OUT, tag), nbytes=8)
    else:
        proc.send(0, None, tag=(BARRIER_IN, tag), nbytes=8)
        yield from proc.recv(src=0, tag=(BARRIER_OUT, tag), phase="idle", iteration=iteration)


def gather(
    proc: VirtualProcessor,
    value: Any,
    tag: Hashable,
    root: int = 0,
    nbytes: Optional[int] = None,
    iteration: Optional[int] = None,
) -> Generator:
    """Collect one value per rank at ``root``.

    Returns the rank-ordered list on ``root`` and None elsewhere.
    """
    size = proc.cluster.size
    if proc.rank == root:
        values: dict[int, Any] = {root: value}
        for _ in range(size - 1):
            msg = yield from proc.recv(tag=(GATHER, tag), iteration=iteration)
            values[msg.src] = msg.payload
        return [values[r] for r in range(size)]
    proc.send(root, isolate_payload(value), tag=(GATHER, tag), nbytes=nbytes)
    return None


def broadcast(
    proc: VirtualProcessor,
    value: Any,
    tag: Hashable,
    root: int = 0,
    nbytes: Optional[int] = None,
    iteration: Optional[int] = None,
) -> Generator:
    """Send ``root``'s value to every rank; returns it everywhere."""
    if proc.rank == root:
        for dst in range(proc.cluster.size):
            if dst != root:
                proc.send(dst, isolate_payload(value), tag=(BCAST, tag), nbytes=nbytes)
        return value
    msg = yield from proc.recv(src=root, tag=(BCAST, tag), iteration=iteration)
    return msg.payload


def allgather(
    proc: VirtualProcessor,
    value: Any,
    tag: Hashable,
    nbytes: Optional[int] = None,
    iteration: Optional[int] = None,
) -> Generator:
    """Every rank contributes one value; every rank gets the full list.

    Direct exchange (each rank sends to all others), matching the
    paper's per-iteration all-to-all pattern.
    """
    size = proc.cluster.size
    values: dict[int, Any] = {proc.rank: value}
    for dst in range(size):
        if dst != proc.rank:
            proc.send(dst, isolate_payload(value), tag=(ALLGATHER, tag), nbytes=nbytes)
    for _ in range(size - 1):
        msg = yield from proc.recv(tag=(ALLGATHER, tag), iteration=iteration)
        values[msg.src] = msg.payload
    return [values[r] for r in range(size)]


def reduce(
    proc: VirtualProcessor,
    value: Any,
    op: Callable[[Any, Any], Any],
    tag: Hashable,
    root: int = 0,
    nbytes: Optional[int] = None,
    iteration: Optional[int] = None,
) -> Generator:
    """Fold one value per rank with ``op`` at ``root`` (rank order).

    Returns the folded value on ``root`` and None elsewhere.
    """
    values = yield from gather(proc, value, tag=(REDUCE, tag), root=root,
                               nbytes=nbytes, iteration=iteration)
    if values is None:
        return None
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc


def allreduce(
    proc: VirtualProcessor,
    value: Any,
    op: Callable[[Any, Any], Any],
    tag: Hashable,
    nbytes: Optional[int] = None,
    iteration: Optional[int] = None,
) -> Generator:
    """Reduce at rank 0, then broadcast the result to everyone."""
    folded = yield from reduce(proc, value, op, tag=(ALLREDUCE, tag),
                               nbytes=nbytes, iteration=iteration)
    result = yield from broadcast(proc, folded, tag=(ALLREDUCE_OUT, tag),
                                  nbytes=nbytes, iteration=iteration)
    return result
