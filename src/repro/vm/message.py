"""Message record exchanged between virtual processors."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

import numpy as np


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload in bytes.

    numpy arrays report their exact buffer size; dict/list/tuple
    payloads are summed recursively; anything else falls back to
    ``sys.getsizeof``.  Applications that care about exact sizes should
    pass ``nbytes`` to ``send`` explicitly.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(item) for item in payload) + 8 * len(payload)
    if isinstance(payload, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        ) + 16 * len(payload)
    if isinstance(payload, (int, float, complex, bool)) or payload is None:
        return 8
    if isinstance(payload, (str, bytes)):
        return len(payload)
    return int(sys.getsizeof(payload))


@dataclass(frozen=True)
class Message:
    """One message in flight or delivered.

    The record is **frozen**: once a message is on the wire, nobody —
    sender, network model, or receiver — can rewrite its envelope or
    swap its payload for another object (the SPL005 aliasing class is
    ruled out at the record level; in-place mutation of a *shared
    ndarray* payload is still the sender's responsibility, which is why
    the collectives deep-copy on send).  The single legitimate
    post-construction update, stamping the delivery time, goes through
    :meth:`mark_delivered`.

    Attributes
    ----------
    src, dst:
        Sender and receiver ranks.
    tag:
        Application tag used for selective receive (any hashable; the
        speculative driver uses ``("vars", iteration)``).
    payload:
        The data itself (typically numpy arrays — references are
        passed, matching PVM semantics within one simulation; receivers
        must not mutate payloads in place).
    nbytes:
        Wire size used by the network models.
    sent_at:
        Virtual send timestamp.
    delivered_at:
        Virtual delivery timestamp (stamped once on arrival at the
        mailbox via :meth:`mark_delivered`).
    """

    src: int
    dst: int
    tag: Hashable
    payload: Any
    nbytes: int
    sent_at: float
    delivered_at: Optional[float] = field(default=None, compare=False)

    def mark_delivered(self, now: float) -> None:
        """Stamp the delivery time (exactly once, at mailbox arrival)."""
        if self.delivered_at is not None:
            raise ValueError(f"message already delivered: {self!r}")
        if now < self.sent_at:
            raise ValueError(
                f"delivery at {now} precedes send at {self.sent_at}: {self!r}"
            )
        object.__setattr__(self, "delivered_at", now)

    @property
    def latency(self) -> float:
        """Transit time; only valid after delivery."""
        if self.delivered_at is None:
            raise ValueError("message not yet delivered")
        return self.delivered_at - self.sent_at

    def matches(self, src: Optional[int] = None, tag: Optional[Hashable] = None) -> bool:
        """Selective-receive predicate (None = wildcard)."""
        if src is not None and self.src != src:
            return False
        if tag is not None and self.tag != tag:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"<Message {self.src}->{self.dst} tag={self.tag!r} "
            f"nbytes={self.nbytes} sent={self.sent_at:.6g}>"
        )
