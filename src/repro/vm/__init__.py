"""PVM-like virtual machine on the discrete-event kernel.

Substitutes the paper's testbed — PVM on a heterogeneous network of
SUN/Sparc workstations — with simulated processors:

* :class:`ProcessorSpec` — a processor's capacity M_i (operations per
  virtual second), mirroring the paper's MIPS ratings (10–120 MIPS).
* :class:`BackgroundLoad` — multiplicative compute slowdown modelling
  timeshared background processes.
* :class:`VirtualProcessor` — the per-rank execution context exposing
  the PVM-flavoured API used by programs: ``compute`` (burn virtual
  cycles), ``send`` (asynchronous), ``recv`` (blocking), ``try_recv`` /
  ``probe`` (non-blocking arrival checks), all phase-traced.
* :class:`Cluster` — builds the processors over a
  :class:`~repro.netsim.network.Network` and launches per-rank program
  generators.
* :func:`linear_gradient_specs` — the Section-4 platform: p processors
  whose capacities fall linearly from M_1 to M_1/ratio.
"""

from repro.vm.cluster import Cluster
from repro.vm.load import BackgroundLoad, ConstantSlowdown, RandomWalkLoad
from repro.vm.message import Message
from repro.vm.processor import VirtualProcessor
from repro.vm.specs import ProcessorSpec, linear_gradient_specs, uniform_specs

__all__ = [
    "BackgroundLoad",
    "Cluster",
    "ConstantSlowdown",
    "linear_gradient_specs",
    "Message",
    "ProcessorSpec",
    "RandomWalkLoad",
    "uniform_specs",
    "VirtualProcessor",
]
