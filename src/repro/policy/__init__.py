"""Backend-agnostic speculation policies.

The paper tunes FW and BW offline per algorithm and platform
(Section 3.2).  Everything *tunable* about the protocol lives here,
decoupled from both the engine's state machine and any particular
transport:

* :class:`WindowPolicy` — the protocol every forward-window
  controller implements: observe one iteration's signals (cumulative
  epoch wait, checks, rejects, and the transport's clock) and return
  the rank's next FW.
* :class:`StaticWindow` — the identity policy; a run with
  ``StaticWindow(fw)`` is effect-for-effect identical to a fixed-FW
  run (it never changes the window, so no
  :class:`~repro.engine.events.WindowChanged` is ever emitted).
* :class:`AimdWindow` — the AIMD controller formerly buried in
  ``AdaptiveSpeculativeDriver._post_iteration``; because it is seated
  *inside* :class:`~repro.engine.core.SpecEngine` it now adapts on
  every backend (DES virtual time, loopback steps, real wall clocks).
* :class:`DegradedWindow` — a loss-aware wrapper around any policy:
  collapses FW toward 0 while the engine keeps reporting retransmits
  and re-arms the inner policy after a clean streak (the resilience
  layer's window response to persistent message loss).
* :class:`CascadePolicy` — the correction-cascade choice, replacing
  the stringly-typed ``cascade="recompute"|"none"`` previously
  validated in three separate constructors.

Policies are deliberately pure Python with no engine, transport or
numpy imports: they must pickle cleanly across ``multiprocessing``
workers and hash cheaply into the model checker's state fingerprints.
"""

from repro.policy.cascade import CascadePolicy
from repro.policy.window import (
    AimdWindow,
    DegradedWindow,
    StaticWindow,
    WindowPolicy,
)

__all__ = [
    "AimdWindow",
    "CascadePolicy",
    "DegradedWindow",
    "StaticWindow",
    "WindowPolicy",
]
