"""Forward-window policies: who decides each rank's FW, and when.

The engine consults its policy once per completed iteration, passing
*cumulative* signals (total window-wait, total checks, total rejects
since the run started) plus the transport's clock — virtual seconds
under DES, wall seconds on pipes, the scheduler step count on
loopback.  Policies that think in epochs keep their own marks and
difference against them; the engine never resets anything.

That cumulative-with-marks contract is what makes one policy work on
every backend: a wall-clock transport cannot "reset" the engine's
accumulators mid-run from another process, but it can always report
monotone totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol, Tuple, runtime_checkable


@runtime_checkable
class WindowPolicy(Protocol):
    """Per-rank forward-window controller.

    ``min_fw`` / ``max_fw`` bound every FW the policy may return (the
    ``window-policy-bound`` invariant); :meth:`spawn` hands each rank a
    private instance so marks never alias across ranks; :meth:`state`
    exposes the mutable marks for model-checker fingerprints.
    """

    min_fw: int
    max_fw: int

    def spawn(self) -> "WindowPolicy":
        """A fresh per-rank instance (policies may be stateful)."""
        ...

    def on_iteration(
        self,
        t: int,
        *,
        fw: int,
        epoch_wait: float,
        checks: int,
        rejects: int,
        now: float,
    ) -> int:
        """Observe iteration ``t``'s completion; return the next FW.

        All counters are cumulative since the run started; ``now`` is
        the transport's clock at the ``IterationDone`` boundary.
        """
        ...

    def state(self) -> Tuple[float, ...]:
        """Hashable snapshot of the policy's mutable marks."""
        ...


@dataclass(frozen=True)
class StaticWindow:
    """The identity policy: the window never moves.

    A run with ``StaticWindow(fw)`` is effect-for-effect identical to
    a plain fixed-FW run — the policy returns the current FW verbatim,
    so the engine never emits ``WindowChanged``.
    """

    fw: int

    def __post_init__(self) -> None:
        if self.fw < 0:
            raise ValueError("fw must be >= 0")

    @property
    def min_fw(self) -> int:
        return self.fw

    @property
    def max_fw(self) -> int:
        return self.fw

    def spawn(self) -> "StaticWindow":
        return self  # immutable: safe to share across ranks

    def on_iteration(
        self,
        t: int,
        *,
        fw: int,
        epoch_wait: float,
        checks: int,
        rejects: int,
        now: float,
    ) -> int:
        return self.fw

    def state(self) -> Tuple[float, ...]:
        return ()


@dataclass
class AimdWindow:
    """The AIMD forward-window controller (per rank).

    Every ``epoch`` iterations, decide from two observable signals:

    * **waiting time** — seconds blocked in window waits this epoch.
      Waiting means the window is too small to absorb current delays
      → widen by one (additive increase), provided rejections stayed
      below ``reject_low``.
    * **rejection rate** — fraction of this epoch's checks rejected.
      Deep windows speculate across larger gaps; above
      ``reject_high`` the gap² error growth makes speculation a net
      loss → shrink by one.

    Parameters are exactly ``AdaptivePolicy``'s (the deprecated
    driver-level surface now constructs one of these).  Marks are
    private per-instance state; the engine spawns one policy per rank
    so ranks adapt independently.
    """

    epoch: int = 4
    min_fw: int = 0
    max_fw: int = 4
    wait_fraction: float = 0.05
    reject_low: float = 0.10
    reject_high: float = 0.35

    # Epoch marks: the cumulative signals as of the last decision.
    _mark_time: float = field(default=0.0, init=False, repr=False)
    _mark_wait: float = field(default=0.0, init=False, repr=False)
    _mark_checks: int = field(default=0, init=False, repr=False)
    _mark_rejects: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError("epoch must be >= 1")
        if not 0 <= self.min_fw <= self.max_fw:
            raise ValueError("need 0 <= min_fw <= max_fw")
        if not 0 <= self.wait_fraction:
            raise ValueError("wait_fraction must be >= 0")
        if not 0 <= self.reject_low <= self.reject_high <= 1:
            raise ValueError("need 0 <= reject_low <= reject_high <= 1")

    def spawn(self) -> "AimdWindow":
        return replace(self)  # fresh marks, same parameters

    def on_iteration(
        self,
        t: int,
        *,
        fw: int,
        epoch_wait: float,
        checks: int,
        rejects: int,
        now: float,
    ) -> int:
        if (t + 1) % self.epoch != 0:
            return fw

        span = now - self._mark_time
        d_checks = checks - self._mark_checks
        d_rejects = rejects - self._mark_rejects
        wait = epoch_wait - self._mark_wait
        reject_rate = d_rejects / d_checks if d_checks else 0.0

        new_fw = fw
        if reject_rate > self.reject_high and fw > self.min_fw:
            new_fw = fw - 1
        elif (
            span > 0
            and wait > self.wait_fraction * span
            and reject_rate < self.reject_low
            and fw < self.max_fw
        ):
            new_fw = fw + 1

        self._mark_time = now
        self._mark_wait = epoch_wait
        self._mark_checks = checks
        self._mark_rejects = rejects
        return new_fw

    def state(self) -> Tuple[float, ...]:
        return (
            self._mark_time,
            self._mark_wait,
            float(self._mark_checks),
            float(self._mark_rejects),
        )


@dataclass
class DegradedWindow:
    """Loss-aware wrapper: collapse FW toward 0 under persistent loss.

    Wraps any :class:`WindowPolicy`.  While the engine keeps reporting
    new retransmits (via the duck-typed :meth:`observe_losses` hook it
    calls before each ``on_iteration``), speculation is a liability:
    speculated inputs stand on messages the network is actively
    losing, so every loss-window iteration *halves* the window toward
    0 instead of consulting the inner policy.  After ``recover_after``
    consecutive clean iterations the wrapper re-arms the inner policy,
    which re-widens at its own pace.

    The engine reads the public ``degraded`` flag after each decision
    and emits a :class:`~repro.engine.events.Degraded` effect on every
    flip, so traces show exactly when resilience mode engaged.
    """

    inner: "WindowPolicy"
    recover_after: int = 3

    #: True while loss-collapse is steering instead of ``inner``.
    degraded: bool = field(default=False, init=False)
    _seen_retransmits: int = field(default=0, init=False, repr=False)
    _fresh_losses: bool = field(default=False, init=False, repr=False)
    _clean_streak: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.recover_after < 1:
            raise ValueError("recover_after must be >= 1")

    @property
    def min_fw(self) -> int:
        return 0  # degradation may park the window at fully blocking

    @property
    def max_fw(self) -> int:
        return self.inner.max_fw

    def spawn(self) -> "DegradedWindow":
        return DegradedWindow(
            inner=self.inner.spawn(), recover_after=self.recover_after
        )

    def observe_losses(self, total_retransmits: int) -> None:
        """Engine hook: cumulative retransmit count before a decision."""
        self._fresh_losses = total_retransmits > self._seen_retransmits
        self._seen_retransmits = total_retransmits

    def on_iteration(
        self,
        t: int,
        *,
        fw: int,
        epoch_wait: float,
        checks: int,
        rejects: int,
        now: float,
    ) -> int:
        if self._fresh_losses:
            self._fresh_losses = False
            self._clean_streak = 0
            self.degraded = True
            return fw // 2
        if self.degraded:
            self._clean_streak += 1
            if self._clean_streak < self.recover_after:
                return fw  # hold collapsed until the loss truly passed
            self.degraded = False
        # Clean: delegate, clamped into the inner policy's bounds in
        # case degradation parked fw below inner.min_fw.
        new_fw = self.inner.on_iteration(
            t, fw=max(fw, self.inner.min_fw), epoch_wait=epoch_wait,
            checks=checks, rejects=rejects, now=now,
        )
        return max(self.inner.min_fw, min(new_fw, self.inner.max_fw))

    def state(self) -> Tuple[float, ...]:
        return (
            float(self.degraded),
            float(self._seen_retransmits),
            float(self._fresh_losses),
            float(self._clean_streak),
        ) + tuple(self.inner.state())
