"""Forward-window policies: who decides each rank's FW, and when.

The engine consults its policy once per completed iteration, passing
*cumulative* signals (total window-wait, total checks, total rejects
since the run started) plus the transport's clock — virtual seconds
under DES, wall seconds on pipes, the scheduler step count on
loopback.  Policies that think in epochs keep their own marks and
difference against them; the engine never resets anything.

That cumulative-with-marks contract is what makes one policy work on
every backend: a wall-clock transport cannot "reset" the engine's
accumulators mid-run from another process, but it can always report
monotone totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol, Tuple, runtime_checkable


@runtime_checkable
class WindowPolicy(Protocol):
    """Per-rank forward-window controller.

    ``min_fw`` / ``max_fw`` bound every FW the policy may return (the
    ``window-policy-bound`` invariant); :meth:`spawn` hands each rank a
    private instance so marks never alias across ranks; :meth:`state`
    exposes the mutable marks for model-checker fingerprints.
    """

    min_fw: int
    max_fw: int

    def spawn(self) -> "WindowPolicy":
        """A fresh per-rank instance (policies may be stateful)."""
        ...

    def on_iteration(
        self,
        t: int,
        *,
        fw: int,
        epoch_wait: float,
        checks: int,
        rejects: int,
        now: float,
    ) -> int:
        """Observe iteration ``t``'s completion; return the next FW.

        All counters are cumulative since the run started; ``now`` is
        the transport's clock at the ``IterationDone`` boundary.
        """
        ...

    def state(self) -> Tuple[float, ...]:
        """Hashable snapshot of the policy's mutable marks."""
        ...


@dataclass(frozen=True)
class StaticWindow:
    """The identity policy: the window never moves.

    A run with ``StaticWindow(fw)`` is effect-for-effect identical to
    a plain fixed-FW run — the policy returns the current FW verbatim,
    so the engine never emits ``WindowChanged``.
    """

    fw: int

    def __post_init__(self) -> None:
        if self.fw < 0:
            raise ValueError("fw must be >= 0")

    @property
    def min_fw(self) -> int:
        return self.fw

    @property
    def max_fw(self) -> int:
        return self.fw

    def spawn(self) -> "StaticWindow":
        return self  # immutable: safe to share across ranks

    def on_iteration(
        self,
        t: int,
        *,
        fw: int,
        epoch_wait: float,
        checks: int,
        rejects: int,
        now: float,
    ) -> int:
        return self.fw

    def state(self) -> Tuple[float, ...]:
        return ()


@dataclass
class AimdWindow:
    """The AIMD forward-window controller (per rank).

    Every ``epoch`` iterations, decide from two observable signals:

    * **waiting time** — seconds blocked in window waits this epoch.
      Waiting means the window is too small to absorb current delays
      → widen by one (additive increase), provided rejections stayed
      below ``reject_low``.
    * **rejection rate** — fraction of this epoch's checks rejected.
      Deep windows speculate across larger gaps; above
      ``reject_high`` the gap² error growth makes speculation a net
      loss → shrink by one.

    Parameters are exactly ``AdaptivePolicy``'s (the deprecated
    driver-level surface now constructs one of these).  Marks are
    private per-instance state; the engine spawns one policy per rank
    so ranks adapt independently.
    """

    epoch: int = 4
    min_fw: int = 0
    max_fw: int = 4
    wait_fraction: float = 0.05
    reject_low: float = 0.10
    reject_high: float = 0.35

    # Epoch marks: the cumulative signals as of the last decision.
    _mark_time: float = field(default=0.0, init=False, repr=False)
    _mark_wait: float = field(default=0.0, init=False, repr=False)
    _mark_checks: int = field(default=0, init=False, repr=False)
    _mark_rejects: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError("epoch must be >= 1")
        if not 0 <= self.min_fw <= self.max_fw:
            raise ValueError("need 0 <= min_fw <= max_fw")
        if not 0 <= self.wait_fraction:
            raise ValueError("wait_fraction must be >= 0")
        if not 0 <= self.reject_low <= self.reject_high <= 1:
            raise ValueError("need 0 <= reject_low <= reject_high <= 1")

    def spawn(self) -> "AimdWindow":
        return replace(self)  # fresh marks, same parameters

    def on_iteration(
        self,
        t: int,
        *,
        fw: int,
        epoch_wait: float,
        checks: int,
        rejects: int,
        now: float,
    ) -> int:
        if (t + 1) % self.epoch != 0:
            return fw

        span = now - self._mark_time
        d_checks = checks - self._mark_checks
        d_rejects = rejects - self._mark_rejects
        wait = epoch_wait - self._mark_wait
        reject_rate = d_rejects / d_checks if d_checks else 0.0

        new_fw = fw
        if reject_rate > self.reject_high and fw > self.min_fw:
            new_fw = fw - 1
        elif (
            span > 0
            and wait > self.wait_fraction * span
            and reject_rate < self.reject_low
            and fw < self.max_fw
        ):
            new_fw = fw + 1

        self._mark_time = now
        self._mark_wait = epoch_wait
        self._mark_checks = checks
        self._mark_rejects = rejects
        return new_fw

    def state(self) -> Tuple[float, ...]:
        return (
            self._mark_time,
            self._mark_wait,
            float(self._mark_checks),
            float(self._mark_rejects),
        )
