"""The correction-cascade policy as a first-class enum.

``cascade="recompute"`` / ``cascade="none"`` used to be bare strings
validated (with the same error message) in three constructors —
``SpecEngine``, ``SpeculativeDriver`` and ``MPRunner``.  The enum is
the one authoritative spelling; :meth:`CascadePolicy.coerce` is the
one validation site.

It subclasses :class:`str` so every existing comparison
(``engine.cascade == "none"``), dict key, JSON serialisation and
pickle round-trip keeps working unchanged.
"""

from __future__ import annotations

from enum import Enum


class CascadePolicy(str, Enum):
    """What happens to iterations computed *after* a rejected one.

    * :attr:`RECOMPUTE` — redo them in order from the corrected state,
      re-speculating still-missing inputs (rigorous under θ = 0).
    * :attr:`NONE` — the paper's behaviour: repair only the iteration
      whose message just arrived; downstream iterations keep their
      θ-bounded stale state.
    """

    RECOMPUTE = "recompute"
    NONE = "none"

    @classmethod
    def coerce(cls, cascade: "CascadePolicy | str") -> "CascadePolicy":
        """Validate and normalise a cascade spelling.

        Accepts an enum member or its string value; raises the
        historical ``ValueError`` message on anything else.
        """
        try:
            return cls(cascade)
        except ValueError:
            raise ValueError(f"unknown cascade policy {cascade!r}") from None

    def __str__(self) -> str:  # "recompute", not "CascadePolicy.RECOMPUTE"
        return self.value
