"""Particle systems and initial-condition generators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nbody.forces import potential_energy


@dataclass
class ParticleSystem:
    """State of an N-body system.

    Attributes
    ----------
    mass:
        (n,) particle masses.
    pos / vel:
        (n, 3) positions and velocities.
    G / softening:
        Physics constants carried with the system so diagnostics and
        integrators agree on them.
    """

    mass: np.ndarray
    pos: np.ndarray
    vel: np.ndarray
    G: float = 1.0
    softening: float = 0.01

    def __post_init__(self) -> None:
        self.mass = np.asarray(self.mass, dtype=float)
        self.pos = np.asarray(self.pos, dtype=float)
        self.vel = np.asarray(self.vel, dtype=float)
        n = self.mass.shape[0]
        if self.mass.ndim != 1:
            raise ValueError("mass must be 1-D")
        if self.pos.shape != (n, 3) or self.vel.shape != (n, 3):
            raise ValueError("pos and vel must be (n, 3)")
        if np.any(self.mass <= 0):
            raise ValueError("masses must be positive")
        if self.softening < 0:
            raise ValueError("softening must be >= 0")

    @property
    def n(self) -> int:
        """Number of particles."""
        return int(self.mass.shape[0])

    def copy(self) -> "ParticleSystem":
        """Deep copy (arrays duplicated)."""
        return ParticleSystem(
            mass=self.mass.copy(),
            pos=self.pos.copy(),
            vel=self.vel.copy(),
            G=self.G,
            softening=self.softening,
        )

    # ------------------------------------------------------------ diagnostics
    def kinetic_energy(self) -> float:
        """Σ ½ m v²."""
        return float(0.5 * np.sum(self.mass * np.einsum("ij,ij->i", self.vel, self.vel)))

    def potential(self) -> float:
        """Total softened potential energy."""
        return potential_energy(self.pos, self.mass, G=self.G, softening=self.softening)

    def total_energy(self) -> float:
        """Kinetic + potential (conserved by good integrators)."""
        return self.kinetic_energy() + self.potential()

    def momentum(self) -> np.ndarray:
        """(3,) total linear momentum (conserved exactly by pair forces)."""
        return np.einsum("i,ij->j", self.mass, self.vel)

    def center_of_mass(self) -> np.ndarray:
        """(3,) mass-weighted mean position."""
        return np.einsum("i,ij->j", self.mass, self.pos) / self.mass.sum()


def uniform_cube(
    n: int,
    seed: int = 0,
    box: float = 1.0,
    vscale: float = 0.05,
    G: float = 1.0,
    softening: float = 0.05,
) -> ParticleSystem:
    """n equal-mass particles uniform in a cube with small random velocities.

    The gentle velocity scale keeps trajectories smooth over a
    timestep — the regime where the paper's constant-velocity
    speculation is accurate.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-box / 2, box / 2, size=(n, 3))
    vel = rng.normal(0.0, vscale, size=(n, 3))
    mass = np.full(n, 1.0 / n)
    return ParticleSystem(mass=mass, pos=pos, vel=vel, G=G, softening=softening)


def plummer_sphere(
    n: int,
    seed: int = 0,
    scale_radius: float = 1.0,
    total_mass: float = 1.0,
    G: float = 1.0,
    softening: float = 0.05,
) -> ParticleSystem:
    """Plummer-model cluster in approximate virial equilibrium.

    Standard Aarseth–Hénon–Wielen sampling: radii from the inverse
    cumulative mass profile, isotropic velocities from the local escape
    speed via von Neumann rejection.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    # Radii: M(r)/M = r^3/(r^2+a^2)^{3/2}  ->  r = a / sqrt(x^{-2/3} - 1)
    x = rng.uniform(0.0, 1.0, size=n)
    x = np.clip(x, 1e-10, 1 - 1e-10)
    r = scale_radius / np.sqrt(x ** (-2.0 / 3.0) - 1.0)
    r = np.minimum(r, 10.0 * scale_radius)  # clip the far tail
    pos = r[:, None] * _random_unit_vectors(rng, n)

    # Velocities: f(q) ~ q^2 (1-q^2)^{7/2}, v = q * v_esc(r)
    q = np.empty(n)
    filled = 0
    while filled < n:
        trial_q = rng.uniform(0.0, 1.0, size=2 * (n - filled))
        trial_y = rng.uniform(0.0, 0.1, size=2 * (n - filled))
        ok = trial_y < trial_q**2 * (1.0 - trial_q**2) ** 3.5
        take = trial_q[ok][: n - filled]
        q[filled : filled + take.size] = take
        filled += take.size
    v_esc = np.sqrt(2.0 * G * total_mass) * (r**2 + scale_radius**2) ** (-0.25)
    vel = (q * v_esc)[:, None] * _random_unit_vectors(rng, n)

    mass = np.full(n, total_mass / n)
    return ParticleSystem(mass=mass, pos=pos, vel=vel, G=G, softening=softening)


def two_clusters(
    n: int,
    seed: int = 0,
    separation: float = 4.0,
    approach_speed: float = 0.2,
    G: float = 1.0,
    softening: float = 0.05,
) -> ParticleSystem:
    """Two Plummer spheres on a slow collision course (merger scenario)."""
    if n < 2:
        raise ValueError("n must be >= 2")
    n1 = n // 2
    a = plummer_sphere(n1, seed=seed, total_mass=0.5, G=G, softening=softening)
    b = plummer_sphere(n - n1, seed=seed + 1, total_mass=0.5, G=G, softening=softening)
    offset = np.array([separation / 2, 0.0, 0.0])
    kick = np.array([approach_speed / 2, 0.0, 0.0])
    pos = np.vstack([a.pos - offset, b.pos + offset])
    vel = np.vstack([a.vel + kick, b.vel - kick])
    mass = np.concatenate([a.mass, b.mass])
    return ParticleSystem(mass=mass, pos=pos, vel=vel, G=G, softening=softening)


def cold_disk(
    n: int,
    seed: int = 0,
    r_min: float = 0.5,
    r_max: float = 2.0,
    central_mass: float = 100.0,
    G: float = 1.0,
    softening: float = 0.05,
) -> ParticleSystem:
    """Light ring particles on near-circular orbits around a heavy center.

    Motion is dominated by the central mass, so trajectories are
    locally straight over small timesteps — the friendliest workload
    for constant-velocity speculation.
    """
    if n < 2:
        raise ValueError("n must be >= 2 (center + at least one orbiter)")
    rng = np.random.default_rng(seed)
    m = n - 1
    radius = rng.uniform(r_min, r_max, size=m)
    angle = rng.uniform(0.0, 2 * np.pi, size=m)
    pos = np.column_stack(
        [radius * np.cos(angle), radius * np.sin(angle), rng.normal(0, 0.01, m)]
    )
    v_circ = np.sqrt(G * central_mass / radius)
    vel = np.column_stack(
        [-v_circ * np.sin(angle), v_circ * np.cos(angle), np.zeros(m)]
    )
    pos = np.vstack([[0.0, 0.0, 0.0], pos])
    vel = np.vstack([[0.0, 0.0, 0.0], vel])
    mass = np.concatenate([[central_mass], np.full(m, 1e-4)])
    return ParticleSystem(mass=mass, pos=pos, vel=vel, G=G, softening=softening)


def _random_unit_vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    """(n, 3) isotropic unit vectors."""
    v = rng.normal(size=(n, 3))
    norm = np.linalg.norm(v, axis=1, keepdims=True)
    norm[norm == 0] = 1.0
    return v / norm
