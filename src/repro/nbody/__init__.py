"""O(N²) gravitational N-body substrate (the paper's case study).

The paper demonstrates speculative computation on a direct-summation
N-body simulation (Section 5): every timestep computes all pairwise
gravitational forces, then updates velocities and positions.  This
package provides the physics:

* :mod:`repro.nbody.forces` — vectorized all-pairs gravity with
  Plummer softening, including block-to-block partial sums (what each
  simulated processor computes).
* :mod:`repro.nbody.particles` — particle-system container, initial
  condition generators, and conservation diagnostics.
* :mod:`repro.nbody.integrators` — symplectic Euler and leapfrog
  steps, plus a serial reference simulation.
* :mod:`repro.nbody.speculation` — Eq. 10 constant-velocity position
  speculation and the Eq. 11 pairwise error metric.
"""

from repro.nbody.forces import (
    PAIR_FLOPS,
    accelerations,
    accelerations_from_sources,
    potential_energy,
)
from repro.nbody.integrators import leapfrog_step, simulate, symplectic_euler_step
from repro.nbody.particles import (
    ParticleSystem,
    cold_disk,
    plummer_sphere,
    two_clusters,
    uniform_cube,
)
from repro.nbody.speculation import (
    pairwise_error_ratios,
    speculate_positions,
    worst_pairwise_error,
)

__all__ = [
    "PAIR_FLOPS",
    "ParticleSystem",
    "accelerations",
    "accelerations_from_sources",
    "cold_disk",
    "leapfrog_step",
    "pairwise_error_ratios",
    "plummer_sphere",
    "potential_energy",
    "simulate",
    "speculate_positions",
    "symplectic_euler_step",
    "two_clusters",
    "uniform_cube",
    "worst_pairwise_error",
]
