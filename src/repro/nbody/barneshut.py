"""Barnes–Hut O(N log N) gravity.

The paper's footnote: "A more efficient O(N log N) is possible and has
been implemented in the past [4].  Our objective here, however, is to
illustrate the effectiveness of speculative computation, and the
simpler O(N²) implementation is employed."  This module supplies that
more efficient algorithm as an optional force backend, enabling the
ablation the paper skipped: cheaper computation raises the
*communication fraction*, which raises speculation's relative value.

Implementation: a standard octree with monopole (center-of-mass)
approximation and the ``s/d < θ_bh`` opening criterion, evaluated with
a vectorised group traversal — each tree node processes all targets
that accept it in one numpy operation.  Self-interaction vanishes
automatically because the pair force is proportional to the separation
vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Default opening angle; 0 degenerates to exact direct summation.
DEFAULT_OPENING_ANGLE = 0.5
#: Cost-model flops per accepted node-target monopole interaction.
NODE_FLOPS = 70.0


@dataclass
class _Node:
    """One octree node (internal or leaf)."""

    center: np.ndarray
    half: float
    #: Indices of the particles inside (leaves only keep <= leaf_size).
    indices: np.ndarray
    mass: float = 0.0
    com: np.ndarray = field(default_factory=lambda: np.zeros(3))
    children: list = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class Octree:
    """Octree over a static set of particles.

    Parameters
    ----------
    pos / mass:
        (n, 3) positions, (n,) masses.
    leaf_size:
        Maximum particles kept in a leaf before it splits.
    """

    def __init__(self, pos: np.ndarray, mass: np.ndarray, leaf_size: int = 8) -> None:
        self.pos = np.asarray(pos, dtype=float)
        self.mass = np.asarray(mass, dtype=float)
        if self.pos.ndim != 2 or self.pos.shape[1] != 3:
            raise ValueError("pos must be (n, 3)")
        if self.mass.shape != (self.pos.shape[0],):
            raise ValueError("mass must match pos length")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.leaf_size = leaf_size
        n = self.pos.shape[0]
        if n == 0:
            self.root: Optional[_Node] = None
            self.node_count = 0
            return
        lo = self.pos.min(axis=0)
        hi = self.pos.max(axis=0)
        center = 0.5 * (lo + hi)
        half = float(max((hi - lo).max() / 2.0, 1e-12)) * 1.0001
        self.node_count = 0
        self.root = self._build(np.arange(n, dtype=np.intp), center, half, depth=0)

    def _build(self, indices: np.ndarray, center: np.ndarray, half: float, depth: int) -> _Node:
        node = _Node(center=center, half=half, indices=indices)
        self.node_count += 1
        m = self.mass[indices]
        node.mass = float(m.sum())
        node.com = (m[:, None] * self.pos[indices]).sum(axis=0) / node.mass
        # Depth cap guards against coincident particles.
        if len(indices) <= self.leaf_size or depth >= 48:
            return node
        p = self.pos[indices]
        octant = (
            (p[:, 0] >= center[0]).astype(np.intp)
            + 2 * (p[:, 1] >= center[1]).astype(np.intp)
            + 4 * (p[:, 2] >= center[2]).astype(np.intp)
        )
        quarter = half / 2.0
        for o in range(8):
            sub = indices[octant == o]
            if sub.size == 0:
                continue
            offset = np.array(
                [
                    quarter if o & 1 else -quarter,
                    quarter if o & 2 else -quarter,
                    quarter if o & 4 else -quarter,
                ]
            )
            node.children.append(
                self._build(sub, center + offset, quarter, depth + 1)
            )
        return node


def bh_accelerations(
    target_pos: np.ndarray,
    tree: Octree,
    G: float = 1.0,
    softening: float = 0.01,
    opening_angle: float = DEFAULT_OPENING_ANGLE,
) -> tuple[np.ndarray, int]:
    """Accelerations on targets from the tree's particles.

    Returns ``(accelerations, interactions)`` where ``interactions``
    counts the node–target and particle–target terms evaluated — the
    measured work for the cost model.

    ``opening_angle = 0`` forces full opening (exact direct summation).
    """
    tp = np.asarray(target_pos, dtype=float)
    if tp.ndim != 2 or tp.shape[1] != 3:
        raise ValueError("target_pos must be (n, 3)")
    if opening_angle < 0:
        raise ValueError("opening_angle must be >= 0")
    out = np.zeros_like(tp)
    if tree.root is None or tp.shape[0] == 0:
        return out, 0
    eps2 = softening * softening
    interactions = 0

    def visit(node: _Node, idx: np.ndarray) -> None:
        nonlocal interactions
        delta = node.com[None, :] - tp[idx]
        dist2 = np.einsum("ij,ij->i", delta, delta)
        size = 2.0 * node.half
        if node.is_leaf:
            # Direct sum over the leaf's particles for everyone here.
            src = tree.pos[node.indices]
            sm = tree.mass[node.indices]
            d = src[None, :, :] - tp[idx][:, None, :]
            d2 = np.einsum("ijk,ijk->ij", d, d) + eps2
            with np.errstate(divide="ignore"):
                inv = d2 ** (-1.5)
            # A target coinciding with a source contributes d = 0, so
            # its term vanishes; only unsoftened exact overlaps need the
            # explicit zero to avoid inf * 0.
            inv[d2 == 0.0] = 0.0
            out[idx] += G * np.einsum("ij,j,ijk->ik", inv, sm, d)
            interactions += idx.size * node.indices.size
            return
        # Monopole acceptance: s / d < theta  <=>  d > s / theta.
        if opening_angle > 0:
            accept = dist2 > (size / opening_angle) ** 2
        else:
            accept = np.zeros(idx.size, dtype=bool)
        if np.any(accept):
            a_idx = idx[accept]
            d = node.com[None, :] - tp[a_idx]
            d2 = np.einsum("ij,ij->i", d, d) + eps2
            out[a_idx] += G * node.mass * d / (d2 ** 1.5)[:, None]
            interactions += a_idx.size
        rest = idx[~accept]
        if rest.size:
            for child in node.children:
                visit(child, rest)

    visit(tree.root, np.arange(tp.shape[0], dtype=np.intp))
    return out, interactions


def bh_accelerations_full(
    pos: np.ndarray,
    mass: np.ndarray,
    G: float = 1.0,
    softening: float = 0.01,
    opening_angle: float = DEFAULT_OPENING_ANGLE,
    leaf_size: int = 8,
) -> tuple[np.ndarray, int]:
    """Self-consistent Barnes–Hut accelerations of a whole system."""
    tree = Octree(pos, mass, leaf_size=leaf_size)
    return bh_accelerations(
        pos, tree, G=G, softening=softening, opening_angle=opening_angle
    )
