"""Time integrators and the serial reference simulation.

The paper updates "velocity and positions of its particles based on
the forces" once per timestep — the semi-implicit (symplectic) Euler
scheme::

    v(t+1) = v(t) + a(t) Δt
    x(t+1) = x(t) + v(t+1) Δt

A leapfrog (kick-drift-kick) variant is provided for
energy-conservation comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.nbody.forces import accelerations
from repro.nbody.particles import ParticleSystem


def symplectic_euler_step(system: ParticleSystem, dt: float) -> ParticleSystem:
    """One semi-implicit Euler step; returns a new system."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    a = accelerations(system.pos, system.mass, G=system.G, softening=system.softening)
    vel = system.vel + a * dt
    pos = system.pos + vel * dt
    return ParticleSystem(
        mass=system.mass, pos=pos, vel=vel, G=system.G, softening=system.softening
    )


def leapfrog_step(system: ParticleSystem, dt: float) -> ParticleSystem:
    """One kick-drift-kick leapfrog step; returns a new system."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    a0 = accelerations(system.pos, system.mass, G=system.G, softening=system.softening)
    v_half = system.vel + 0.5 * dt * a0
    pos = system.pos + dt * v_half
    a1 = accelerations(pos, system.mass, G=system.G, softening=system.softening)
    vel = v_half + 0.5 * dt * a1
    return ParticleSystem(
        mass=system.mass, pos=pos, vel=vel, G=system.G, softening=system.softening
    )


def simulate(
    system: ParticleSystem,
    dt: float,
    steps: int,
    method: str = "euler",
) -> ParticleSystem:
    """Serial reference: advance ``steps`` timesteps on one process.

    This is the ground truth the parallel (and speculative) runs are
    validated against.
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    stepper = {"euler": symplectic_euler_step, "leapfrog": leapfrog_step}.get(method)
    if stepper is None:
        raise ValueError(f"unknown method {method!r}")
    current = system
    for _ in range(steps):
        current = stepper(current, dt)
    return current
