"""Vectorized all-pairs gravitational forces.

Direct O(N²) summation with Plummer softening::

    a_i = G · Σ_j m_j (r_j − r_i) / (|r_j − r_i|² + ε²)^{3/2}

The paper counts "about 70 floating point operations" per pair force;
:data:`PAIR_FLOPS` carries that constant into the cost model so virtual
times match the paper's accounting even though numpy executes far
fewer visible Python operations.
"""

from __future__ import annotations

import numpy as np

#: Operations per pair force in the paper's cost accounting.
PAIR_FLOPS = 70.0


def accelerations_from_sources(
    target_pos: np.ndarray,
    source_pos: np.ndarray,
    source_mass: np.ndarray,
    G: float = 1.0,
    softening: float = 0.01,
    exclude_self_pairs: bool = False,
) -> np.ndarray:
    """Acceleration on each target due to all source particles.

    Parameters
    ----------
    target_pos:
        (n_t, 3) target positions.
    source_pos:
        (n_s, 3) source positions.
    source_mass:
        (n_s,) source masses.
    G:
        Gravitational constant.
    softening:
        Plummer softening length ε (> 0 keeps close encounters finite).
    exclude_self_pairs:
        Set True when targets and sources are the *same* particles (in
        the same order): zero-distance pairs are excluded from the sum.

    Returns
    -------
    (n_t, 3) accelerations.
    """
    tp = np.asarray(target_pos, dtype=float)
    sp = np.asarray(source_pos, dtype=float)
    sm = np.asarray(source_mass, dtype=float)
    if tp.ndim != 2 or tp.shape[1] != 3:
        raise ValueError(f"target_pos must be (n, 3), got {tp.shape}")
    if sp.ndim != 2 or sp.shape[1] != 3:
        raise ValueError(f"source_pos must be (n, 3), got {sp.shape}")
    if sm.shape != (sp.shape[0],):
        raise ValueError("source_mass must match source_pos length")
    if softening < 0:
        raise ValueError("softening must be >= 0")
    if exclude_self_pairs and tp.shape != sp.shape:
        raise ValueError("exclude_self_pairs requires identical target/source shapes")
    if tp.size == 0 or sp.size == 0:
        return np.zeros_like(tp)

    # delta[i, j] = r_j - r_i  -> shape (n_t, n_s, 3)
    delta = sp[None, :, :] - tp[:, None, :]
    dist2 = np.einsum("ijk,ijk->ij", delta, delta) + softening**2
    # With zero softening the self-pair distance is exactly zero; the
    # resulting inf is discarded when the diagonal is cleared below.
    with np.errstate(divide="ignore"):
        inv_d3 = dist2 ** (-1.5)
    if exclude_self_pairs:
        np.fill_diagonal(inv_d3, 0.0)
    # a_i = G sum_j m_j delta_ij / d^3
    return G * np.einsum("ij,j,ijk->ik", inv_d3, sm, delta)


def accelerations(
    pos: np.ndarray,
    mass: np.ndarray,
    G: float = 1.0,
    softening: float = 0.01,
) -> np.ndarray:
    """Self-consistent accelerations of a whole system (N×N pairs)."""
    return accelerations_from_sources(
        pos, pos, mass, G=G, softening=softening, exclude_self_pairs=True
    )


def potential_energy(
    pos: np.ndarray,
    mass: np.ndarray,
    G: float = 1.0,
    softening: float = 0.01,
) -> float:
    """Total softened gravitational potential energy (each pair once)."""
    p = np.asarray(pos, dtype=float)
    m = np.asarray(mass, dtype=float)
    if p.shape[0] < 2:
        return 0.0
    delta = p[None, :, :] - p[:, None, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta) + softening**2)
    with np.errstate(divide="ignore"):
        inv = 1.0 / dist
    np.fill_diagonal(inv, 0.0)
    return float(-0.5 * G * np.einsum("i,j,ij->", m, m, inv))
