"""Eq. 10 position speculation and the Eq. 11 pairwise error metric.

Speculation (Eq. 10): a remote particle's position is extrapolated one
timestep assuming constant velocity::

    r*_a(t) = r_a(t-1) + v_a(t-1) · Δt

Checking (Eq. 11): the effect of a position error on the force exerted
on a local particle b is approximately proportional to::

    error_{a,b} = ‖r*_a(t) − r_a(t)‖ / ‖r_a(t) − r_b(t)‖

The speculation for particle a is acceptable when this ratio is below
the threshold θ for every local particle b; equivalently, when the
ratio against the *nearest* local particle is below θ.
"""

from __future__ import annotations

import numpy as np

#: Paper's cost accounting: flops to speculate one particle's position.
SPECULATE_FLOPS_PER_PARTICLE = 12.0
#: Paper's cost accounting: flops to error-check one particle.
CHECK_FLOPS_PER_PARTICLE = 24.0


def speculate_positions(pos: np.ndarray, vel: np.ndarray, dt: float) -> np.ndarray:
    """Constant-velocity extrapolation of positions (Eq. 10)."""
    p = np.asarray(pos, dtype=float)
    v = np.asarray(vel, dtype=float)
    if p.shape != v.shape:
        raise ValueError("pos and vel must have identical shapes")
    if dt <= 0:
        raise ValueError("dt must be positive")
    return p + v * dt


def pairwise_error_ratios(
    speculated_pos: np.ndarray,
    actual_pos: np.ndarray,
    local_pos: np.ndarray,
    eps: float = 1e-12,
) -> np.ndarray:
    """Per-remote-particle worst-case Eq. 11 ratio.

    For each remote particle a, returns
    ``‖r*_a − r_a‖ / min_b ‖r_a − r_b‖`` — the error ratio against the
    *nearest* local particle, i.e. the largest ratio over all local b.

    Parameters
    ----------
    speculated_pos / actual_pos:
        (n_r, 3) speculated and true remote positions.
    local_pos:
        (n_l, 3) positions of the checking processor's own particles.
    eps:
        Distance floor to keep coincident particles finite.

    Returns
    -------
    (n_r,) array of ratios (all zero if there are no local particles).
    """
    sp = np.asarray(speculated_pos, dtype=float)
    ap = np.asarray(actual_pos, dtype=float)
    lp = np.asarray(local_pos, dtype=float)
    if sp.shape != ap.shape:
        raise ValueError("speculated and actual positions must match shapes")
    if sp.ndim != 2 or sp.shape[1] != 3:
        raise ValueError("positions must be (n, 3)")
    if sp.shape[0] == 0:
        return np.zeros(0)
    if lp.shape[0] == 0:
        return np.zeros(sp.shape[0])
    displacement = np.linalg.norm(sp - ap, axis=1)
    delta = ap[:, None, :] - lp[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
    nearest = np.maximum(dist.min(axis=1), eps)
    return displacement / nearest


def worst_pairwise_error(
    speculated_pos: np.ndarray,
    actual_pos: np.ndarray,
    local_pos: np.ndarray,
) -> float:
    """Maximum Eq. 11 ratio over all (remote, local) pairs."""
    ratios = pairwise_error_ratios(speculated_pos, actual_pos, local_pos)
    return float(ratios.max()) if ratios.size else 0.0
