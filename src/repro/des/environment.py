"""The simulation environment: virtual clock + event calendar."""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.des.errors import EmptySchedule, SimulationError, StopSimulation
from repro.des.events import Event, Process, Timeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.sanitizer import ProtocolSanitizer


class Environment:
    """Execution environment for a single discrete-event simulation.

    Owns the virtual clock (:attr:`now`) and a priority queue of
    triggered events.  Events scheduled for the same instant are
    processed in (priority, insertion) order, which makes runs fully
    deterministic.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (default ``0.0``).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(3.5)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    3.5
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Optional runtime protocol sanitizer (see
        #: :mod:`repro.analysis.sanitizer`); None = zero overhead.
        self.sanitizer: Optional["ProtocolSanitizer"] = None

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories --------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling ---------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        """Place a triggered event on the calendar ``delay`` from now.

        ``priority`` breaks ties at equal times (lower runs first);
        the kernel uses priority 0 for process bookkeeping events so
        that e.g. interrupts beat ordinary wakeups.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        prev_now = self._now
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events") from None
        if self.sanitizer is not None:
            # Event state machine + monotonic clock invariants.
            self.sanitizer.on_event_processed(event, self._now, prev_now)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # Nobody was waiting on a failed event: surface the error.
            raise event._value

    # -- run loop ---------------------------------------------------------------
    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the calendar is empty.
            * a number — run until the clock reaches that time.
            * an :class:`Event` — run until that event is processed and
              return its value (raising its exception if it failed).

        Returns
        -------
        The ``until`` event's value, if an event was given; else None.
        """
        stop_at: Optional[float] = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed; just report its outcome.
                    if until._ok:
                        return until._value
                    until.defused = True
                    raise until._value
                until.add_callback(_stop_simulation)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise SimulationError(
                        f"until={stop_at} is in the past (now={self._now})"
                    )

        try:
            while self._queue:
                if stop_at is not None and self._queue[0][0] > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            event: Event = stop.value
            if event._ok:
                return event._value
            event.defused = True
            raise event._value from None

        if isinstance(until, Event) and not until.triggered:
            raise SimulationError(
                "simulation ended before the awaited event triggered"
            )
        if stop_at is not None and stop_at > self._now:
            self._now = stop_at
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"


def _stop_simulation(event: Event) -> None:
    """Callback that aborts :meth:`Environment.run` at ``event``."""
    raise StopSimulation(event)
